#![warn(missing_docs)]

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate.
//!
//! The build environment for this workspace has no crates-io access, so
//! the external dependencies are replaced by path shims implementing
//! exactly the API surface the workspace uses (see the workspace
//! `Cargo.toml` `[workspace.dependencies]`). This shim provides:
//!
//! - [`rngs::SmallRng`]: a fast, seedable, non-cryptographic generator
//!   (xoshiro256++ seeded via splitmix64 — the same family the real
//!   `SmallRng` uses on 64-bit targets);
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! - [`SeedableRng::seed_from_u64`];
//! - [`thread_rng`] / [`random`].
//!
//! Streams are deterministic per seed (as the workload generators
//! require) but are **not** bit-compatible with the real `rand` crate.

use std::cell::RefCell;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (full range for integers, `[0, 1)` for floats, fair coin for
    /// `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types seedable from a single `u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a standard distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts for an output type `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is < width / 2^64 — irrelevant for
                // workload generation; determinism is what matters.
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range on empty range");
                let width = (end as u128).wrapping_sub(start as u128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (width + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Small fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the non-cryptographic generator behind the real
    /// crate's `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

thread_local! {
    static THREAD_RNG: RefCell<rngs::SmallRng> = RefCell::new({
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // Mix in a per-thread address so simultaneously spawned threads
        // diverge.
        let local = 0u8;
        <rngs::SmallRng as SeedableRng>::seed_from_u64(
            nanos ^ ((&local as *const u8 as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        )
    });
}

/// Handle to a lazily-seeded thread-local generator.
#[derive(Clone, Debug)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
}

/// The calling thread's generator (seeded once per thread from the
/// clock and a stack address).
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

/// One value from the thread-local generator's standard distribution.
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u8 = r.gen_range(0..100);
            assert!(w < 100);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4500..5500).contains(&heads), "{heads}");
    }

    #[test]
    fn thread_rng_works() {
        let x: u64 = random();
        let y: u64 = random();
        // Not a strict guarantee, but a 1/2^64 flake is acceptable.
        assert_ne!(x, y);
    }
}
