#![warn(missing_docs)]

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the definition API this workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_custom`], [`BenchmarkId`],
//! [`criterion_group!`] / [`criterion_main!`]) with a deliberately
//! simple measurement loop: `sample_size` samples per benchmark, each
//! timed with [`std::time::Instant`], reporting min/mean ns per
//! iteration. No warm-up modeling, outlier analysis, or HTML reports.
//!
//! Under `cargo test` (no `--bench` argument) every benchmark runs a
//! single iteration as a smoke test, mirroring real criterion's test
//! mode.

use std::fmt;
use std::time::{Duration, Instant};

/// Runs one benchmark body ([`BenchmarkGroup::bench_function`] hands
/// one to each closure).
pub struct Bencher {
    /// Measured mode (`--bench`) or smoke mode (`cargo test`).
    measured: bool,
    /// Samples to take in measured mode.
    samples: u64,
    /// Collected (iterations, elapsed) pairs.
    records: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Time `f`, calling it once per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if !self.measured {
            std::hint::black_box(f());
            return;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.records.push((1, start.elapsed()));
        }
    }

    /// Time a body that measures itself: `f(iters)` must return the
    /// elapsed time of `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        if !self.measured {
            std::hint::black_box(f(1));
            return;
        }
        for _ in 0..self.samples {
            let d = f(1);
            self.records.push((1, d));
        }
    }
}

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark in measured mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measured: self.criterion.measured,
            samples: self.sample_size,
            records: Vec::new(),
        };
        f(&mut b);
        if self.criterion.measured {
            let (iters, total): (u64, Duration) = b
                .records
                .iter()
                .fold((0, Duration::ZERO), |(i, d), &(bi, bd)| (i + bi, d + bd));
            let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
            let min_ns = b
                .records
                .iter()
                .map(|&(bi, bd)| bd.as_nanos() as f64 / bi.max(1) as f64)
                .fold(f64::INFINITY, f64::min);
            println!(
                "{}/{}: {:>12.1} ns/iter (min {:>12.1} ns, {} samples)",
                self.name,
                id.id,
                mean_ns,
                min_ns,
                b.records.len()
            );
        }
        self
    }

    /// End the group (prints nothing; provided for API parity).
    pub fn finish(self) {}
}

/// Top-level harness state.
pub struct Criterion {
    measured: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; under `cargo test` the smoke
        // path keeps the suite fast.
        let measured = std::env::args().any(|a| a == "--bench");
        Criterion { measured }
    }
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if self.measured {
            println!("== bench group {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Define and immediately run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions under one name (API parity with
/// criterion).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { measured: false };
        let mut g = c.benchmark_group("g");
        let mut calls = 0;
        g.bench_function("one", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_samples() {
        let mut c = Criterion { measured: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_custom_collects() {
        let mut c = Criterion { measured: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("c", |b| {
            b.iter_custom(|iters| {
                calls += iters;
                std::time::Duration::from_nanos(10)
            })
        });
        assert_eq!(calls, 3);
    }
}
