#![warn(missing_docs)]

//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync` primitives.
//!
//! Matches the `parking_lot` API shape this workspace uses: guards are
//! returned directly (no poisoning `Result`s — a poisoned std lock is
//! recovered, matching `parking_lot`'s panic-transparent behavior).
//! Fairness and inline-parking performance properties of the real crate
//! are not reproduced; contention behavior is whatever `std::sync`
//! provides.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock (non-poisoning interface).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning interface).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
