#![warn(missing_docs)]

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`arbitrary::any`], integer-range strategies,
//! [`collection::vec`], [`strategy::Just`], and the `prop_assert*`
//! macros — with deterministic per-case seeding so failures are
//! reproducible by case number.
//!
//! **No shrinking**: a failing case reports its generated inputs
//! verbatim (they tend to be small already because the strategies here
//! are used with tight ranges). This is a debugging-ergonomics loss
//! only; the pass/fail verdict of every property is unchanged.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a
/// time, threading the config expression through.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        __config.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Choose uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
