//! `any::<T>()` — full-range strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u8_covers_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = any::<u8>();
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            seen_high |= v >= 128;
            seen_low |= v < 128;
        }
        assert!(seen_high && seen_low);
    }
}
