//! Value-generation strategies (no shrinking).

use std::fmt::Debug;

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a
/// fresh value directly, and failures are reported without shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (re-draws up to a bounded number
    /// of times).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 draws in a row", self.whence);
    }
}

/// Uniform choice among boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<V>(Vec<BoxedStrategy<V>>);

impl<V: Debug> OneOf<V> {
    /// Build from the macro's boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof of zero strategies");
        OneOf(arms)
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut SmallRng) -> V {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_map_and_oneof() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = crate::prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            (100u64..110).prop_map(|x| x + 1),
        ];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0 || (101..111).contains(&v), "{v}");
        }
    }

    #[test]
    fn just_and_tuples() {
        let mut rng = SmallRng::seed_from_u64(2);
        let s = (Just(7u8), 0u16..3);
        let (a, b) = s.generate(&mut rng);
        assert_eq!(a, 7);
        assert!(b < 3);
    }

    #[test]
    fn filter_retries() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
