//! Per-test configuration and case-level plumbing for [`proptest!`](crate::proptest).

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How many cases each property runs (a subset of the real crate's
/// config — only the fields this workspace sets).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build from an assertion message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator for one case: fixed base seed mixed with the
/// case index, so `case N failed` is reproducible by rerunning the
/// test.
pub fn case_rng(case: u32) -> SmallRng {
    SmallRng::seed_from_u64(0x00C0_FFEE_D00D_5EEDu64 ^ (u64::from(case) << 17))
}
