//! Collection strategies (`vec`).

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `len`.
///
/// # Panics
///
/// Panics (on generation) if `len` is empty.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let s = vec(0u8..5, 2..9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
