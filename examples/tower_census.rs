//! Tower-height census of a concurrently built skip list (paper §4).
//!
//! Builds a skip list from four threads under churn, then prints the
//! tower height histogram next to the ideal geometric(1/2) — the
//! distribution the paper argues is approximately preserved despite
//! interrupted constructions.
//!
//! ```sh
//! cargo run --release --example tower_census
//! ```

use std::sync::Arc;

use lockfree_lists::SkipList;

fn main() {
    const KEYS: u64 = 20_000;
    let sl: Arc<SkipList<u64, u64>> = Arc::new(SkipList::new());

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let sl = sl.clone();
            s.spawn(move || {
                let h = sl.handle();
                let per = KEYS / 4;
                for i in 0..per {
                    let k = t * per + i;
                    h.insert(k, k).unwrap();
                    // Sprinkle deletions so some constructions race
                    // with removals of their own root.
                    if i % 7 == 0 {
                        let _ = h.remove(&(k / 2));
                    }
                }
            });
        }
    });

    let heights = sl.tower_heights();
    let total = heights.len() as f64;
    let max_h = heights.iter().copied().max().unwrap_or(1);
    let mut counts = vec![0u64; max_h + 1];
    for h in &heights {
        counts[*h] += 1;
    }

    println!("{} towers, max height {max_h}", heights.len());
    println!(
        "{:>6} {:>8} {:>10} {:>10}  histogram",
        "height", "towers", "observed", "geometric"
    );
    for (h, &count) in counts.iter().enumerate().skip(1) {
        let obs = count as f64 / total;
        let exp = 0.5f64.powi(h as i32);
        let bar = "#".repeat((obs * 120.0).round() as usize);
        println!("{h:>6} {count:>8} {obs:>10.4} {exp:>10.4}  {bar}");
    }
    let mean: f64 = heights.iter().map(|&h| h as f64).sum::<f64>() / total;
    println!("mean height {mean:.3} (ideal 2.0)");
}
