//! Epochs vs hazard pointers under a stalled reader (paper §5 / [9]).
//!
//! The paper leaves memory management open; this workspace implements
//! both schemes its related work names. Their failure modes differ:
//!
//! * **epochs** (`lf-reclaim`, used by the FR structures): one stalled
//!   pinned thread blocks *all* reclamation — garbage grows without
//!   bound until it unpins;
//! * **hazard pointers** (`lf-hazard`, used by the Michael baseline):
//!   a stalled thread protects at most its few hazard slots — all
//!   other garbage is freed promptly.
//!
//! This example retires a stream of nodes while one reader stalls, and
//! prints how much garbage each scheme is left holding.
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use lockfree_lists::hazard::Domain;
use lockfree_lists::reclaim::Collector;

const RETIRES: usize = 10_000;

struct Counted(Arc<AtomicUsize>);
impl Drop for Counted {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn main() {
    // ---- epoch scheme with a stalled pin ---------------------------
    let freed_epoch = {
        let drops = Arc::new(AtomicUsize::new(0));
        let collector = Collector::new();
        let stalled = collector.register();
        let _stalled_pin = stalled.pin(); // never released during the run

        let worker = collector.register();
        for _ in 0..RETIRES {
            let guard = worker.pin();
            let p = Box::into_raw(Box::new(Counted(drops.clone())));
            unsafe { guard.defer_drop_box(p) };
        }
        for _ in 0..8 {
            worker.flush();
        }
        drops.load(Ordering::SeqCst)
    };

    // ---- hazard scheme with a stalled protection -------------------
    let freed_hazard = {
        let drops = Arc::new(AtomicUsize::new(0));
        let domain = Domain::new();

        // The stalled reader protects exactly one node forever.
        let stalled = domain.register();
        let protected = Box::into_raw(Box::new(Counted(drops.clone())));
        let src = AtomicPtr::new(protected);
        let _ = stalled.protect(0, &src);

        let worker = domain.register();
        src.store(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { worker.retire(protected) };
        for _ in 0..RETIRES - 1 {
            let p = Box::into_raw(Box::new(Counted(drops.clone())));
            unsafe { worker.retire(p) };
        }
        worker.scan();
        let freed = drops.load(Ordering::SeqCst);
        stalled.clear(0); // allow cleanup before the domain drops
        freed
    };

    // ---- amortized pins: a standing announcement acts like a pin ----
    // Handles can trade reclamation promptness for throughput: with
    // `amortize_pins(n)` the epoch announcement is refreshed only every
    // n-th unpin, so between refreshes the handle *stays* announced —
    // cheap pins, but garbage waits like under a held guard until the
    // handle quiesces (`quiesce`/`flush`) or keeps operating.
    let (blocked_while_lazy, freed_after_quiesce) = {
        let drops = Arc::new(AtomicUsize::new(0));
        let collector = Collector::new();
        let lazy = collector.register();
        lazy.amortize_pins(u32::MAX); // announce once, never refresh
        drop(lazy.pin()); // leaves a standing announcement behind

        let worker = collector.register();
        for _ in 0..RETIRES {
            let guard = worker.pin();
            let p = Box::into_raw(Box::new(Counted(drops.clone())));
            unsafe { guard.defer_drop_box(p) };
        }
        for _ in 0..8 {
            worker.flush();
        }
        let blocked = RETIRES - drops.load(Ordering::SeqCst);
        lazy.quiesce(); // withdraw the standing announcement
        for _ in 0..8 {
            worker.flush();
        }
        (blocked, drops.load(Ordering::SeqCst))
    };

    println!("{RETIRES} nodes retired while one reader stalls:");
    println!(
        "  epochs         : {freed_epoch:>6} freed, {:>6} stuck behind the stalled pin",
        RETIRES - freed_epoch
    );
    println!(
        "  hazard pointers: {freed_hazard:>6} freed, {:>6} protected by the stalled slot",
        RETIRES - freed_hazard
    );
    println!(
        "  amortized pins : {blocked_while_lazy:>6} blocked by a standing announcement, \
         {freed_after_quiesce:>6} freed after quiesce()"
    );
    println!();
    println!("epochs batch cheaply (one pin per operation) but a stalled pin");
    println!("blocks all reclamation; hazard pointers pay a publish+validate");
    println!("per node hop but bound stalled-reader garbage by the number of");
    println!("hazard slots. The FR structures choose epochs because backlink");
    println!("recovery may traverse nodes unlinked during the operation —");
    println!("cheap under a pin, awkward to protect slot-by-slot.");

    assert_eq!(freed_epoch, 0, "stalled pin should block all epoch frees");
    assert_eq!(
        freed_hazard,
        RETIRES - 1,
        "hazard scheme should free everything but the protected node"
    );
    assert!(
        blocked_while_lazy > 0,
        "standing announcement should hold back reclamation"
    );
    assert_eq!(
        freed_after_quiesce, RETIRES,
        "quiesce should release everything the announcement blocked"
    );
}
