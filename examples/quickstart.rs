//! Quickstart: the lock-free list and skip list as concurrent maps.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use lockfree_lists::map::BucketMap;
use lockfree_lists::{FrList, SkipList, SkipSet};

fn main() {
    // --- FrList: the paper's §3 linked list -------------------------
    let list = FrList::new();
    let h = list.handle();

    h.insert(3, "three").unwrap();
    h.insert(1, "one").unwrap();
    h.insert(2, "two").unwrap();
    assert_eq!(h.insert(2, "again").unwrap_err(), (2, "again")); // duplicates rejected

    assert_eq!(h.get(&2), Some("two"));
    assert_eq!(h.remove(&2), Some("two"));
    assert!(!h.contains(&2));

    let contents: Vec<(i32, &str)> = h.iter().collect();
    println!("list after ops: {contents:?}");
    assert_eq!(contents, vec![(1, "one"), (3, "three")]);

    // --- SkipList: the paper's §4 dictionary, O(log n) expected -----
    let map = Arc::new(SkipList::new());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let h = map.handle();
                for i in 0..1_000 {
                    h.insert(t * 1_000 + i, i).unwrap();
                }
            });
        }
    });
    assert_eq!(map.len(), 4_000);
    println!(
        "skip list holds {} entries after 4 concurrent writers",
        map.len()
    );

    let h = map.handle();
    assert_eq!(h.get(&2_500), Some(500));

    // --- BucketMap: hashed buckets of FR lists, point ops only ------
    // No ordering: lookups hash to one short chain instead of walking
    // a sorted structure, and `iter` yields entries in arbitrary order
    // under a single pin.
    let index: BucketMap<u64, &str> = BucketMap::new(16);
    let ih = index.handle();
    ih.insert(7, "seven").unwrap();
    ih.insert(1_000_007, "a prime").unwrap();
    assert_eq!(ih.get_with(&7, |v| v.len()), Some(5));
    assert_eq!(ih.remove(&1_000_007), Some("a prime"));
    let mut entries: Vec<(u64, &str)> = ih.iter().collect();
    entries.sort_unstable(); // arbitrary iteration order: sort to assert
    assert_eq!(entries, vec![(7, "seven")]);
    println!(
        "bucket map across {} buckets: {entries:?}",
        index.bucket_count()
    );

    // --- SkipSet: set façade ----------------------------------------
    // Grab one handle and reuse it: the facade methods on `SkipSet`
    // itself register a fresh handle (thread registration + epoch pin)
    // on every call, which is convenient but slow on hot paths.
    let set = SkipSet::new();
    let sh = set.handle();
    assert!(sh.insert("apple"));
    assert!(sh.insert("banana"));
    assert!(!sh.insert("apple"));
    assert!(sh.remove(&"banana"));
    println!("set contains apple: {}", sh.contains(&"apple"));
}
