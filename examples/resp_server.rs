//! Serve a lock-free skip list over real TCP, speaking enough RESP
//! that `redis-cli` works against it:
//!
//! ```sh
//! cargo run --release --example resp_server              # ephemeral port
//! cargo run --release --example resp_server -- 127.0.0.1:7379
//! ```
//!
//! then, from another terminal:
//!
//! ```text
//! $ redis-cli -p 7379 SET answer 42
//! OK
//! $ redis-cli -p 7379 GET answer
//! "42"
//! $ redis-cli -p 7379 SCAN 0 COUNT 4
//! 1) "616e73776572"
//! 2) 1) "answer"
//! $ redis-cli -p 7379 SHUTDOWN
//! ```
//!
//! The backing tier is the ordered skip list (so `SCAN` pages the
//! keyspace in key order), admission is adaptive (the controller grows
//! lane batches under pressure and halves them on a latency-target
//! violation), overload surfaces as `-BUSY shed`/`-BUSY rejected`
//! replies, and every lane worker plus the acceptor heartbeats into the
//! `lf-trace` stall watchdog. Set `LF_TRACE_DUMP=<path>` to write the
//! flight-recorder ring as a JSON-lines dump on exit — `lf-trace check`
//! validates it; the CI server-smoke job does exactly that.
//!
//! `SHUTDOWN` is honored because this process opts in with
//! `allow_shutdown(true)`; embedders that do not want a remote off
//! switch simply leave it off and `SHUTDOWN` answers `-ERR`.

use std::sync::Arc;
use std::time::Duration;

use lf_async::{AsyncSkipList, BackpressurePolicy, ServiceBuilder};
use lf_server::{Bytes, ControllerConfig, ServerBuilder};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".into());

    // With LF_TRACE_DUMP set, trace the whole serving run and dump the
    // flight-recorder rings on exit — the CI server-smoke job audits
    // that dump with `lf-trace check`.
    let trace_dump = lf_trace::recorder::env_dump_path();
    if trace_dump.is_some() {
        lf_trace::enable();
    }

    let service: Arc<AsyncSkipList<Bytes, Bytes>> = Arc::new(
        ServiceBuilder::new()
            .workers(2)
            .queue_capacity(256)
            .batch_max(4) // adaptive admission re-tunes this live
            .policy(BackpressurePolicy::Shed)
            .watchdog(Duration::from_secs(5))
            .build_skiplist(),
    );

    let server = ServerBuilder::new()
        .addr(addr)
        .adaptive(ControllerConfig::default())
        .allow_shutdown(true)
        .serve(Arc::clone(&service))
        .expect("bind");

    println!("lf-server listening on {}", server.local_addr());
    println!(
        "try: redis-cli -p {} PING  (SHUTDOWN to stop)",
        server.local_addr().port()
    );

    // Blocks until a client issues SHUTDOWN (allowed above).
    server.wait();

    let snap = server.metrics().snapshot();
    println!(
        "served {} connections, {} commands ({} ok, {} shed, {} rejected, {} protocol errors)",
        snap.accepted, snap.commands, snap.ok, snap.shed, snap.rejected, snap.protocol_errors
    );
    drop(server);
    service.shutdown();

    if let Some(path) = trace_dump {
        match lf_trace::recorder::dump_to_path(&path, "resp_server exit") {
            Ok(events) => println!("wrote {events} trace events to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        lf_trace::disable();
    }
}
