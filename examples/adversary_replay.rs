//! Replay the paper's adversarial interference deterministically.
//!
//! Uses the step-machine scheduler to (1) show the three-step deletion
//! of Fig. 2 and (2) run one round of the §3.1 adversary against both
//! the Harris list and the Fomitchev–Ruppert list, printing how many
//! steps each inserter needs to recover.
//!
//! ```sh
//! cargo run --example adversary_replay
//! ```

use std::sync::Arc;

use lockfree_lists::sched::sim::{SimFrList, SimHarrisList};
use lockfree_lists::sched::{Scheduler, StepKind};

fn main() {
    // ---- Fig. 2: watch a deletion go flag -> mark -> unlink --------
    println!("deleting 2 from [1, 2, 3]:");
    let sched = Scheduler::new();
    let list = Arc::new(SimFrList::new());
    for k in [1, 2, 3] {
        let l = list.clone();
        let op = sched.spawn(move |p| l.insert(k, &p));
        sched.run_to_completion(op.pid());
        op.join();
    }
    let l = list.clone();
    let del = sched.spawn(move |p| l.delete(2, &p));
    for expected in [StepKind::CasFlag, StepKind::CasMark, StepKind::CasUnlink] {
        assert!(sched.run_until_pending(del.pid(), |k| k.is_cas()));
        println!("  next C&S: {expected:?}");
        sched.grant(del.pid(), 1);
    }
    sched.run_to_completion(del.pid());
    assert!(del.join());
    println!("  final keys: {:?}\n", list.collect_keys());

    // ---- one §3.1 round against each design ------------------------
    for flavour in ["harris", "fomitchev-ruppert"] {
        let n = 50;
        let sched = Scheduler::new();
        println!("{flavour}: {n}-element list, inserter paused before its C&S,");
        println!("  then the last node is deleted out from under it...");

        let (recovery, ok) = match flavour {
            "harris" => {
                let list = Arc::new(SimHarrisList::new());
                for k in 1..=n {
                    let l = list.clone();
                    let op = sched.spawn(move |p| l.insert(k, &p));
                    sched.run_to_completion(op.pid());
                    op.join();
                }
                let l = list.clone();
                let ins = sched.spawn(move |p| l.insert(n + 10, &p));
                assert!(sched.run_until_pending(ins.pid(), |k| k == StepKind::CasInsert));
                let before = sched.steps(ins.pid());
                let l = list.clone();
                let d = sched.spawn(move |p| l.delete(n, &p));
                sched.run_to_completion(d.pid());
                d.join();
                sched.run_to_completion(ins.pid());
                let pid = ins.pid();
                let ok = ins.join();
                (sched.steps(pid) - before, ok)
            }
            _ => {
                let list = Arc::new(SimFrList::new());
                for k in 1..=n {
                    let l = list.clone();
                    let op = sched.spawn(move |p| l.insert(k, &p));
                    sched.run_to_completion(op.pid());
                    op.join();
                }
                let l = list.clone();
                let ins = sched.spawn(move |p| l.insert(n + 10, &p));
                assert!(sched.run_until_pending(ins.pid(), |k| k == StepKind::CasInsert));
                let before = sched.steps(ins.pid());
                let l = list.clone();
                let d = sched.spawn(move |p| l.delete(n, &p));
                sched.run_to_completion(d.pid());
                d.join();
                sched.run_to_completion(ins.pid());
                let pid = ins.pid();
                let ok = ins.join();
                (sched.steps(pid) - before, ok)
            }
        };
        assert!(ok);
        println!("  recovery cost: {recovery} steps\n");
    }
    println!("Harris restarts from the head (cost ~ list length); the FR list");
    println!("follows one backlink. Scale this to every round of every");
    println!("operation and you get the paper's O(n*c) vs O(n + c) separation");
    println!("(run `cargo run -p lf-bench --release --bin experiments -- e2`).");
}
