//! A realistic scenario: a concurrent event index.
//!
//! Four producer threads ingest events (sequence number → payload id)
//! into a lock-free skip list while two consumer threads poll for
//! recent events and an expiry thread trims old ones — the mixed
//! insert/search/delete pattern the paper's introduction motivates,
//! with no locks anywhere.
//!
//! The payloads themselves live in a second structure chosen for its
//! access pattern: payload id → blob is pure point ops (no ordering,
//! no scans), so it goes in `lf-map`'s bucketed hash map, while the
//! sequence index — which the expiry thread trims *in order* — stays
//! in the skip list.
//!
//! ```sh
//! cargo run --example concurrent_index
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use lockfree_lists::map::BucketMap;
use lockfree_lists::SkipList;

const EVENTS_PER_PRODUCER: u64 = 5_000;
const PRODUCERS: u64 = 4;
const RETENTION: u64 = 2_000;

fn main() {
    let index: Arc<SkipList<u64, u64>> = Arc::new(SkipList::new());
    // Payload store: point lookups by payload id only, so a hashed
    // bucket map — every op touches one short chain, never a tower.
    let payloads: Arc<BucketMap<u64, u64>> = Arc::new(BucketMap::new(64));
    let next_seq = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let found = Arc::new(AtomicU64::new(0));
    let missed = Arc::new(AtomicU64::new(0));
    let expired = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Producers: claim a sequence number, index the event.
        for p in 0..PRODUCERS {
            let index = index.clone();
            let payloads = payloads.clone();
            let next_seq = next_seq.clone();
            s.spawn(move || {
                let h = index.handle();
                let ph = payloads.handle();
                for i in 0..EVENTS_PER_PRODUCER {
                    let seq = next_seq.fetch_add(1, Ordering::SeqCst);
                    let payload_id = p * 1_000_000 + i;
                    // Publish the payload first, then index it: a
                    // consumer that finds the sequence number can
                    // always resolve its payload.
                    ph.insert(payload_id, seq).expect("payload ids are unique");
                    h.insert(seq, payload_id)
                        .expect("sequence numbers are unique");
                }
            });
        }

        // Consumers: sample recent sequence numbers.
        for _ in 0..2 {
            let index = index.clone();
            let next_seq = next_seq.clone();
            let done = done.clone();
            let found = found.clone();
            let missed = missed.clone();
            let payloads = payloads.clone();
            s.spawn(move || {
                let h = index.handle();
                let ph = payloads.handle();
                let mut probe = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let hi = next_seq.load(Ordering::SeqCst);
                    if hi == 0 {
                        continue;
                    }
                    probe = (probe * 6364136223846793005).wrapping_add(1442695040888963407);
                    let seq = probe % hi;
                    // Index hit → resolve the payload by point lookup.
                    // The expiry thread may trim `seq` between the two
                    // lookups, so a vanished payload is a miss (expired
                    // mid-probe), not an error.
                    if let Some(payload_id) = h.get(&seq) {
                        if ph.get(&payload_id).is_some() {
                            found.fetch_add(1, Ordering::SeqCst);
                        } else {
                            missed.fetch_add(1, Ordering::SeqCst);
                        }
                    } else {
                        missed.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }

        // Expiry: keep only the most recent RETENTION events.
        {
            let index = index.clone();
            let payloads = payloads.clone();
            let next_seq = next_seq.clone();
            let done = done.clone();
            let expired = expired.clone();
            s.spawn(move || {
                let h = index.handle();
                let ph = payloads.handle();
                let mut low_water = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let hi = next_seq.load(Ordering::SeqCst);
                    while low_water + RETENTION < hi {
                        // Unindex first, then drop the payload — the
                        // mirror of the producers' publish order.
                        if let Some(payload_id) = h.remove(&low_water) {
                            ph.remove(&payload_id);
                            expired.fetch_add(1, Ordering::SeqCst);
                        }
                        low_water += 1;
                    }
                    std::thread::yield_now();
                }
            });
        }

        // Wait for producers (the first PRODUCERS spawned threads) by
        // watching the sequence counter, then stop the pollers.
        while next_seq.load(Ordering::SeqCst) < PRODUCERS * EVENTS_PER_PRODUCER {
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);
    });

    let total = PRODUCERS * EVENTS_PER_PRODUCER;
    println!("ingested        : {total}");
    println!("expired         : {}", expired.load(Ordering::SeqCst));
    println!("still indexed   : {}", index.len());
    println!("payloads stored : {}", payloads.len());
    println!(
        "consumer probes : {} hits, {} misses",
        found.load(Ordering::SeqCst),
        missed.load(Ordering::SeqCst)
    );

    // Sanity: every retained event is readable; expired + retained =
    // total; the payload store mirrors the index exactly (every expiry
    // removed both halves).
    let h = index.handle();
    let retained = h.iter().count() as u64;
    assert_eq!(retained, index.len() as u64);
    assert_eq!(expired.load(Ordering::SeqCst) + retained, total);
    assert_eq!(payloads.len(), index.len());
    let ph = payloads.handle();
    assert_eq!(ph.iter().count(), payloads.len());
    index.validate_quiescent();
    payloads.validate_quiescent();
    println!("final structural validation: OK");
}
