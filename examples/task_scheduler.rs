//! A lock-free task scheduler on the skip-list priority queue — the
//! application domain named in the paper's related work (Lotan–Shavit,
//! Sundell–Tsigas built concurrent priority queues from skip lists).
//!
//! Three producer threads enqueue jobs with mixed priorities while
//! four worker threads continuously pop and "execute" the most urgent
//! job. At the end every job must have run exactly once, and urgent
//! jobs must (statistically) not languish behind bulk jobs.
//!
//! ```sh
//! cargo run --release --example task_scheduler
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lockfree_lists::PriorityQueue;

const JOBS_PER_PRODUCER: u64 = 3_000;
const PRODUCERS: u64 = 3;

#[derive(Clone, Debug)]
struct Job {
    id: u64,
    urgent: bool,
}

fn main() {
    let queue: Arc<PriorityQueue<u8, Job>> = Arc::new(PriorityQueue::new());
    let produced_all = Arc::new(AtomicBool::new(false));
    let executed = Arc::new(AtomicU64::new(0));
    let urgent_latency = Arc::new(Mutex::new(Vec::new()));
    let done_ids = Arc::new(Mutex::new(std::collections::HashSet::new()));

    std::thread::scope(|s| {
        // Producers.
        for p in 0..PRODUCERS {
            let queue = queue.clone();
            s.spawn(move || {
                let h = queue.handle();
                let mut x = p.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                for i in 0..JOBS_PER_PRODUCER {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    let urgent = x % 10 == 0; // ~10% urgent
                    let priority = if urgent { 0 } else { 1 + (x % 4) as u8 };
                    h.push(
                        priority,
                        Job {
                            id: p * JOBS_PER_PRODUCER + i,
                            urgent,
                        },
                    );
                }
            });
        }

        // Workers.
        for _ in 0..4 {
            let queue = queue.clone();
            let produced_all = produced_all.clone();
            let executed = executed.clone();
            let urgent_latency = urgent_latency.clone();
            let done_ids = done_ids.clone();
            s.spawn(move || {
                let h = queue.handle();
                loop {
                    match h.pop() {
                        Some((prio, job)) => {
                            // "Execute": account for the job.
                            let pos = executed.fetch_add(1, Ordering::SeqCst);
                            if job.urgent {
                                assert_eq!(prio, 0);
                                urgent_latency.lock().unwrap().push(pos);
                            }
                            assert!(
                                done_ids.lock().unwrap().insert(job.id),
                                "job {} executed twice",
                                job.id
                            );
                        }
                        None => {
                            if produced_all.load(Ordering::SeqCst) && queue.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }

        // Signal completion once every producer has finished: watch the
        // executed+queued totals.
        let total = PRODUCERS * JOBS_PER_PRODUCER;
        while executed.load(Ordering::SeqCst) + queue.len() as u64 != total
            || queue.is_empty() && executed.load(Ordering::SeqCst) != total
        {
            if executed.load(Ordering::SeqCst) == total {
                break;
            }
            std::thread::yield_now();
        }
        produced_all.store(true, Ordering::SeqCst);
    });

    let total = PRODUCERS * JOBS_PER_PRODUCER;
    assert_eq!(executed.load(Ordering::SeqCst), total);
    assert_eq!(done_ids.lock().unwrap().len() as u64, total);
    println!("executed {total} jobs exactly once across 4 workers");

    let lat = urgent_latency.lock().unwrap();
    let avg_urgent_pos: f64 = lat.iter().map(|&p| p as f64).sum::<f64>() / lat.len() as f64;
    println!(
        "urgent jobs: {} ({}% of stream), mean completion position {:.0} of {total}",
        lat.len(),
        lat.len() as u64 * 100 / total,
        avg_urgent_pos
    );
    println!(
        "(urgent jobs jump the queue: their mean position is well below {})",
        total / 2
    );
}
