//! Serve a lock-free skip list through the `lf-async` façade: >100k
//! mixed operations from concurrent driver threads, each multiplexing
//! dozens of in-flight request tasks, then a graceful shutdown with an
//! exact accounting — and a drop-count audit proving that nothing
//! (nodes, payloads, detached futures) leaked.
//!
//! ```sh
//! cargo run --release --example async_service
//! ```

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use lf_async::{AsyncSkipList, BackpressurePolicy, Request, ServiceBuilder};
use lf_sched::rt;
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

const DRIVERS: usize = 4;
const TASKS_PER_DRIVER: usize = 64;
const OPS_PER_TASK: u64 = 400; // 4 × 64 × 400 = 102 400 ops
const KEY_SPACE: u64 = 8_192;

/// Every live value (original or clone handed out by the service)
/// bumps this; every drop decrements. Zero at the end proves the
/// structure, the queues, and every detached future released their
/// payloads.
static LIVE_VALUES: AtomicI64 = AtomicI64::new(0);

#[derive(Debug)]
struct Payload(u64);

impl Payload {
    fn new(v: u64) -> Self {
        LIVE_VALUES.fetch_add(1, Ordering::Relaxed);
        Payload(v)
    }
}

impl Clone for Payload {
    fn clone(&self) -> Self {
        Payload::new(self.0)
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        LIVE_VALUES.fetch_sub(1, Ordering::Relaxed);
    }
}

fn main() {
    let service: Arc<AsyncSkipList<u64, Payload>> = Arc::new(
        ServiceBuilder::new()
            .workers(4)
            .queue_capacity(1_024)
            .batch_max(64)
            .policy(BackpressurePolicy::Block)
            .build_skiplist(),
    );

    let executed = Arc::new(AtomicU64::new(0));
    let started = std::time::Instant::now();
    let drivers: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let service = Arc::clone(&service);
            let executed = Arc::clone(&executed);
            std::thread::spawn(move || {
                let tasks: Vec<Pin<Box<dyn Future<Output = ()> + Send>>> = (0..TASKS_PER_DRIVER)
                    .map(|t| -> Pin<Box<dyn Future<Output = ()> + Send>> {
                        let service = Arc::clone(&service);
                        let executed = Arc::clone(&executed);
                        Box::pin(async move {
                            let seed = (d as u64) << 32 | t as u64;
                            let mut w = WorkloadIter::new(
                                Mix::UPDATE_HEAVY,
                                KeyDist::Uniform { space: KEY_SPACE },
                                seed,
                            );
                            for _ in 0..OPS_PER_TASK {
                                let op = w.next_op();
                                let r = match op.kind {
                                    OpKind::Insert => {
                                        service.insert(op.key, Payload::new(op.key)).await
                                    }
                                    OpKind::Remove => service.remove(op.key).await,
                                    OpKind::Search => service.get(op.key).await,
                                };
                                r.expect("no backpressure failure under Block policy");
                                executed.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                rt::run_all(tasks);
            })
        })
        .collect();
    for d in drivers {
        d.join().unwrap();
    }
    let elapsed = started.elapsed();

    // A few futures deliberately dropped mid-flight: submitted on first
    // poll, then abandoned. The ops execute detached; their results are
    // discarded with the completion cells — nothing leaks.
    for k in 0..32u64 {
        let mut fut = service.insert(KEY_SPACE + k, Payload::new(k));
        let mut cx = std::task::Context::from_waker(std::task::Waker::noop());
        let _ = Pin::new(&mut fut).poll(&mut cx);
        drop(fut);
    }

    service.shutdown();

    let total = executed.load(Ordering::Relaxed);
    let m = service.metrics();
    println!(
        "executed {total} awaited ops (+32 detached) in {elapsed:.2?} — \
         {:.0} kops/s end-to-end",
        total as f64 / elapsed.as_secs_f64() / 1e3
    );
    println!(
        "service accounting: enqueued {} = completed {} + shed {} + shutdown_dropped {}",
        m.enqueued, m.completed, m.shed, m.shutdown_dropped
    );
    assert_eq!(m.enqueued, m.completed + m.shed + m.shutdown_dropped);
    assert!(m.completed >= total, "every awaited op completed");
    println!(
        "enqueue-to-complete: p50 {} µs, p99 {} µs; mean batch {:.1}; {} keys live",
        m.enqueue_to_complete_ns.p50() / 1_000,
        m.enqueue_to_complete_ns.p99() / 1_000,
        m.batch_size.mean(),
        service.len(),
    );

    // Post-shutdown submissions fail cleanly instead of hanging.
    assert!(matches!(
        rt::block_on(service.op(Request::Len)),
        Err(lf_async::Error::Shutdown)
    ));

    println!("\n--- prometheus exposition (excerpt) ---");
    for line in m.to_prometheus().lines().take(9) {
        println!("{line}");
    }

    // Drop the service (and with it the skip list + epoch collector):
    // the drop-count audit must come back to zero.
    drop(service);
    let live = LIVE_VALUES.load(Ordering::Relaxed);
    assert_eq!(live, 0, "leaked {live} payloads");
    println!("\nclean shutdown: all workers joined, zero leaked payloads");
}
