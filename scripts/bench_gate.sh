#!/usr/bin/env bash
# bench_gate.sh — quick perf regression gate for the throughput experiments.
#
# Runs the short (quick-size) variants of e4 (list throughput), e6
# (skip-list throughput), e7 (async serving), and e13 (shard
# scaling), writes fresh
# BENCH_<id>.json artifacts into a scratch directory, and compares the
# fr-* rows against the committed baselines at the repo root. Fails
# (exit 1) when the median throughput regression across comparable rows
# exceeds the threshold. A missing committed baseline is never an
# error: that experiment is skipped with a notice and the gate still
# exits 0 (fresh checkouts and new experiments gate nothing).
#
#   ./scripts/bench_gate.sh                 # gate at the default 10%
#   BENCH_GATE_THRESHOLD=25 ./scripts/...   # loosen the gate
#   BENCH_GATE_UPDATE=1 ./scripts/...       # also refresh committed baselines
#
# The committed baselines are full-size runs; the gate run uses quick
# sizes, so only rows whose (impl, mix, threads) triple exists in both
# files are compared. Quick runs do fewer ops per thread (more warmup
# noise), which is one more reason the gate is median-based and advisory.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
THRESHOLD="${BENCH_GATE_THRESHOLD:-10}"
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

cargo build --release -p lf-bench --bin experiments

GATED_EXPERIMENTS=(e4 e6 e7 e13)

for exp in "${GATED_EXPERIMENTS[@]}"; do
    echo "== bench gate: running quick $exp =="
    (cd "$SCRATCH" && "$REPO_ROOT/target/release/experiments" "$exp" >/dev/null)
done

fail=0
for exp in "${GATED_EXPERIMENTS[@]}"; do
    baseline="$REPO_ROOT/BENCH_$exp.json"
    fresh="$SCRATCH/BENCH_$exp.json"
    if [[ ! -f "$baseline" ]]; then
        echo "bench gate: no committed baseline $baseline — skipping $exp (not a failure)"
        continue
    fi
    if [[ ! -f "$fresh" ]]; then
        echo "bench gate: quick run produced no $fresh — skipping $exp (not a failure)"
        continue
    fi
    python3 - "$baseline" "$fresh" "$THRESHOLD" "$exp" <<'PY' || fail=1
import json, statistics, sys

baseline_path, fresh_path, threshold, exp = sys.argv[1:5]
threshold = float(threshold)

def rows(path):
    with open(path) as f:
        data = json.load(f)
    # e4/e6 rows vary over driver threads; e7 (async service) rows vary
    # over lane workers. Either way the third key component is the
    # concurrency knob.
    return {
        (r["impl"], r["mix"], r.get("threads", r.get("workers"))):
            r["throughput_ops_per_s"]
        for r in data["rows"]
        if r["impl"].startswith("fr-")
    }

base, fresh = rows(baseline_path), rows(fresh_path)
shared = sorted(set(base) & set(fresh))
if not shared:
    print(f"{exp}: no comparable fr-* rows between baseline and fresh run")
    sys.exit(0)

deltas = []
for key in shared:
    pct = (fresh[key] / base[key] - 1.0) * 100.0
    deltas.append(pct)
    impl, mix, threads = key
    print(f"{exp} {impl:14s} {mix:12s} {threads}t: "
          f"{base[key] / 1e3:9.0f} -> {fresh[key] / 1e3:9.0f} kops/s ({pct:+6.1f}%)")

median = statistics.median(deltas)
print(f"{exp}: median delta {median:+.1f}% over {len(shared)} rows "
      f"(gate: fail below -{threshold:.0f}%)")
if median < -threshold:
    # Name the metric and both medians so the failure is actionable
    # straight from the CI log, without re-running anything locally.
    base_median = statistics.median(base[k] for k in shared)
    fresh_median = statistics.median(fresh[k] for k in shared)
    print(f"{exp}: REGRESSION beyond {threshold:.0f}% threshold")
    print(f"{exp}: offending metric: throughput_ops_per_s (fr-* rows)")
    print(f"{exp}:   baseline median: {base_median:,.0f} ops/s ({baseline_path})")
    print(f"{exp}:   fresh median:    {fresh_median:,.0f} ops/s ({fresh_path})")
    sys.exit(1)
PY
done

if [[ "${BENCH_GATE_UPDATE:-0}" == "1" ]]; then
    echo "bench gate: BENCH_GATE_UPDATE=1 — regenerating committed baselines (full sizes)"
    for exp in "${GATED_EXPERIMENTS[@]}"; do
        (cd "$REPO_ROOT" && ./target/release/experiments "$exp" --full >/dev/null)
    done
fi

exit "$fail"
