#!/usr/bin/env bash
# bench_gate.sh — quick perf regression gate for the throughput experiments.
#
# Runs the short (quick-size) variants of e4 (list throughput), e6
# (skip-list throughput), e7 (async serving), e13 (shard scaling), e14
# (cross-SMR matrix), e15 (hash map vs sharded skip list), and e16
# (loopback TCP serving), writes fresh BENCH_<id>.json artifacts into a
# scratch directory, and compares the fr-*/lf-server-* rows against the
# committed baselines at the repo root. Fails (exit 1) when the median
# throughput regression across comparable rows exceeds the threshold for
# a *gated* experiment. e14, e15, and e16 are advisory on their first
# landings: their deltas are printed but never fail the gate (quick-size
# cross-backend ratios and loopback TCP on a loaded CI box are too noisy
# to block on yet — promote them to GATED_EXPERIMENTS
# once a few landings of data exist). e16 rows carry a shed-rate, which
# is printed next to every throughput delta: a throughput drop at equal
# shed-rate is a serving regression, one with a higher shed-rate is the
# admission controller refusing more. A missing committed baseline is
# never an error: that experiment is skipped with a notice and the gate
# still exits 0 (fresh checkouts and new experiments gate nothing).
#
# e4 and e6 additionally flag (warning only, never a failure) any
# comparable row whose p99 op latency worsened by more than
# BENCH_GATE_P99_THRESHOLD percent (default 25): tail regressions can
# hide behind a flat throughput median.
#
#   ./scripts/bench_gate.sh                 # gate at the default 10%
#   BENCH_GATE_THRESHOLD=25 ./scripts/...   # loosen the gate
#   BENCH_GATE_UPDATE=1 ./scripts/...       # also refresh committed baselines
#
# The committed baselines are full-size runs; the gate run uses quick
# sizes, so only rows whose (impl, mix, threads) triple exists in both
# files are compared. Quick runs do fewer ops per thread (more warmup
# noise), which is one more reason the gate is median-based and advisory.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
THRESHOLD="${BENCH_GATE_THRESHOLD:-10}"
P99_THRESHOLD="${BENCH_GATE_P99_THRESHOLD:-25}"
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

cargo build --release -p lf-bench --bin experiments

# Smoke check (blocking): the lint auditor's machine report must
# round-trip through lf-trace's dependency-free JSON parser — the same
# grammar every downstream consumer of our artifacts uses. A malformed
# emitter fails here, not in whatever tool reads the report next.
echo "== bench gate: lf-lint --json round-trip =="
cargo run --release -q -p lf-lint -- --json > "$SCRATCH/lint-report.json"
cargo run --release -q -p lf-trace -- json-check "$SCRATCH/lint-report.json"

GATED_EXPERIMENTS=(e4 e6 e7 e13)
ADVISORY_EXPERIMENTS=(e14 e15 e16)
# Experiments whose p99 op latency is flagged (warning only).
P99_FLAGGED="e4 e6"

for exp in "${GATED_EXPERIMENTS[@]}" "${ADVISORY_EXPERIMENTS[@]}"; do
    echo "== bench gate: running quick $exp =="
    (cd "$SCRATCH" && "$REPO_ROOT/target/release/experiments" "$exp" >/dev/null)
done

fail=0
for exp in "${GATED_EXPERIMENTS[@]}" "${ADVISORY_EXPERIMENTS[@]}"; do
    mode=gated
    for adv in "${ADVISORY_EXPERIMENTS[@]}"; do
        [[ "$exp" == "$adv" ]] && mode=advisory
    done
    p99=0
    for flagged in $P99_FLAGGED; do
        [[ "$exp" == "$flagged" ]] && p99=1
    done
    baseline="$REPO_ROOT/BENCH_$exp.json"
    fresh="$SCRATCH/BENCH_$exp.json"
    if [[ ! -f "$baseline" ]]; then
        echo "bench gate: no committed baseline $baseline — skipping $exp (not a failure)"
        continue
    fi
    if [[ ! -f "$fresh" ]]; then
        echo "bench gate: quick run produced no $fresh — skipping $exp (not a failure)"
        continue
    fi
    python3 - "$baseline" "$fresh" "$THRESHOLD" "$exp" "$mode" "$p99" "$P99_THRESHOLD" <<'PY' || fail=1
import json, statistics, sys

baseline_path, fresh_path, threshold, exp, mode, p99_flagged, p99_threshold = sys.argv[1:8]
threshold = float(threshold)
p99_threshold = float(p99_threshold)

def rows(path):
    with open(path) as f:
        data = json.load(f)
    # e4/e6 rows vary over driver threads; e7 (async service) and e16
    # (wire serving) rows vary over lane workers. Either way the third
    # key component is the concurrency knob.
    return {
        (r["impl"], r["mix"], r.get("threads", r.get("workers"))): r
        for r in data["rows"]
        if r["impl"].startswith("fr-") or r["impl"].startswith("lf-server")
    }

base, fresh = rows(baseline_path), rows(fresh_path)
shared = sorted(
    k for k in set(base) & set(fresh)
    if "throughput_ops_per_s" in base[k] and "throughput_ops_per_s" in fresh[k]
)
if not shared:
    print(f"{exp}: no comparable fr-* throughput rows between baseline and fresh run")
    sys.exit(0)

deltas = []
for key in shared:
    b = base[key]["throughput_ops_per_s"]
    f = fresh[key]["throughput_ops_per_s"]
    pct = (f / b - 1.0) * 100.0
    deltas.append(pct)
    impl, mix, threads = key
    # Wire-serving rows: a throughput delta is only interpretable next
    # to its shed-rate delta (refusing more IS serving less).
    shed = ""
    if "shed_rate" in base[key] and "shed_rate" in fresh[key]:
        shed = (f"  shed {base[key]['shed_rate'] * 100.0:5.1f}%"
                f" -> {fresh[key]['shed_rate'] * 100.0:5.1f}%")
    print(f"{exp} {impl:16s} {mix:12s} {threads}t: "
          f"{b / 1e3:9.0f} -> {f / 1e3:9.0f} kops/s ({pct:+6.1f}%){shed}")

median = statistics.median(deltas)
label = "advisory — never fails" if mode == "advisory" else f"fail below -{threshold:.0f}%"
print(f"{exp}: median delta {median:+.1f}% over {len(shared)} rows ({label})")

# p99 tail-latency flag (warning only, never an exit-1): a tail
# regression can hide behind a flat throughput median.
if p99_flagged == "1":
    flagged = []
    for key in shared:
        bp = base[key].get("latency_p99_ns")
        fp = fresh[key].get("latency_p99_ns")
        if not bp or not fp:
            continue
        worse = (fp / bp - 1.0) * 100.0
        if worse > p99_threshold:
            impl, mix, threads = key
            flagged.append(f"{exp} {impl} {mix} {threads}t: "
                           f"p99 {bp} -> {fp} ns ({worse:+.0f}%)")
    if flagged:
        print(f"{exp}: WARNING p99 latency regressions beyond "
              f"{p99_threshold:.0f}% on {len(flagged)} row(s) (advisory flag):")
        for line in flagged:
            print(f"  {line}")

if mode == "gated" and median < -threshold:
    # Name the metric and both medians so the failure is actionable
    # straight from the CI log, without re-running anything locally.
    base_median = statistics.median(base[k]["throughput_ops_per_s"] for k in shared)
    fresh_median = statistics.median(fresh[k]["throughput_ops_per_s"] for k in shared)
    print(f"{exp}: REGRESSION beyond {threshold:.0f}% threshold")
    print(f"{exp}: offending metric: throughput_ops_per_s (fr-* rows)")
    print(f"{exp}:   baseline median: {base_median:,.0f} ops/s ({baseline_path})")
    print(f"{exp}:   fresh median:    {fresh_median:,.0f} ops/s ({fresh_path})")
    sys.exit(1)
if mode == "advisory" and median < -threshold:
    print(f"{exp}: advisory regression beyond {threshold:.0f}% — not failing the gate")
    shed_keys = [k for k in shared
                 if "shed_rate" in base[k] and "shed_rate" in fresh[k]]
    if shed_keys:
        bs = statistics.median(base[k]["shed_rate"] for k in shed_keys)
        fs = statistics.median(fresh[k]["shed_rate"] for k in shed_keys)
        print(f"{exp}: median shed-rate {bs * 100.0:.1f}% -> {fs * 100.0:.1f}% "
              f"({(fs - bs) * 100.0:+.1f} pp) — higher means the regression is "
              f"admission refusing more, not the data path slowing")
PY
done

if [[ "${BENCH_GATE_UPDATE:-0}" == "1" ]]; then
    echo "bench gate: BENCH_GATE_UPDATE=1 — regenerating committed baselines (full sizes)"
    for exp in "${GATED_EXPERIMENTS[@]}" "${ADVISORY_EXPERIMENTS[@]}"; do
        (cd "$REPO_ROOT" && ./target/release/experiments "$exp" --full >/dev/null)
    done
fi

exit "$fail"
