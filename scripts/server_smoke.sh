#!/usr/bin/env bash
# server_smoke.sh — blocking wire-level smoke of lf-server.
#
# Starts the example RESP server on loopback with flight-recorder
# tracing enabled, hammers it with 50k pipelined commands through the
# lf-bench smoke client (which verifies, command for command, that
# every one resolved as exactly ok, `-BUSY shed`, or `-BUSY rejected`,
# and that the server's INFO counters agree), shuts the server down
# over the wire, and finally has `lf-trace check` audit the dump the
# server wrote on exit.
#
#   ./scripts/server_smoke.sh             # default port 7463, 50k ops
#   SMOKE_PORT=7500 SMOKE_OPS=100000 ./scripts/server_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${SMOKE_PORT:-7463}"
OPS="${SMOKE_OPS:-50000}"
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT

cargo build --release --example resp_server -p lockfree-lists
cargo build --release -p lf-bench --bin resp_smoke
cargo build --release -p lf-trace

LF_TRACE_DUMP="$SCRATCH/server_trace.jsonl" \
    ./target/release/examples/resp_server "127.0.0.1:$PORT" \
    > "$SCRATCH/server.log" 2>&1 &
SERVER_PID=$!

# The server prints its address once the listener is bound.
for _ in $(seq 1 100); do
    grep -q listening "$SCRATCH/server.log" 2>/dev/null && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "server exited before binding:" >&2
        cat "$SCRATCH/server.log" >&2
        exit 1
    fi
    sleep 0.1
done

# --shutdown stops the server over the wire; its exit finalizes the
# trace dump.
./target/release/resp_smoke "127.0.0.1:$PORT" --ops "$OPS" --shutdown
wait "$SERVER_PID"
cat "$SCRATCH/server.log"

test -s "$SCRATCH/server_trace.jsonl"
./target/release/lf-trace check "$SCRATCH/server_trace.jsonl"
echo "server smoke: OK"
