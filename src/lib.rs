#![warn(missing_docs)]

//! Umbrella crate for the Fomitchev–Ruppert lock-free linked list and
//! skip list reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! downstream users need a single dependency:
//!
//! * `core` (re-exported inline) — the paper's data structures
//!   ([`FrList`], [`ListSet`] and the skip list types);
//! * [`baselines`] — comparator implementations (Harris list,
//!   lock-based lists and skip lists, restart-based skip list);
//! * [`reclaim`] — epoch-based memory reclamation;
//! * [`hazard`] — hazard-pointer reclamation (used by the Michael baseline);
//! * [`map`] — Michael-style bucketed hash map over FR-list buckets;
//! * [`metrics`] — essential-step accounting;
//! * [`sched`] — the deterministic step-machine scheduler used to
//!   replay the paper's adversarial executions;
//! * [`workloads`] — workload generators.

/// Per-thread handles must not cross threads (they own unsynchronized
/// reclamation state). This is enforced at compile time:
///
/// ```compile_fail
/// let list = lockfree_lists::FrList::<u64, u64>::new();
/// let h = list.handle();
/// std::thread::spawn(move || drop(h)); // error: `ListHandle` is not `Send`
/// ```
///
/// ```compile_fail
/// let sl = lockfree_lists::SkipList::<u64, u64>::new();
/// let h = sl.handle();
/// std::thread::spawn(move || drop(h)); // error: `SkipListHandle` is not `Send`
/// ```
pub mod thread_safety_contracts {}

pub use lf_baselines as baselines;
pub use lf_core::*;
pub use lf_hazard as hazard;
pub use lf_map as map;
pub use lf_metrics as metrics;
pub use lf_reclaim as reclaim;
pub use lf_sched as sched;
pub use lf_tagged as tagged;
pub use lf_workloads as workloads;
