//! Key → bucket routing.
//!
//! Every key deterministically maps to exactly one bucket; a point
//! operation therefore touches exactly one FR list, which is what
//! makes the map's expected cost `O(n/B + c(bucket))` — the paper's
//! per-list bound evaluated at the bucket's occupancy and contention.
//!
//! Same router as `lf-shard`: SipHash-1-3 ([`DefaultHasher`]) under
//! the standard library's default (zero) keys, so routing is
//! deterministic within a process and across processes — benchmark
//! runs and their committed baselines bucket identically. HashDoS
//! resistance is deliberately traded away: bucket choice spreads
//! occupancy and contention, it is not a security boundary (a
//! colliding workload degrades to the single-list cost the paper
//! starts from, nothing worse).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Route `key` to a bucket index in `0..=mask` (`mask` = bucket count
/// − 1, bucket count a power of two).
///
/// The high half of the 64-bit hash is folded into the low half before
/// masking so small bucket counts still consume all of SipHash's
/// diffusion.
#[inline]
pub(crate) fn bucket_of<K: Hash + ?Sized>(key: &K, mask: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    let x = h.finish();
    ((x ^ (x >> 32)) as usize) & mask
}

#[cfg(test)]
mod tests {
    use super::bucket_of;

    #[test]
    fn routing_is_deterministic() {
        for k in 0u64..1000 {
            assert_eq!(bucket_of(&k, 63), bucket_of(&k, 63));
        }
    }

    #[test]
    fn routing_respects_mask() {
        for k in 0u64..1000 {
            assert!(bucket_of(&k, 15) < 16);
            assert_eq!(bucket_of(&k, 0), 0);
        }
    }

    #[test]
    fn routing_spreads_sequential_keys() {
        // Sequential u64 keys must not collapse onto one bucket.
        let mut counts = [0usize; 16];
        for k in 0u64..16000 {
            counts[bucket_of(&k, 15)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "bucket {i} starved: {c}/16000");
        }
    }
}
