//! Per-bucket telemetry: operation counts plus hop / CAS-retry
//! histograms, attributed by differencing the thread's `lf-metrics`
//! step counters around each routed operation — the same re-bucketing
//! `lf-shard` does per shard, here per bucket.
//!
//! Occupancy is the statistic that matters most for a hash map: a
//! bucket's expected search cost is linear in its chain length, so
//! [`BucketMapSnapshot::max_occupancy_share`] is the direct health
//! check for the hash spreading the keys.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use lf_metrics::{AtomicHistogram, Histogram, LocalSteps};

/// One bucket's shared statistics cell. Multi-writer (every handle
/// that routes an op to the bucket records here), hence `fetch_add`
/// and the multi-writer [`AtomicHistogram::record`] path.
pub(crate) struct BucketStats {
    ops: AtomicU64,
    hops: AtomicHistogram,
    cas_retries: AtomicHistogram,
}

impl BucketStats {
    pub(crate) fn new() -> Self {
        BucketStats {
            ops: AtomicU64::new(0),
            hops: AtomicHistogram::new(),
            cas_retries: AtomicHistogram::new(),
        }
    }

    /// Credit one routed operation's step delta to this bucket.
    #[inline]
    pub(crate) fn record(&self, delta: LocalSteps) {
        // ord: Relaxed — SHARD.stat: per-shard statistic counter, snapshots racy-fresh
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.hops.record(delta.curr_updates);
        self.cas_retries.record(delta.cas_failures);
    }

    pub(crate) fn snapshot(&self, occupancy: usize) -> BucketSnapshot {
        BucketSnapshot {
            // ord: Relaxed — SHARD.stat: per-shard statistic counter, snapshots racy-fresh
            ops: self.ops.load(Ordering::Relaxed),
            occupancy,
            hops: self.hops.load(),
            cas_retries: self.cas_retries.load(),
        }
    }
}

/// Point-in-time statistics of one bucket (or, merged, of the whole
/// map): racy-fresh while writers run, exact once they are joined.
#[derive(Clone)]
pub struct BucketSnapshot {
    /// Operations routed to this bucket since creation.
    pub ops: u64,
    /// Keys resident in the bucket when the snapshot was taken.
    pub occupancy: usize,
    /// Search hops (`curr` advances) per routed operation.
    pub hops: Histogram,
    /// Failed C&S attempts per routed operation.
    pub cas_retries: Histogram,
}

impl fmt::Debug for BucketSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BucketSnapshot")
            .field("ops", &self.ops)
            .field("occupancy", &self.occupancy)
            .field("hops_p50", &self.hops.p50())
            .field("cas_retries_p99", &self.cas_retries.p99())
            .finish()
    }
}

/// Statistics of every bucket of a [`BucketMap`](crate::BucketMap),
/// one entry per bucket in index order.
#[derive(Clone, Debug)]
pub struct BucketMapSnapshot {
    /// Per-bucket snapshots, indexed by bucket.
    pub per_bucket: Vec<BucketSnapshot>,
}

impl BucketMapSnapshot {
    /// Fold all buckets into one map-wide snapshot: counts and
    /// occupancies sum, histograms merge.
    #[must_use]
    pub fn merged(&self) -> BucketSnapshot {
        let mut ops = 0u64;
        let mut occupancy = 0usize;
        let mut hops = Histogram::new();
        let mut cas_retries = Histogram::new();
        for s in &self.per_bucket {
            ops += s.ops;
            occupancy += s.occupancy;
            hops.merge(&s.hops);
            cas_retries.merge(&s.cas_retries);
        }
        BucketSnapshot {
            ops,
            occupancy,
            hops,
            cas_retries,
        }
    }

    /// Largest per-bucket share of total resident keys, in
    /// `[1/B, 1.0]` — the chain-length balance check (1/B is perfectly
    /// even; a share near 1.0 means one chain holds most of the map
    /// and point ops have degraded toward the single-list cost).
    #[must_use]
    pub fn max_occupancy_share(&self) -> f64 {
        let total: usize = self.per_bucket.iter().map(|s| s.occupancy).sum();
        if total == 0 {
            return 0.0;
        }
        let max = self
            .per_bucket
            .iter()
            .map(|s| s.occupancy)
            .max()
            .unwrap_or(0);
        max as f64 / total as f64
    }

    /// Largest per-bucket share of total routed ops, in `[1/B, 1.0]`
    /// — the contention balance check.
    #[must_use]
    pub fn max_ops_share(&self) -> f64 {
        let total: u64 = self.per_bucket.iter().map(|s| s.ops).sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.per_bucket.iter().map(|s| s.ops).max().unwrap_or(0);
        max as f64 / total as f64
    }
}
