//! `lf-map`: a Michael-style lock-free hash map over FR-list buckets.
//!
//! Routes each key to one of `B` (power of two) Fomitchev–Ruppert
//! [`FrList`] buckets, the shape of Michael's lock-free hash map
//! (PODC 2002) with the paper's backlink/flag list as the bucket
//! structure. A point operation touches exactly one short chain, so
//! its expected cost is `O(n/B + c(bucket))` — the paper's amortized
//! list bound evaluated at the bucket's occupancy, with the contention
//! term `c` a *per-bucket* quantity. Where the skip list (and
//! `lf-shard`'s partitioning of it) serves ordered traffic in
//! `O(log n)`, the bucketed map is the serving tier for pure key-value
//! traffic: O(1) expected point ops, no ordering, no level-1 sentinel
//! hot spot.
//!
//! The buckets are siblings ([`FrList::new_sibling`]): they share one
//! reclamation domain **and one node pool**, so a thread registers
//! once ([`BucketMap::handle`]) and a single guard covers whichever
//! bucket an operation routes to. Pool sharing means a block retired
//! from one bucket can be re-tenanted into another; pin-free readers
//! stay sound because birth-stamp validation rejects re-tenanted
//! blocks no matter which bucket's chain they resurface on (see
//! `lf-core`'s sibling read). The unordered [`iter`]
//! (BucketMapHandle::iter) walks every bucket under **one** amortized
//! pin via [`ChainIter`].
//!
//! Like the rest of the stack, the map is generic over the reclamation
//! backend (`R`, default [`Ebr`]): construct with
//! [`BucketMap::with_backend`] to run the buckets over hazard pointers
//! or VBR. On a pin-free backend (VBR), [`BucketMapHandle::try_read`]
//! serves point lookups without touching the shared reclamation
//! domain at all.
//!
//! Every operation is attributed to [`Structure::Map`] in the shared
//! `lf-metrics` histograms (so map and skip-list latencies never
//! alias in mixed deployments), tagged with its bucket index for
//! `lf-trace` causal traces, and credited to per-bucket occupancy /
//! contention statistics ([`BucketMap::snapshot`]).
//!
//! # Examples
//!
//! ```
//! use lf_map::BucketMap;
//!
//! let map: BucketMap<u64, &str> = BucketMap::new(16);
//! let h = map.handle();
//! assert!(h.insert(1, "one").is_ok());
//! assert!(h.insert(2, "two").is_ok());
//! assert_eq!(h.get(&1), Some("one"));
//! assert_eq!(h.get_with(&2, |v| v.len()), Some(3));
//!
//! // Unordered scan of every bucket under one pin.
//! let mut pairs: Vec<(u64, &str)> = h.iter().collect();
//! pairs.sort_unstable();
//! assert_eq!(pairs, vec![(1, "one"), (2, "two")]);
//!
//! assert_eq!(h.remove(&1), Some("one"));
//! assert_eq!(map.len(), 1);
//! ```

mod router;
mod stats;

pub use stats::{BucketMapSnapshot, BucketSnapshot};

use std::fmt;
use std::hash::Hash;

use lf_core::{ChainIter, FrList, ListHandle};
use lf_metrics::Structure;
use lf_reclaim::{Ebr, Pod, Publish, Reclaim};
use lf_tagged::CachePadded;

use stats::BucketStats;

/// Default bucket count: deep enough that benchmark-scale key spaces
/// keep expected chain length in the single digits, shallow enough
/// that the bucket array stays cache-resident.
pub const DEFAULT_BUCKETS: usize = 64;

/// A lock-free hash map over `B` sibling [`FrList`] buckets.
///
/// Obtain a per-thread [`BucketMapHandle`] with
/// [`handle`](BucketMap::handle) and operate through it; the
/// convenience methods on the map itself register a fresh handle per
/// call. See the [crate docs](crate) for the design rationale.
///
/// `R` selects the safe-memory-reclamation backend shared by every
/// bucket (default epoch-based; see
/// [`with_backend`](BucketMap::with_backend)).
pub struct BucketMap<K, V, R = Ebr>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// The buckets. Each is `CachePadded` so one bucket's hot head
    /// sentinel and length counter never share a line with its
    /// neighbor.
    buckets: Box<[CachePadded<FrList<K, V, R>>]>,
    /// Per-bucket statistics, parallel to `buckets`.
    stats: Box<[CachePadded<BucketStats>]>,
    /// Bucket count − 1 (bucket count is a power of two).
    mask: usize,
}

impl<K, V> BucketMap<K, V>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// A map with `buckets` chains (power of two) over the default EBR
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or not a power of two.
    #[must_use]
    pub fn new(buckets: usize) -> Self {
        Self::with_backend(buckets)
    }
}

impl<K, V, R> BucketMap<K, V, R>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim + Publish<K> + Publish<V>,
{
    /// A map with `buckets` chains over the reclamation backend `R`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or not a power of two.
    #[must_use]
    pub fn with_backend(buckets: usize) -> Self {
        assert!(
            buckets.is_power_of_two(),
            "bucket count must be a nonzero power of two, got {buckets}"
        );
        let first = FrList::with_backend();
        let mut vec = Vec::with_capacity(buckets);
        for _ in 1..buckets {
            vec.push(CachePadded::new(first.new_sibling()));
        }
        vec.insert(0, CachePadded::new(first));
        let stats = (0..buckets)
            .map(|_| CachePadded::new(BucketStats::new()))
            .collect();
        BucketMap {
            buckets: vec.into_boxed_slice(),
            stats,
            mask: buckets - 1,
        }
    }

    /// Register the calling thread and return an operation handle.
    ///
    /// One registration covers every bucket: the handle holds a single
    /// [`ListHandle`] (on bucket 0) and runs each routed operation on
    /// its key's bucket via the sibling ops — so unlike a
    /// handle-per-partition design, the pin-amortization cadence
    /// advances once per *map* operation, not once per `B` operations
    /// landing on the same partition.
    #[must_use]
    pub fn handle(&self) -> BucketMapHandle<'_, K, V, R> {
        BucketMapHandle {
            map: self,
            handle: self.buckets[0].handle(),
        }
    }

    /// Insert through a temporary handle. See
    /// [`BucketMapHandle::insert`].
    ///
    /// # Errors
    ///
    /// Returns the rejected pair if `key` is already present.
    pub fn insert(&self, key: K, value: V) -> Result<(), (K, V)> {
        self.handle().insert(key, value)
    }

    /// Remove through a temporary handle. See
    /// [`BucketMapHandle::remove`].
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.handle().remove(key)
    }

    /// Lookup through a temporary handle. See [`BucketMapHandle::get`].
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.handle().get(key)
    }

    /// Membership test through a temporary handle.
    pub fn contains(&self, key: &K) -> bool {
        self.handle().contains(key)
    }
}

impl<K, V, R> BucketMap<K, V, R>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.mask + 1
    }

    /// The bucket index `key` routes to — stable for the map's
    /// lifetime and across maps with the same bucket count.
    #[must_use]
    pub fn bucket_of(&self, key: &K) -> usize {
        router::bucket_of(key, self.mask)
    }

    /// Total number of keys, summed across buckets (each bucket's
    /// count is maintained as in [`FrList::len`]; the sum is
    /// racy-fresh under concurrency).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Whether every bucket is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.is_empty())
    }

    /// The reclamation domain shared by every bucket.
    #[must_use]
    pub fn domain(&self) -> &R::Domain {
        self.buckets[0].domain()
    }

    /// Per-bucket statistics plus occupancy; see [`BucketMapSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> BucketMapSnapshot {
        BucketMapSnapshot {
            per_bucket: self
                .stats
                .iter()
                .zip(self.buckets.iter())
                .map(|(st, b)| st.snapshot(b.len()))
                .collect(),
        }
    }

    /// Validate every bucket's structural invariants; quiescent only.
    ///
    /// # Panics
    ///
    /// Panics (with a description) if any bucket's invariant is
    /// violated.
    pub fn validate_quiescent(&self)
    where
        K: Ord,
    {
        for b in self.buckets.iter() {
            b.validate_quiescent();
        }
    }
}

impl<K, V, R> Default for BucketMap<K, V, R>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim + Publish<K> + Publish<V>,
{
    fn default() -> Self {
        Self::with_backend(DEFAULT_BUCKETS)
    }
}

impl<K, V, R> fmt::Debug for BucketMap<K, V, R>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BucketMap")
            .field("backend", &R::NAME)
            .field("buckets", &self.bucket_count())
            .field("len", &self.len())
            .finish()
    }
}

/// A registered per-thread handle to a [`BucketMap`].
///
/// Holds **one** [`ListHandle`] registration (one epoch slot, one
/// local pool cache, one pin-amortization counter) and routes each
/// operation to its key's bucket through the sibling ops. Every
/// operation records an [`lf_metrics`] op boundary attributed to
/// [`Structure::Map`], carries its bucket index as the `lf-trace`
/// shard tag, and credits its step delta to the bucket's statistics.
pub struct BucketMapHandle<'m, K, V, R = Ebr>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    map: &'m BucketMap<K, V, R>,
    handle: ListHandle<'m, K, V, R>,
}

impl<'m, K, V, R> BucketMapHandle<'m, K, V, R>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim + Publish<K> + Publish<V>,
{
    #[inline]
    fn route(&self, key: &K) -> usize {
        router::bucket_of(key, self.map.mask)
    }

    /// Insert `(key, value)` into the key's bucket. Returns the
    /// rejected pair if `key` is already present.
    ///
    /// # Errors
    ///
    /// Returns the rejected pair if `key` is already present.
    pub fn insert(&self, key: K, value: V) -> Result<(), (K, V)> {
        let i = self.route(&key);
        // Causal-trace tag: events the bucket op records (search,
        // cas-fail, ...) carry the bucket index; free when tracing is
        // off. Same pattern in every routed op below.
        let _t = lf_trace::shard_scope(i as u16);
        let op = lf_metrics::op_begin_for(Structure::Map);
        let before = lf_metrics::local_steps();
        let res = self.handle.insert_in(&self.map.buckets[i], key, value);
        self.map.stats[i].record(lf_metrics::local_steps().delta_since(before));
        lf_metrics::op_end(op);
        res
    }

    /// Remove `key` from its bucket, returning its value.
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let i = self.route(key);
        let _t = lf_trace::shard_scope(i as u16);
        let op = lf_metrics::op_begin_for(Structure::Map);
        let before = lf_metrics::local_steps();
        let res = self.handle.remove_in(&self.map.buckets[i], key);
        self.map.stats[i].record(lf_metrics::local_steps().delta_since(before));
        lf_metrics::op_end(op);
        res
    }

    /// Look up `key` in its bucket, returning a clone of its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let i = self.route(key);
        let _t = lf_trace::shard_scope(i as u16);
        let op = lf_metrics::op_begin_for(Structure::Map);
        let before = lf_metrics::local_steps();
        let res = self.handle.get_in(&self.map.buckets[i], key);
        self.map.stats[i].record(lf_metrics::local_steps().delta_since(before));
        lf_metrics::op_end(op);
        res
    }

    /// Look up `key` in its bucket without pinning the reclamation
    /// domain, when the backend supports it; see
    /// [`ListHandle::try_read_in`]. Falls back to the pinned
    /// [`get`](Self::get) path on pinned backends or after repeated
    /// validation races (pool sharing makes those validations reject
    /// blocks re-tenanted into *any* sibling bucket, not just this
    /// one).
    pub fn try_read(&self, key: &K) -> Option<V>
    where
        K: Pod,
        V: Pod,
    {
        let i = self.route(key);
        let _t = lf_trace::shard_scope(i as u16);
        let op = lf_metrics::op_begin_for(Structure::Map);
        let before = lf_metrics::local_steps();
        let res = self.handle.try_read_in(&self.map.buckets[i], key);
        self.map.stats[i].record(lf_metrics::local_steps().delta_since(before));
        lf_metrics::op_end(op);
        res
    }

    /// Zero-copy lookup: run `f` over the value in place (under the
    /// bucket's epoch pin) instead of cloning it out. Keep `f` short —
    /// the pin delays reclamation for the whole shared domain.
    pub fn get_with<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        let i = self.route(key);
        let _t = lf_trace::shard_scope(i as u16);
        let op = lf_metrics::op_begin_for(Structure::Map);
        let before = lf_metrics::local_steps();
        let res = self.handle.get_with_in(&self.map.buckets[i], key, f);
        self.map.stats[i].record(lf_metrics::local_steps().delta_since(before));
        lf_metrics::op_end(op);
        res
    }

    /// Whether `key` is present in its bucket.
    pub fn contains(&self, key: &K) -> bool {
        let i = self.route(key);
        let _t = lf_trace::shard_scope(i as u16);
        let op = lf_metrics::op_begin_for(Structure::Map);
        let before = lf_metrics::local_steps();
        let res = self.handle.contains_in(&self.map.buckets[i], key);
        self.map.stats[i].record(lf_metrics::local_steps().delta_since(before));
        lf_metrics::op_end(op);
        res
    }

    /// Unordered iteration over every bucket under **one** amortized
    /// pin ([`ChainIter`]): each bucket's pairs come out in key order,
    /// buckets in index order — which is hash order, i.e. no order at
    /// all. Weakly consistent per bucket (pairs present for the whole
    /// scan appear exactly once) with no cross-bucket atomicity claim.
    /// Iteration work is not attributed to per-bucket statistics.
    pub fn iter(&self) -> ChainIter<'_, 'm, K, V, R>
    where
        K: Clone,
        V: Clone,
    {
        self.handle
            .iter_chain(self.map.buckets.iter().map(|b| &**b))
    }

    /// Total number of keys, summed across buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether every bucket is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The map this handle operates on.
    #[must_use]
    pub fn map(&self) -> &'m BucketMap<K, V, R> {
        self.map
    }

    /// Announce a quiescent point; see [`ListHandle::quiesce`]. One
    /// call covers every bucket (single registration).
    pub fn quiesce(&self) {
        self.handle.quiesce();
    }

    /// Drain deferred reclamation; see
    /// [`ListHandle::flush_reclamation`]. One call covers every bucket.
    pub fn flush_reclamation(&self) {
        self.handle.flush_reclamation();
    }

    /// Set pin amortization; see [`ListHandle::amortize_pins`]. The
    /// counter is per map handle, so it advances once per routed
    /// operation regardless of which bucket the key lands in.
    pub fn amortize_pins(&self, every: u32) {
        self.handle.amortize_pins(every);
    }
}

impl<K, V, R> fmt::Debug for BucketMapHandle<'_, K, V, R>
where
    K: Ord + Hash + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BucketMapHandle")
            .field("buckets", &self.map.bucket_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_vbr::Vbr;

    #[test]
    fn buckets_share_one_domain() {
        let map: BucketMap<u64, u64> = BucketMap::new(8);
        for w in map.buckets.windows(2) {
            assert!(w[0].shares_domain_with(&w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn zero_buckets_rejected() {
        let _ = BucketMap::<u64, u64>::new(0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BucketMap::<u64, u64>::new(48);
    }

    #[test]
    fn point_ops_route_consistently() {
        let map: BucketMap<u64, u64> = BucketMap::new(16);
        let h = map.handle();
        for k in 0..500u64 {
            assert!(h.insert(k, k * 10).is_ok());
        }
        assert_eq!(map.len(), 500);
        for k in 0..500u64 {
            assert_eq!(h.get(&k), Some(k * 10));
            assert!(h.contains(&k));
            assert_eq!(h.get_with(&k, |v| v + 1), Some(k * 10 + 1));
        }
        assert!(h.insert(7, 0).is_err());
        for k in 0..500u64 {
            assert_eq!(h.remove(&k), Some(k * 10));
        }
        assert!(map.is_empty());
        map.validate_quiescent();
    }

    #[test]
    fn iter_covers_every_bucket_once() {
        let map: BucketMap<u64, u64> = BucketMap::new(8);
        let h = map.handle();
        for k in 0..300u64 {
            assert!(h.insert(k, k * 2).is_ok());
        }
        let mut pairs: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(pairs.len(), 300);
        pairs.sort_unstable();
        for (i, (k, v)) in pairs.into_iter().enumerate() {
            assert_eq!(k, i as u64);
            assert_eq!(v, k * 2);
        }
    }

    #[test]
    fn single_bucket_degenerates_to_plain_list() {
        let map: BucketMap<u64, u64> = BucketMap::new(1);
        let h = map.handle();
        for k in (0..100u64).rev() {
            assert!(h.insert(k, k).is_ok());
        }
        let keys: Vec<u64> = h.iter().map(|(k, _)| k).collect();
        // One bucket: chain order is key order.
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
        let snap = map.snapshot();
        assert_eq!(snap.per_bucket[0].ops, 100);
    }

    #[test]
    fn snapshot_attributes_ops_and_occupancy_to_buckets() {
        let map: BucketMap<u64, u64> = BucketMap::new(4);
        let h = map.handle();
        for k in 0..400u64 {
            assert!(h.insert(k, k).is_ok());
        }
        let snap = map.snapshot();
        assert_eq!(snap.per_bucket.len(), 4);
        let merged = snap.merged();
        assert_eq!(merged.ops, 400);
        assert_eq!(merged.occupancy, 400);
        // Sequential keys must spread: no bucket may own >60% of keys.
        assert!(snap.max_occupancy_share() < 0.6, "{snap:?}");
        assert!(snap.max_ops_share() < 0.6, "{snap:?}");
        // Every op routed to bucket i bumped bucket i's count only.
        for (i, s) in snap.per_bucket.iter().enumerate() {
            assert_eq!(s.ops as usize, s.occupancy, "bucket {i}");
        }
    }

    #[test]
    fn ops_attribute_to_map_structure_in_metrics() {
        let map: BucketMap<u64, u64> = BucketMap::new(4);
        let h = map.handle();
        let before = lf_metrics::snapshot();
        for k in 0..32u64 {
            assert!(h.insert(k, k).is_ok());
        }
        for k in 0..32u64 {
            assert_eq!(h.get(&k), Some(k));
        }
        let delta = lf_metrics::snapshot() - before;
        assert!(
            delta.ops_for(Structure::Map) >= 64,
            "map ops under-attributed: {}",
            delta.ops_for(Structure::Map)
        );
    }

    #[test]
    fn vbr_backend_end_to_end() {
        let map: BucketMap<u64, u64, Vbr> = BucketMap::with_backend(8);
        let h = map.handle();
        for k in 0..300u64 {
            assert!(h.insert(k, k * 3).is_ok());
        }
        for k in 0..300u64 {
            // Pin-free read path routes like the pinned ops.
            assert_eq!(h.try_read(&k), Some(k * 3));
        }
        assert_eq!(h.try_read(&1000), None);
        let mut keys: Vec<u64> = h.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..300).collect::<Vec<_>>());
        for k in 0..300u64 {
            assert_eq!(h.remove(&k), Some(k * 3));
            assert_eq!(h.try_read(&k), None);
        }
        assert!(map.is_empty());
        map.validate_quiescent();
    }

    #[test]
    fn hazard_backend_end_to_end() {
        let map: BucketMap<u64, u64, lf_hazard::Hp> = BucketMap::with_backend(4);
        let h = map.handle();
        for k in 0..100u64 {
            assert!(h.insert(k, k).is_ok());
        }
        for k in 0..100u64 {
            assert_eq!(h.get(&k), Some(k));
            // On a pinned backend try_read is the pinned get.
            assert_eq!(h.try_read(&k), Some(k));
        }
        for k in 0..100u64 {
            assert_eq!(h.remove(&k), Some(k));
        }
        assert!(map.is_empty());
        map.validate_quiescent();
    }
}
