//! Backend-matrix correctness tests for the bucketed hash map: the
//! same oracle proptests, leak audits, and gauge checks as
//! `lf-core`'s `backend_matrix`, instantiated once per reclamation
//! backend (EBR, hazard eras, VBR) — but against a `HashMap` oracle,
//! since the map promises no ordering.
//!
//! The map adds one hazard the single-list matrix can't see: its
//! buckets share **one node pool**, so a block retired from one
//! bucket's chain can be re-tenanted into another bucket's. The op
//! tapes here interleave inserts and removes across many buckets on a
//! small map (heavy recycling), so a pointer crossing chains, a retire
//! firing twice, or a pin-free read accepting a re-tenanted block
//! shows up as an oracle mismatch, a double-drop, or a Miri error.
//!
//! All of these run under Miri in the per-PR matrix (with trimmed
//! iteration counts).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lf_map::BucketMap;
use lf_reclaim::Reclaim;
use proptest::prelude::*;

const CASES: u32 = if cfg!(miri) { 4 } else { 48 };
const MAX_OPS: usize = if cfg!(miri) { 40 } else { 300 };

/// Drive one op tape against the map and a `HashMap` oracle, checking
/// every op's result. `0,1 → insert`, `2 → remove`, `3 → get +
/// contains + get_with + try_read`.
macro_rules! oracle_tape {
    ($h:expr, $oracle:expr, $ops:expr) => {
        for &(sel, key, val) in $ops {
            match sel {
                0 | 1 => {
                    let expect = !$oracle.contains_key(&key);
                    assert_eq!($h.insert(key, val).is_ok(), expect, "insert {key}");
                    $oracle.entry(key).or_insert(val);
                }
                2 => {
                    assert_eq!($h.remove(&key), $oracle.remove(&key), "remove {key}");
                }
                _ => {
                    let want = $oracle.get(&key).copied();
                    assert_eq!($h.get(&key), want, "get {key}");
                    assert_eq!($h.contains(&key), want.is_some(), "contains {key}");
                    assert_eq!($h.get_with(&key, |v| *v), want, "get_with {key}");
                    assert_eq!($h.try_read(&key), want, "try_read {key}");
                }
            }
        }
    };
}

/// The full matrix body, instantiated once per backend. `u64` keys and
/// values are `Pod`, so the same code covers the VBR bounds. A small
/// bucket count (8) under a 120-key space keeps every chain busy and
/// the shared pool recycling across buckets.
macro_rules! backend_matrix {
    ($backend:ident, $R:ty) => {
        mod $backend {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(CASES))]

                #[test]
                fn map_matches_hashmap_oracle(
                    ops in proptest::collection::vec((0u64..4, 0u64..120, any::<u64>()), 0..MAX_OPS),
                ) {
                    let map: BucketMap<u64, u64, $R> = BucketMap::with_backend(8);
                    let h = map.handle();
                    let mut oracle: HashMap<u64, u64> = HashMap::new();
                    oracle_tape!(h, oracle, &ops);
                    let mut got: Vec<(u64, u64)> = h.iter().collect();
                    got.sort_unstable();
                    let mut want: Vec<(u64, u64)> =
                        oracle.iter().map(|(&k, &v)| (k, v)).collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                    prop_assert_eq!(map.len(), oracle.len());
                    drop(h);
                    map.validate_quiescent();
                }
            }

            /// Retires and frees balance through the shared domain's
            /// gauge once the map is quiescent and reclamation has
            /// drained — every bucket retires into the *same* gauge.
            #[test]
            fn gauge_balances_when_quiescent() {
                const N: u64 = if cfg!(miri) { 30 } else { 200 };
                let map: BucketMap<u64, u64, $R> = BucketMap::with_backend(8);
                let h = map.handle();
                for k in 0..N {
                    assert!(h.insert(k, k).is_ok());
                }
                for k in 0..N {
                    assert_eq!(h.remove(&k), Some(k));
                }
                let snap = <$R>::gauge(map.domain()).snapshot();
                // Every removed node was handed to the collector.
                assert!(snap.retired >= N, "retired {} < {}", snap.retired, N);
                assert!(snap.peak_unreclaimed >= 1);
                // Drain: with no other handle pinned, bounded flushing
                // must reclaim everything retired.
                for _ in 0..64 {
                    h.flush_reclamation();
                    if <$R>::gauge(map.domain()).unreclaimed() == 0 {
                        break;
                    }
                }
                let snap = <$R>::gauge(map.domain()).snapshot();
                assert_eq!(
                    snap.unreclaimed, 0,
                    "backend left garbage after drain: {snap:?}"
                );
                assert_eq!(snap.retired, snap.freed);
            }

            /// Disjoint-key churn across threads: every thread's keys
            /// scatter over all buckets, so chains see concurrent
            /// insert/delete traffic and the shared pool recycles
            /// blocks between buckets while other threads traverse.
            #[test]
            fn concurrent_disjoint_churn() {
                const THREADS: u64 = if cfg!(miri) { 2 } else { 4 };
                const PER: u64 = if cfg!(miri) { 15 } else { 150 };
                let map: Arc<BucketMap<u64, u64, $R>> = Arc::new(BucketMap::with_backend(8));
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        let map = Arc::clone(&map);
                        s.spawn(move || {
                            let h = map.handle();
                            let base = t * PER;
                            for i in 0..PER {
                                h.insert(base + i, t).unwrap();
                            }
                            // Remove the even half; the odd half stays.
                            for i in (0..PER).step_by(2) {
                                assert_eq!(h.remove(&(base + i)), Some(t));
                            }
                        });
                    }
                });
                assert_eq!(map.len(), (THREADS * PER / 2) as usize);
                let h = map.handle();
                for t in 0..THREADS {
                    for i in 0..PER {
                        let want = (i % 2 == 1).then_some(t);
                        assert_eq!(h.get(&(t * PER + i)), want);
                        assert_eq!(h.try_read(&(t * PER + i)), want);
                    }
                }
                drop(h);
                map.validate_quiescent();
            }
        }
    };
}

backend_matrix!(ebr, lf_reclaim::Ebr);
backend_matrix!(hp, lf_hazard::Hp);
backend_matrix!(vbr, lf_vbr::Vbr);

/// Drop-audit body for backends that support droppable (non-`Pod`)
/// values: every `Counted` instance — inserted or cloned out by a
/// remove — must drop exactly once by teardown, no matter which bucket
/// it lived in or which bucket's chain its block was recycled into
/// afterwards. (VBR's `Pod` bound rules out droppable values by
/// construction.)
macro_rules! drop_audit {
    ($name:ident, $R:ty) => {
        #[test]
        fn $name() {
            const N: u32 = if cfg!(miri) { 25 } else { 150 };
            #[derive(Debug)]
            struct Counted(Arc<AtomicUsize>);
            impl Clone for Counted {
                fn clone(&self) -> Self {
                    Counted(Arc::clone(&self.0))
                }
            }
            impl Drop for Counted {
                fn drop(&mut self) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
            let drops = Arc::new(AtomicUsize::new(0));
            let mut created = 0usize;
            {
                let map: BucketMap<u32, Counted, $R> = BucketMap::with_backend(8);
                let h = map.handle();
                for k in 0..N {
                    h.insert(k, Counted(Arc::clone(&drops))).unwrap();
                    created += 1;
                }
                // Each successful remove clones one `Counted` out (the
                // return value) and retires the in-node original.
                for k in (0..N).step_by(2) {
                    assert!(h.remove(&k).is_some());
                    created += 1;
                }
                // Reinsert over the removed keys: the shared pool hands
                // the retired blocks back, possibly to other buckets.
                for k in (0..N).step_by(2) {
                    h.insert(k, Counted(Arc::clone(&drops))).unwrap();
                    created += 1;
                }
                h.flush_reclamation();
                assert_eq!(map.len(), N as usize);
            }
            // Map dropped: retired nodes and still-present nodes alike
            // have run their destructors exactly once.
            assert_eq!(drops.load(Ordering::SeqCst), created);
        }
    };
}

drop_audit!(ebr_drops_every_value_once, lf_reclaim::Ebr);
drop_audit!(hp_drops_every_value_once, lf_hazard::Hp);
