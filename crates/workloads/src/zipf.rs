//! Zipfian sampling via inverse-CDF binary search over a precomputed
//! prefix table (exact, no rejection; table built once per generator).

use rand::Rng;

/// A Zipfian distribution over ranks `0..n` with exponent `theta`:
/// rank `i` has weight `1 / (i + 1)^theta`.
#[derive(Debug)]
pub struct Zipf {
    /// Normalized cumulative weights; `cdf[i]` = P(rank <= i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the table for `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over empty support");
        assert!(theta.is_finite(), "non-finite zipf exponent");
        let n = usize::try_from(n).expect("key space fits in usize");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max);
        assert!(counts[0] > counts[50] * 5);
    }

    #[test]
    fn samples_within_support() {
        let z = Zipf::new(7, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn theta_zero_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8000..12000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
