//! Workload generators for the benchmark harness.
//!
//! Provides deterministic, seedable streams of dictionary operations:
//! key distributions (uniform, zipfian, sequential-tail), operation
//! mixes (read-heavy, update-heavy, custom), and the special patterns
//! the paper's experiments need (end-of-list contention for E2-style
//! scenarios, hot-key contention for E9).

mod mix;
mod zipf;

pub use mix::{Mix, Op, OpKind, WorkloadIter};
pub use zipf::Zipf;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How keys are drawn.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over `0..space`.
    Uniform {
        /// Exclusive upper bound of the key space.
        space: u64,
    },
    /// Zipfian over `0..space` with exponent `theta` (skewed: a few
    /// keys receive most operations).
    Zipfian {
        /// Exclusive upper bound of the key space.
        space: u64,
        /// Skew exponent (`0.99` is the YCSB default).
        theta: f64,
    },
    /// Keys concentrated at the top of the key space — an end-of-list
    /// hotspot approximating the paper's §3.1 scenario with real
    /// threads.
    Tail {
        /// Exclusive upper bound of the key space.
        space: u64,
        /// Number of hottest keys at the tail.
        width: u64,
    },
    /// Round-robin over `0..space` — deterministic scans (each
    /// generator instance keeps its own cursor).
    Sequential {
        /// Exclusive upper bound of the key space.
        space: u64,
    },
}

/// A seeded generator of keys from a [`KeyDist`].
#[derive(Debug)]
pub struct KeyGen {
    dist: KeyDist,
    rng: SmallRng,
    zipf: Option<Zipf>,
    cursor: u64,
}

impl KeyGen {
    /// Create a generator with the given distribution and seed.
    pub fn new(dist: KeyDist, seed: u64) -> Self {
        let zipf = match &dist {
            KeyDist::Zipfian { space, theta } => Some(Zipf::new(*space, *theta)),
            _ => None,
        };
        KeyGen {
            dist,
            rng: SmallRng::seed_from_u64(seed),
            zipf,
            cursor: 0,
        }
    }

    /// Draw the next key.
    pub fn next_key(&mut self) -> u64 {
        match &self.dist {
            KeyDist::Uniform { space } => self.rng.gen_range(0..*space),
            KeyDist::Zipfian { .. } => {
                let z = self.zipf.as_ref().expect("zipf table built in new");
                z.sample(&mut self.rng)
            }
            KeyDist::Tail { space, width } => {
                let w = (*width).max(1).min(*space);
                space - 1 - self.rng.gen_range(0..w)
            }
            KeyDist::Sequential { space } => {
                let k = self.cursor % *space;
                self.cursor = self.cursor.wrapping_add(1);
                k
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut g = KeyGen::new(KeyDist::Uniform { space: 10 }, 1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[g.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut a = KeyGen::new(KeyDist::Uniform { space: 1000 }, 7);
        let mut b = KeyGen::new(KeyDist::Uniform { space: 1000 }, 7);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn tail_stays_in_window() {
        let mut g = KeyGen::new(
            KeyDist::Tail {
                space: 100,
                width: 5,
            },
            3,
        );
        for _ in 0..500 {
            let k = g.next_key();
            assert!((95..100).contains(&k), "key {k} outside tail window");
        }
    }

    #[test]
    fn sequential_round_robins() {
        let mut g = KeyGen::new(KeyDist::Sequential { space: 4 }, 9);
        let keys: Vec<u64> = (0..10).map(|_| g.next_key()).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn zipf_skews_towards_small_ranks() {
        let mut g = KeyGen::new(
            KeyDist::Zipfian {
                space: 1000,
                theta: 0.99,
            },
            11,
        );
        let mut hot = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if g.next_key() < 10 {
                hot += 1;
            }
        }
        // The 1% hottest keys should receive far more than 1% of draws.
        assert!(hot > N / 20, "zipf not skewed: {hot}/{N} in top-10 keys");
    }
}
