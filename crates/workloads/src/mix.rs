//! Operation mixes: seeded streams of insert/remove/search operations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{KeyDist, KeyGen};

/// One dictionary operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Insert a key.
    Insert,
    /// Remove a key.
    Remove,
    /// Search for a key.
    Search,
}

/// A concrete operation: kind plus key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Op {
    /// What to do.
    pub kind: OpKind,
    /// Which key to do it to.
    pub key: u64,
}

/// Percentages of inserts, removes, and searches (must total 100).
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Percent of operations that insert.
    pub insert: u8,
    /// Percent of operations that remove.
    pub remove: u8,
    /// Percent of operations that search.
    pub search: u8,
}

impl Mix {
    /// 10% insert / 10% remove / 80% search — the classic read-heavy
    /// dictionary mix.
    pub const READ_HEAVY: Mix = Mix {
        insert: 10,
        remove: 10,
        search: 80,
    };

    /// 40% insert / 40% remove / 20% search — update-heavy.
    pub const UPDATE_HEAVY: Mix = Mix {
        insert: 40,
        remove: 40,
        search: 20,
    };

    /// 50% insert / 50% remove — pure churn, maximum structural
    /// contention.
    pub const CHURN: Mix = Mix {
        insert: 50,
        remove: 50,
        search: 0,
    };

    /// 100% search — pure lookups (the E5 scaling workload).
    pub const READ_ONLY: Mix = Mix {
        insert: 0,
        remove: 0,
        search: 100,
    };

    /// Validate and build a custom mix.
    ///
    /// # Panics
    ///
    /// Panics unless the three percentages sum to 100.
    pub fn new(insert: u8, remove: u8, search: u8) -> Mix {
        assert_eq!(
            insert as u16 + remove as u16 + search as u16,
            100,
            "mix must total 100%"
        );
        Mix {
            insert,
            remove,
            search,
        }
    }

    /// A short label like `i10/r10/s80` for table headers.
    pub fn label(&self) -> String {
        format!("i{}/r{}/s{}", self.insert, self.remove, self.search)
    }
}

/// An infinite, seeded stream of operations.
#[derive(Debug)]
pub struct WorkloadIter {
    mix: Mix,
    keys: KeyGen,
    rng: SmallRng,
}

impl WorkloadIter {
    /// Build a stream with the given mix, key distribution, and seed.
    /// Streams with the same arguments yield identical operations.
    pub fn new(mix: Mix, dist: KeyDist, seed: u64) -> Self {
        WorkloadIter {
            mix,
            keys: KeyGen::new(dist, seed.wrapping_mul(0x9E3779B97F4A7C15)),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next operation in the stream.
    pub fn next_op(&mut self) -> Op {
        let roll: u8 = self.rng.gen_range(0..100);
        let kind = if roll < self.mix.insert {
            OpKind::Insert
        } else if roll < self.mix.insert + self.mix.remove {
            OpKind::Remove
        } else {
            OpKind::Search
        };
        Op {
            kind,
            key: self.keys.next_key(),
        }
    }
}

impl Iterator for WorkloadIter {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_proportions_roughly_hold() {
        let mut w = WorkloadIter::new(Mix::READ_HEAVY, KeyDist::Uniform { space: 100 }, 1);
        let mut counts = [0u32; 3];
        const N: u32 = 10_000;
        for _ in 0..N {
            match w.next_op().kind {
                OpKind::Insert => counts[0] += 1,
                OpKind::Remove => counts[1] += 1,
                OpKind::Search => counts[2] += 1,
            }
        }
        assert!((800..1200).contains(&counts[0]), "{counts:?}");
        assert!((800..1200).contains(&counts[1]), "{counts:?}");
        assert!((7600..8400).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<Op> = WorkloadIter::new(Mix::CHURN, KeyDist::Uniform { space: 64 }, 9)
            .take(50)
            .collect();
        let b: Vec<Op> = WorkloadIter::new(Mix::CHURN, KeyDist::Uniform { space: 64 }, 9)
            .take(50)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<Op> = WorkloadIter::new(Mix::CHURN, KeyDist::Uniform { space: 64 }, 1)
            .take(50)
            .collect();
        let b: Vec<Op> = WorkloadIter::new(Mix::CHURN, KeyDist::Uniform { space: 64 }, 2)
            .take(50)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "total 100")]
    fn bad_mix_panics() {
        let _ = Mix::new(50, 50, 50);
    }

    #[test]
    fn labels() {
        assert_eq!(Mix::READ_HEAVY.label(), "i10/r10/s80");
    }
}
