//! Structured exporters for [`Telemetry`] snapshots.
//!
//! Two wire formats, both dependency-free:
//!
//! * **JSON lines** — one self-contained JSON object per snapshot,
//!   append-friendly, for machine-readable benchmark artifacts
//!   (`BENCH_*.json`) and soak-run logs. Built with [`JsonObj`], a
//!   tiny escaping-correct object writer (the build environment has no
//!   serde).
//! * **Prometheus text exposition** — counters for the scalar
//!   essential-step totals and `summary` blocks (quantile series +
//!   `_sum`/`_count`) for each histogram, suitable for a textfile
//!   collector or scrape endpoint.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::Path;

use crate::{CasType, Histogram, Metric, Structure, Telemetry};

/// Escape `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Infinity; clamp to null like most serializers.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object writer.
///
/// # Examples
///
/// ```
/// use lf_metrics::export::JsonObj;
///
/// let line = JsonObj::new()
///     .field_str("experiment", "e4")
///     .field_u64("threads", 4)
///     .field_f64("throughput", 1.5e6)
///     .finish();
/// assert_eq!(line, r#"{"experiment":"e4","threads":4,"throughput":1500000}"#);
/// ```
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObj { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", json_escape(k));
        &mut self.buf
    }

    /// Add an unsigned integer field.
    pub fn field_u64(mut self, k: &str, v: u64) -> Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a float field (non-finite values become `null`).
    pub fn field_f64(mut self, k: &str, v: f64) -> Self {
        let s = json_f64(v);
        self.key(k).push_str(&s);
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(mut self, k: &str, v: &str) -> Self {
        let s = json_escape(v);
        let _ = write!(self.key(k), "\"{s}\"");
        self
    }

    /// Add a field whose value is already serialized JSON.
    pub fn field_raw(mut self, k: &str, json: &str) -> Self {
        self.key(k).push_str(json);
        self
    }

    /// Close the object and return it as a single line.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serialize one histogram's shape: count, mean, min/max, and the
/// p50/p90/p99/p999 tail.
pub fn histogram_json(h: &Histogram) -> String {
    JsonObj::new()
        .field_u64("count", h.count())
        .field_f64("mean", h.mean())
        .field_u64("min", h.min())
        .field_u64("p50", h.p50())
        .field_u64("p90", h.p90())
        .field_u64("p99", h.p99())
        .field_u64("p999", h.p999())
        .field_u64("max", h.max())
        .finish()
}

/// Serialize a full [`Telemetry`] snapshot as one JSON object:
/// scalar counters flattened, one nested object per [`Metric`].
pub fn telemetry_json(t: &Telemetry) -> String {
    let c = &t.counters;
    let mut obj = JsonObj::new()
        .field_u64("ops", c.ops)
        .field_u64("essential_steps", c.essential_steps())
        .field_f64("steps_per_op", c.steps_per_op())
        .field_u64("backlink_traversals", c.backlink_traversals)
        .field_u64("next_updates", c.next_updates)
        .field_u64("curr_updates", c.curr_updates);
    for ty in CasType::ALL {
        obj = obj
            .field_u64(&format!("cas_{}_ok", ty.label()), c.cas_ok[ty as usize])
            .field_u64(&format!("cas_{}_fail", ty.label()), c.cas_fail[ty as usize]);
    }
    for m in Metric::ALL {
        obj = obj.field_raw(m.label(), &histogram_json(t.histogram(m)));
    }
    let mut structures = JsonObj::new();
    for s in Structure::ALL {
        let entry = JsonObj::new()
            .field_u64("ops", c.ops_for(s))
            .field_raw("op_latency_ns", &histogram_json(t.structure_latency_ns(s)))
            .finish();
        structures = structures.field_raw(s.label(), &entry);
    }
    obj = obj.field_raw("structures", &structures.finish());
    obj.finish()
}

/// Render a [`Telemetry`] snapshot in Prometheus text exposition
/// format: `lf_*_total` counters for the scalars and a `summary` per
/// histogram (quantile series plus `_sum` and `_count`).
pub fn telemetry_prometheus(t: &Telemetry) -> String {
    let c = &t.counters;
    let mut out = String::new();
    let _ = writeln!(out, "# HELP lf_ops_total Completed dictionary operations");
    let _ = writeln!(out, "# TYPE lf_ops_total counter");
    let _ = writeln!(out, "lf_ops_total {}", c.ops);
    let _ = writeln!(
        out,
        "# HELP lf_cas_total CAS attempts by paper Def. 4 type and outcome"
    );
    let _ = writeln!(out, "# TYPE lf_cas_total counter");
    for ty in CasType::ALL {
        let _ = writeln!(
            out,
            "lf_cas_total{{type=\"{}\",outcome=\"ok\"}} {}",
            ty.label(),
            c.cas_ok[ty as usize]
        );
        let _ = writeln!(
            out,
            "lf_cas_total{{type=\"{}\",outcome=\"fail\"}} {}",
            ty.label(),
            c.cas_fail[ty as usize]
        );
    }
    for (name, help, v) in [
        (
            "lf_backlink_traversals_total",
            "Backlink pointer traversals",
            c.backlink_traversals,
        ),
        (
            "lf_next_updates_total",
            "next_node pointer updates",
            c.next_updates,
        ),
        (
            "lf_curr_updates_total",
            "curr_node pointer updates",
            c.curr_updates,
        ),
    ] {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    let _ = writeln!(
        out,
        "# HELP lf_structure_ops_total Completed operations by dictionary structure"
    );
    let _ = writeln!(out, "# TYPE lf_structure_ops_total counter");
    for s in Structure::ALL {
        let _ = writeln!(
            out,
            "lf_structure_ops_total{{structure=\"{}\"}} {}",
            s.label(),
            c.ops_for(s)
        );
    }
    for m in Metric::ALL {
        let name = format!("lf_{}", m.label());
        let help = format!("Per-operation {} distribution", m.label());
        histogram_prometheus(&mut out, &name, &help, t.histogram(m));
    }
    // Per-structure latency summaries carry the structure as a label so
    // a map and a skip list in one process scrape as distinct series.
    let _ = writeln!(
        out,
        "# HELP lf_structure_op_latency_ns Per-operation latency by dictionary structure"
    );
    let _ = writeln!(out, "# TYPE lf_structure_op_latency_ns summary");
    for s in Structure::ALL {
        let h = t.structure_latency_ns(s);
        for (q, v) in [
            ("0.5", h.p50()),
            ("0.9", h.p90()),
            ("0.99", h.p99()),
            ("0.999", h.p999()),
        ] {
            let _ = writeln!(
                out,
                "lf_structure_op_latency_ns{{structure=\"{}\",quantile=\"{q}\"}} {v}",
                s.label()
            );
        }
        let _ = writeln!(
            out,
            "lf_structure_op_latency_ns_sum{{structure=\"{}\"}} {}",
            s.label(),
            h.sum()
        );
        let _ = writeln!(
            out,
            "lf_structure_op_latency_ns_count{{structure=\"{}\"}} {}",
            s.label(),
            h.count()
        );
    }
    out
}

/// Append one named histogram to `out` in Prometheus text exposition
/// format as a `summary`: p50/p90/p99/p999 quantile series plus `_sum`
/// and `_count`. Shared by [`telemetry_prometheus`] and by subsystems
/// (e.g. `lf-async` service metrics) that export histograms outside the
/// fixed [`Metric`] set.
pub fn histogram_prometheus(out: &mut String, name: &str, help: &str, h: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    for (q, v) in [
        ("0.5", h.p50()),
        ("0.9", h.p90()),
        ("0.99", h.p99()),
        ("0.999", h.p999()),
    ] {
        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
    }
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Render a Prometheus label set (`{k="v",…}`), empty for no labels.
/// Values are JSON-escaped, which covers Prometheus' `\\`/`"`/`\n`
/// requirements.
pub fn prometheus_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", json_escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Append one labeled counter in Prometheus text exposition format.
/// Subsystems outside the fixed [`Telemetry`] set (e.g. `lf-server`'s
/// connection counters, labeled `subsystem="server"`) export through
/// this so every series in a process shares one formatter.
pub fn counter_prometheus(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    v: u64,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name}{} {v}", prometheus_labels(labels));
}

/// Append one labeled gauge in Prometheus text exposition format.
pub fn gauge_prometheus(out: &mut String, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name}{} {v}", prometheus_labels(labels));
}

/// Labeled variant of [`histogram_prometheus`]: the label set rides on
/// every quantile series plus `_sum`/`_count`.
pub fn histogram_prometheus_labeled(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    h: &Histogram,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    let base = prometheus_labels(labels);
    for (q, v) in [
        ("0.5", h.p50()),
        ("0.9", h.p90()),
        ("0.99", h.p99()),
        ("0.999", h.p999()),
    ] {
        let mut with_q: Vec<(&str, &str)> = labels.to_vec();
        with_q.push(("quantile", q));
        let _ = writeln!(out, "{name}{} {v}", prometheus_labels(&with_q));
    }
    let _ = writeln!(out, "{name}_sum{base} {}", h.sum());
    let _ = writeln!(out, "{name}_count{base} {}", h.count());
}

/// Append one JSON line to `path`, creating the file if needed.
pub fn append_json_line(path: &Path, line: &str) -> io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{line}")
}

/// Overwrite `path` with `contents` (plus a trailing newline).
pub fn write_artifact(path: &Path, contents: &str) -> io::Result<()> {
    std::fs::write(path, format!("{contents}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_obj_shape() {
        let s = JsonObj::new()
            .field_str("k", "v\"q")
            .field_u64("n", 7)
            .field_f64("bad", f64::NAN)
            .field_raw("nested", "{\"a\":1}")
            .finish();
        assert_eq!(
            s,
            "{\"k\":\"v\\\"q\",\"n\":7,\"bad\":null,\"nested\":{\"a\":1}}"
        );
    }

    #[test]
    fn histogram_json_has_tail_fields() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        let j = histogram_json(&h);
        for key in [
            "\"count\":100",
            "\"p50\":",
            "\"p99\":",
            "\"p999\":",
            "\"max\":100",
        ] {
            assert!(j.contains(key), "{j} missing {key}");
        }
    }

    #[test]
    fn telemetry_formats_cover_all_metrics() {
        let t = Telemetry::default();
        let j = telemetry_json(&t);
        let p = telemetry_prometheus(&t);
        for m in Metric::ALL {
            assert!(j.contains(m.label()), "json missing {m}");
            assert!(p.contains(&format!("lf_{}", m.label())), "prom missing {m}");
        }
        for ty in CasType::ALL {
            assert!(j.contains(&format!("cas_{}_ok", ty.label())));
            assert!(p.contains(&format!("type=\"{}\"", ty.label())));
        }
        assert!(p.contains("# TYPE lf_ops_total counter"));
        assert!(p.contains("lf_op_latency_ns{quantile=\"0.99\"}"));
        for s in Structure::ALL {
            assert!(
                j.contains(&format!("\"{}\":{{\"ops\":", s.label())),
                "json missing structure {s}: {j}"
            );
            assert!(p.contains(&format!(
                "lf_structure_ops_total{{structure=\"{}\"}}",
                s.label()
            )));
            assert!(p.contains(&format!(
                "lf_structure_op_latency_ns{{structure=\"{}\",quantile=\"0.99\"}}",
                s.label()
            )));
        }
    }

    #[test]
    fn artifact_io_roundtrip() {
        let dir = std::env::temp_dir().join("lf_metrics_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lines.json");
        let _ = std::fs::remove_file(&path);
        append_json_line(&path, "{\"a\":1}").unwrap();
        append_json_line(&path, "{\"a\":2}").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"a\":1}\n{\"a\":2}\n");
        write_artifact(&path, "{\"b\":3}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"b\":3}\n");
        let _ = std::fs::remove_file(&path);
    }
}
