//! Essential-step accounting.
//!
//! The amortized analysis in Fomitchev & Ruppert §3.4 counts exactly four
//! kinds of *essential steps*:
//!
//! 1. **C&S attempts**, split by the four CAS types of Def. 4 —
//!    insertion, flagging, marking, physical deletion — and by outcome;
//! 2. **backlink traversals** (`TryFlag` line 10, `Insert` line 18);
//! 3. **`next_node` pointer updates** (`SearchFrom` line 6);
//! 4. **`curr_node` pointer updates** (`SearchFrom` line 8).
//!
//! "Counting these steps gives an accurate picture of the required time
//! (up to a constant factor)". The instrumented list and skip list call
//! the `record_*` functions here at each such step; experiment harnesses
//! take [`snapshot`]s around measurement phases and difference them to
//! validate the `O(n(S) + c(S))` bound empirically.
//!
//! Counters live in per-thread *shards*: the owning thread increments
//! them with relaxed load+store (plain moves on x86, ~1 ns, so
//! instrumentation does not distort throughput measurements), and every
//! shard is registered in a process-wide registry. [`snapshot`] sums
//! the retired aggregate plus every live shard, so counts are visible
//! with **no explicit flush**; join the worker threads (most simply via
//! [`Registry::join_and_snapshot`]) to make a closing snapshot exact
//! rather than merely racy-fresh.
//!
//! # Telemetry
//!
//! Beyond scalar totals, the crate records per-operation
//! *distributions* into log-bucketed [`Histogram`]s (~2 significant
//! figures over the full `u64` range, see [`histogram`]'s layout):
//!
//! * **op latency** in nanoseconds — sampled one op in sixteen per
//!   thread, because even a TSC read is material next to a ~500 ns
//!   list operation (see [`op_begin`]); the other three are exact;
//! * **CAS retries per op** — the empirical `c(S)` contention term of
//!   the paper's `O(n(S) + c(S))` bound;
//! * **backlink chain length per op** — how far a single operation was
//!   pushed back by concurrent deletions;
//! * **search hops per op** (`curr_node` updates) — the empirical
//!   `n(S)` distance term.
//!
//! Capture is at *operation boundaries* ([`op_begin`] / [`op_end`]),
//! never inside CAS loops: the token differences the thread-local step
//! counters around the op, so the hot paths still execute only plain
//! thread-local increments. Per-thread histograms live in the same
//! registered shards as the scalars; [`telemetry`] sums them into a
//! [`Telemetry`] snapshot. Runtime kill-switch:
//! [`set_histograms_enabled`].
//!
//! The [`export`] module renders snapshots as JSON lines or Prometheus
//! text exposition; the optional `trace` feature adds a per-thread
//! ring-buffer event tracer (module [`trace`]) for interleaving
//! replay.
//!
//! # Examples
//!
//! ```
//! use lf_metrics as metrics;
//!
//! let before = metrics::snapshot();
//! metrics::record_cas(metrics::CasType::Insert, true);
//! metrics::record_curr_update();
//! let delta = metrics::snapshot() - before;
//! assert_eq!(delta.cas_attempts(), 1);
//! assert_eq!(delta.curr_updates, 1);
//! assert_eq!(delta.essential_steps(), 2);
//! ```

mod clock;
pub mod export;
pub mod gauge;
pub mod histogram;
#[cfg(feature = "trace")]
pub mod trace;

pub use gauge::{UnreclaimedGauge, UnreclaimedSnapshot};
pub use histogram::{AtomicHistogram, Histogram};

use std::fmt;
use std::ops::Sub;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// The four CAS types of the paper's Def. 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CasType {
    /// Type 1: inserting a new node (`Insert` line 11).
    Insert = 0,
    /// Type 2: flagging a predecessor (`TryFlag` line 4).
    Flag = 1,
    /// Type 3: marking a node (`TryMark` line 3).
    Mark = 2,
    /// Type 4: physical deletion / unflag (`HelpMarked` line 2).
    Unlink = 3,
}

impl CasType {
    /// All four types, in discriminant order.
    pub const ALL: [CasType; 4] = [
        CasType::Insert,
        CasType::Flag,
        CasType::Mark,
        CasType::Unlink,
    ];

    /// Short lowercase label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CasType::Insert => "insert",
            CasType::Flag => "flag",
            CasType::Mark => "mark",
            CasType::Unlink => "unlink",
        }
    }
}

impl fmt::Display for CasType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The per-operation distributions the telemetry layer tracks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Metric {
    /// Wall-clock latency of one dictionary operation, nanoseconds.
    OpLatencyNs = 0,
    /// Failed CAS attempts within one operation — empirical `c(S)`.
    CasRetries = 1,
    /// Backlink traversals within one operation.
    BacklinkChain = 2,
    /// `curr_node` updates (search hops) within one operation —
    /// empirical `n(S)`.
    SearchHops = 3,
}

impl Metric {
    /// All metrics, in discriminant order.
    pub const ALL: [Metric; 4] = [
        Metric::OpLatencyNs,
        Metric::CasRetries,
        Metric::BacklinkChain,
        Metric::SearchHops,
    ];

    /// Snake-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Metric::OpLatencyNs => "op_latency_ns",
            Metric::CasRetries => "cas_retries",
            Metric::BacklinkChain => "backlink_chain",
            Metric::SearchHops => "search_hops",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which dictionary structure an operation ran against.
///
/// Mixed deployments (a bucketed hash map and a skip-list map sharing
/// one process) record into the same global telemetry; the structure
/// label keeps their op counts and latency distributions from aliasing.
/// [`op_begin`] is the structure-blind legacy entry point and credits
/// [`Structure::List`]; structures that know better call
/// [`op_begin_for`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Structure {
    /// The FR linked list (also the default for `op_begin`).
    List = 0,
    /// The FR skip list (including its `lf-shard` composition).
    SkipList = 1,
    /// The bucketed hash map (`lf-map`).
    Map = 2,
}

impl Structure {
    /// All structures, in discriminant order.
    pub const ALL: [Structure; 3] = [Structure::List, Structure::SkipList, Structure::Map];

    /// Snake-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            Structure::List => "list",
            Structure::SkipList => "skiplist",
            Structure::Map => "map",
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Histogram slots per shard: one per [`Metric`] (aggregate), then one
/// latency histogram per [`Structure`] (indexed `4 + structure`).
const HIST_SLOTS: usize = Metric::ALL.len() + Structure::ALL.len();

/// One thread's counter shard.
///
/// The owning thread is the only writer and bumps each counter with a
/// relaxed load+store ([`Shard::bump`]) — no atomic RMW on the hot
/// path, so an increment compiles to plain moves. Readers walk the
/// shard registry and load Relaxed: racy-but-monotone while the owner
/// is running, exact once the owner has been joined (the join's
/// happens-before edge publishes every prior store).
///
/// Cache-line aligned: each shard is its own heap allocation, but
/// without the alignment the allocator is free to start one thread's
/// shard on the same 64-byte line where another's ends — false sharing
/// between the two hottest write paths in the process. The alignment
/// also keeps the leading counters (`cas_ok`) from straddling a line.
#[repr(align(64))]
struct Shard {
    cas_ok: [AtomicU64; 4],
    cas_fail: [AtomicU64; 4],
    backlink_traversals: AtomicU64,
    next_updates: AtomicU64,
    curr_updates: AtomicU64,
    try_read_restarts: AtomicU64,
    try_read_fallbacks: AtomicU64,
    ops: AtomicU64,
    /// Completed operations attributed per [`Structure`] by
    /// [`op_begin_for`]. Bare [`record_op`] calls are structure-blind,
    /// so the per-structure counts sum to at most `ops`.
    ops_by: [AtomicU64; 3],
    /// Owner-only baselines from the previous [`op_end`], so per-op
    /// deltas need no counter reads at [`op_begin`]. Not counts — never
    /// folded or summed.
    last_cas_fail: AtomicU64,
    last_backlink: AtomicU64,
    last_curr: AtomicU64,
    /// Lazily allocated once the thread records its first op while
    /// histograms are enabled: the four [`Metric`] aggregates followed
    /// by one latency histogram per [`Structure`] (see [`HIST_SLOTS`]).
    hist: OnceLock<Box<[AtomicHistogram; HIST_SLOTS]>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            cas_ok: std::array::from_fn(|_| AtomicU64::new(0)),
            cas_fail: std::array::from_fn(|_| AtomicU64::new(0)),
            backlink_traversals: AtomicU64::new(0),
            next_updates: AtomicU64::new(0),
            curr_updates: AtomicU64::new(0),
            try_read_restarts: AtomicU64::new(0),
            try_read_fallbacks: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            ops_by: std::array::from_fn(|_| AtomicU64::new(0)),
            last_cas_fail: AtomicU64::new(0),
            last_backlink: AtomicU64::new(0),
            last_curr: AtomicU64::new(0),
            hist: OnceLock::new(),
        }
    }

    /// Owner-only increment: load+store instead of `fetch_add`,
    /// because the owning thread is the sole writer.
    #[inline]
    fn bump(cell: &AtomicU64) {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        cell.store(cell.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    fn cas_failures(&self) -> u64 {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        self.cas_fail
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    fn hists(&self) -> &[AtomicHistogram; HIST_SLOTS] {
        self.hist
            .get_or_init(|| Box::new(std::array::from_fn(|_| AtomicHistogram::new())))
    }

    fn hist_record_op(
        &self,
        structure: Structure,
        latency_ns: Option<u64>,
        retries: u64,
        backlinks: u64,
        hops: u64,
    ) {
        let h = self.hists();
        if let Some(ns) = latency_ns {
            h[Metric::OpLatencyNs as usize].record_owner(ns);
            h[Metric::ALL.len() + structure as usize].record_owner(ns);
        }
        h[Metric::CasRetries as usize].record_owner(retries);
        h[Metric::BacklinkChain as usize].record_owner(backlinks);
        h[Metric::SearchHops as usize].record_owner(hops);
    }
}

/// Every live thread's shard. Readers hold the lock while summing and
/// a retiring thread holds it while folding its counts into the
/// retired aggregate, so each count is observed exactly once.
static SHARDS: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

fn shards() -> MutexGuard<'static, Vec<Arc<Shard>>> {
    // Critical sections are short and the only panics possible there
    // are allocation failures; recover from poisoning rather than
    // cascading it through every later snapshot.
    SHARDS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fold `shard` into the retired aggregate and zero it.
///
/// Caller must hold the registry lock so the move is invisible to
/// concurrent snapshots (which also hold it).
fn fold_into_retired(shard: &Shard) {
    for i in 0..4 {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        GLOBAL.cas_ok[i].fetch_add(
            shard.cas_ok[i].swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        GLOBAL.cas_fail[i].fetch_add(
            shard.cas_fail[i].swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.backlink_traversals.fetch_add(
        shard.backlink_traversals.swap(0, Ordering::Relaxed),
        Ordering::Relaxed,
    );
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.next_updates.fetch_add(
        shard.next_updates.swap(0, Ordering::Relaxed),
        Ordering::Relaxed,
    );
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.curr_updates.fetch_add(
        shard.curr_updates.swap(0, Ordering::Relaxed),
        Ordering::Relaxed,
    );
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.try_read_restarts.fetch_add(
        shard.try_read_restarts.swap(0, Ordering::Relaxed),
        Ordering::Relaxed,
    );
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.try_read_fallbacks.fetch_add(
        shard.try_read_fallbacks.swap(0, Ordering::Relaxed),
        Ordering::Relaxed,
    );
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL
        .ops
        .fetch_add(shard.ops.swap(0, Ordering::Relaxed), Ordering::Relaxed);
    for i in 0..Structure::ALL.len() {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        GLOBAL.ops_by[i].fetch_add(
            shard.ops_by[i].swap(0, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }
    // The per-op baselines track the (now zeroed) counters, not totals.
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    shard.last_cas_fail.store(0, Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    shard.last_backlink.store(0, Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    shard.last_curr.store(0, Ordering::Relaxed);
    if let Some(h) = shard.hist.get() {
        let g = global_hist();
        for (dst, src) in g.iter().zip(h.iter()) {
            dst.absorb(src);
        }
    }
}

/// Deregisters and retires the thread's shard when the thread exits.
/// Snapshots do not depend on this timing — a shard is readable from
/// the registry for as long as it is live — it only keeps the registry
/// from accumulating dead shards.
struct RetireOnExit(Arc<Shard>);

impl Drop for RetireOnExit {
    fn drop(&mut self) {
        let mut reg = shards();
        reg.retain(|s| !Arc::ptr_eq(s, &self.0));
        fold_into_retired(&self.0);
    }
}

thread_local! {
    static LOCAL: RetireOnExit = RetireOnExit({
        let shard = Arc::new(Shard::new());
        shards().push(shard.clone());
        shard
    });
}

#[derive(Default)]
struct GlobalCounters {
    cas_ok: [AtomicU64; 4],
    cas_fail: [AtomicU64; 4],
    backlink_traversals: AtomicU64,
    next_updates: AtomicU64,
    curr_updates: AtomicU64,
    try_read_restarts: AtomicU64,
    try_read_fallbacks: AtomicU64,
    ops: AtomicU64,
    ops_by: [AtomicU64; 3],
}

static GLOBAL: GlobalCounters = GlobalCounters {
    cas_ok: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    cas_fail: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    backlink_traversals: AtomicU64::new(0),
    next_updates: AtomicU64::new(0),
    curr_updates: AtomicU64::new(0),
    try_read_restarts: AtomicU64::new(0),
    try_read_fallbacks: AtomicU64::new(0),
    ops: AtomicU64::new(0),
    ops_by: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
};

static HIST_ENABLED: AtomicBool = AtomicBool::new(true);

/// Runtime kill-switch for histogram capture ([`op_begin`] /
/// [`op_end`]). Scalar counters are unaffected. Enabled by default.
pub fn set_histograms_enabled(on: bool) {
    // ord: Relaxed — MET.toggle: advisory kill-switch, no data guarded
    HIST_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether histogram capture is currently enabled.
pub fn histograms_enabled() -> bool {
    // ord: Relaxed — MET.toggle: advisory kill-switch, no data guarded
    HIST_ENABLED.load(Ordering::Relaxed)
}

static GLOBAL_HIST: OnceLock<[AtomicHistogram; HIST_SLOTS]> = OnceLock::new();

fn global_hist() -> &'static [AtomicHistogram; HIST_SLOTS] {
    GLOBAL_HIST.get_or_init(|| std::array::from_fn(|_| AtomicHistogram::new()))
}

#[inline]
fn with_local(f: impl FnOnce(&Shard)) {
    // Accessing a thread-local during its own destruction fails;
    // metrics are best-effort, so silently drop those increments.
    let _ = LOCAL.try_with(|l| f(&l.0));
}

/// Record one C&S attempt of the given type and outcome.
///
/// Besides the counter, this is a causal-trace hook: failures emit
/// [`lf_trace::Phase::CasFail`] (with the CAS type as `aux`), and the
/// three deletion-protocol successes emit their phase — `Flag`,
/// `Mark`, and `Unlink` as [`lf_trace::Phase::Help`] (physical
/// deletion is performed by whichever op helps the marked node out).
/// Insert successes emit nothing; the op's `complete` covers them.
#[inline]
pub fn record_cas(ty: CasType, success: bool) {
    #[cfg(feature = "trace")]
    trace::emit(trace::EventKind::Cas { ty, ok: success });
    if !success {
        lf_trace::emit_aux(lf_trace::Phase::CasFail, ty as u32);
    } else {
        match ty {
            CasType::Insert => {}
            CasType::Flag => lf_trace::emit(lf_trace::Phase::Flag),
            CasType::Mark => lf_trace::emit(lf_trace::Phase::Mark),
            CasType::Unlink => lf_trace::emit(lf_trace::Phase::Help),
        }
    }
    with_local(|l| {
        let slot = if success {
            &l.cas_ok[ty as usize]
        } else {
            &l.cas_fail[ty as usize]
        };
        Shard::bump(slot);
    });
}

/// Record one backlink pointer traversal. Also a causal-trace hook
/// ([`lf_trace::Phase::BacklinkWalk`]).
#[inline]
pub fn record_backlink() {
    #[cfg(feature = "trace")]
    trace::emit(trace::EventKind::Backlink);
    lf_trace::emit(lf_trace::Phase::BacklinkWalk);
    with_local(|l| Shard::bump(&l.backlink_traversals));
}

/// Record one `next_node` pointer update (`SearchFrom` line 6).
#[inline]
pub fn record_next_update() {
    #[cfg(feature = "trace")]
    trace::emit(trace::EventKind::NextUpdate);
    with_local(|l| Shard::bump(&l.next_updates));
}

/// Record one `curr_node` pointer update (`SearchFrom` line 8).
#[inline]
pub fn record_curr_update() {
    #[cfg(feature = "trace")]
    trace::emit(trace::EventKind::CurrUpdate);
    with_local(|l| Shard::bump(&l.curr_updates));
}

/// Record one pin-free `try_read` restart: a birth-stamp validation
/// failed (torn or re-tenanted observation) and the optimistic read
/// started over.
#[inline]
pub fn record_try_read_restart() {
    with_local(|l| Shard::bump(&l.try_read_restarts));
}

/// Record one pin-free `try_read` giving up and falling back to the
/// pinned read path (restart budget exhausted).
#[inline]
pub fn record_try_read_fallback() {
    with_local(|l| Shard::bump(&l.try_read_fallbacks));
}

/// Record one completed dictionary operation (for per-op averages).
#[inline]
pub fn record_op() {
    #[cfg(feature = "trace")]
    trace::emit(trace::EventKind::OpEnd);
    with_local(|l| Shard::bump(&l.ops));
}

/// Snapshot of the calling thread's step counters, for callers that
/// want to attribute work to a finer bucket than the thread itself —
/// e.g. `lf-shard` differences two snapshots around an operation to
/// credit the hops and CAS retries to the shard that served it.
///
/// Values are cumulative since the thread registered (or since its
/// last [`flush_local`]); use [`LocalSteps::delta_since`] to bracket
/// an operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalSteps {
    /// Failed C&S attempts of any [`CasType`].
    pub cas_failures: u64,
    /// Backlink hops during predecessor recovery.
    pub backlink_traversals: u64,
    /// `next`-pointer re-reads after helping a deletion.
    pub next_updates: u64,
    /// Forward traversal steps (`curr` advances), the search-hop count.
    pub curr_updates: u64,
}

impl LocalSteps {
    /// Counter-wise difference `self - earlier`, saturating at zero
    /// (a same-thread [`flush_local`] between the two snapshots can
    /// zero the counters mid-bracket; the clipped op is credited as
    /// free rather than astronomically expensive).
    #[must_use]
    pub fn delta_since(self, earlier: LocalSteps) -> LocalSteps {
        LocalSteps {
            cas_failures: self.cas_failures.saturating_sub(earlier.cas_failures),
            backlink_traversals: self
                .backlink_traversals
                .saturating_sub(earlier.backlink_traversals),
            next_updates: self.next_updates.saturating_sub(earlier.next_updates),
            curr_updates: self.curr_updates.saturating_sub(earlier.curr_updates),
        }
    }
}

/// Read the calling thread's cumulative step counters.
///
/// Owner-thread reads of single-writer cells — exact, not racy.
/// Returns zeroes during thread teardown (after the thread-local shard
/// is gone), matching the recording functions' no-op behavior there.
#[must_use]
pub fn local_steps() -> LocalSteps {
    let mut s = LocalSteps::default();
    with_local(|l| {
        s = LocalSteps {
            cas_failures: l.cas_failures(),
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            backlink_traversals: l.backlink_traversals.load(Ordering::Relaxed),
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            next_updates: l.next_updates.load(Ordering::Relaxed),
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            curr_updates: l.curr_updates.load(Ordering::Relaxed),
        };
    });
    s
}

/// Latency is clocked on one op in this many (power of two, checked
/// via a per-thread sequence number): even the TSC costs ~15 ns per
/// read under a hypervisor, and two reads on every ~500 ns list
/// operation would bust the telemetry overhead budget on their own.
/// The counter-difference metrics (retries, backlinks, hops) are exact
/// on *every* op — sampling only thins the latency histogram, whose
/// percentiles are statistically indistinguishable at bench scales
/// (thousands of samples per second remain).
const LATENCY_SAMPLE_EVERY: u64 = 16;

thread_local! {
    /// Per-thread op sequence for latency sampling. Const-initialized
    /// `Cell` with no destructor: access compiles to a direct TLS
    /// load, so `op_begin` never touches the shard at all.
    static OP_SEQ: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Begin a per-operation telemetry capture.
///
/// Deliberately near-free: it checks the kill-switch, advances a
/// per-thread sequence number, and on one op in
/// [`LATENCY_SAMPLE_EVERY`] reads the TSC-backed [`clock`]. All
/// counter attribution happens in [`op_end`], which differences the
/// shard's step counters against baselines remembered from the
/// previous `op_end` — operations are bracketed back-to-back, so the
/// delta is this op's (steps recorded outside any bracket are credited
/// to the following op). The lock-free hot loops between the two calls
/// still execute nothing but their ordinary shard increments. When
/// histograms are disabled the token is inert and `op_end` degenerates
/// to [`record_op`].
#[inline]
#[must_use = "pass the token to op_end to record the operation"]
pub fn op_begin() -> OpToken {
    op_begin_for(Structure::List)
}

/// [`op_begin`] with an explicit [`Structure`] attribution, so mixed
/// deployments (map + skip list in one process) keep separate op counts
/// and latency distributions. Same cost profile as [`op_begin`].
#[inline]
#[must_use = "pass the token to op_end to record the operation"]
pub fn op_begin_for(structure: Structure) -> OpToken {
    // Causal-trace boundary: mint-or-inherit the op's id (a bare sync
    // call mints here; an op minted upstream by the async front door
    // is inherited) and mark the traversal start. Independent of the
    // histogram kill-switch; both are relaxed-load-cheap when off.
    let trace = lf_trace::op_scope();
    lf_trace::emit(lf_trace::Phase::Search);
    if !histograms_enabled() {
        return OpToken {
            active: false,
            structure,
            start: None,
            trace,
        };
    }
    let start = OP_SEQ
        .try_with(|c| {
            let seq = c.get();
            c.set(seq.wrapping_add(1));
            (seq & (LATENCY_SAMPLE_EVERY - 1) == 0).then(clock::now_ticks)
        })
        .ok()
        .flatten();
    OpToken {
        active: true,
        structure,
        start,
        trace,
    }
}

/// Finish a per-operation telemetry capture started by [`op_begin`].
///
/// Records the op into the thread-local histograms and counts it
/// (callers must not additionally call [`record_op`]).
#[inline]
pub fn op_end(token: OpToken) {
    #[cfg(feature = "trace")]
    trace::emit(trace::EventKind::OpEnd);
    // Close the causal scope: emits `complete` iff this boundary
    // minted the id (an async-minted op completes at its front door).
    token.trace.finish();
    if !token.active {
        with_local(|l| {
            Shard::bump(&l.ops);
            Shard::bump(&l.ops_by[token.structure as usize]);
        });
        return;
    }
    // `saturating_sub`: cross-core TSC skew of a few ticks must not
    // wrap into an astronomical latency.
    let latency_ns = token
        .start
        .map(|start| clock::ticks_to_ns(clock::now_ticks().saturating_sub(start)));
    with_local(|l| {
        Shard::bump(&l.ops);
        Shard::bump(&l.ops_by[token.structure as usize]);
        let cf = l.cas_failures();
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        let bl = l.backlink_traversals.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        let cu = l.curr_updates.load(Ordering::Relaxed);
        // `saturating_sub` guards against an explicit same-thread
        // `flush_local` between the two ends zeroing the counters (one
        // op's delta clips to zero, then the baselines re-sync).
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        let retries = cf.saturating_sub(l.last_cas_fail.load(Ordering::Relaxed));
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        let backlinks = bl.saturating_sub(l.last_backlink.load(Ordering::Relaxed));
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        let hops = cu.saturating_sub(l.last_curr.load(Ordering::Relaxed));
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        l.last_cas_fail.store(cf, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        l.last_backlink.store(bl, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        l.last_curr.store(cu, Ordering::Relaxed);
        l.hist_record_op(token.structure, latency_ns, retries, backlinks, hops);
    });
}

/// Opaque per-operation capture token; see [`op_begin`].
#[derive(Debug)]
pub struct OpToken {
    /// Whether histograms were enabled at `op_begin`.
    active: bool,
    /// Which structure the op runs against ([`op_begin_for`]).
    structure: Structure,
    /// TSC ticks at `op_begin` on latency-sampled ops, else `None`.
    start: Option<u64>,
    /// Causal-trace scope (op id lifetime); finished by [`op_end`].
    trace: lf_trace::OpScope,
}

/// Materialize the calling thread's shard and histogram storage
/// (~232 KiB) eagerly.
///
/// Benchmark workers call this before their start barrier so the first
/// recorded op doesn't pay registration, allocation, and page fault-in
/// inside a measured window.
pub fn prewarm() {
    with_local(|l| {
        let _ = l.hists();
    });
}

/// Fold this thread's counts into the retired aggregate immediately.
///
/// Rarely needed: [`snapshot`] and [`telemetry`] read live shards
/// directly, so counts are visible without flushing. Useful for a
/// long-lived daemon thread that wants to hand off its tallies.
pub fn flush_local() {
    let _ = LOCAL.try_with(|l| {
        let _reg = shards();
        fold_into_retired(&l.0);
    });
}

/// Reset every count to zero: the retired aggregate, the global
/// histograms, and all live thread shards.
///
/// A thread recording concurrently can reassert an in-flight
/// increment; reset while workers are quiescent.
pub fn reset() {
    let reg = shards();
    for shard in reg.iter() {
        for i in 0..4 {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            shard.cas_ok[i].store(0, Ordering::Relaxed);
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            shard.cas_fail[i].store(0, Ordering::Relaxed);
        }
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.backlink_traversals.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.next_updates.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.curr_updates.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.try_read_restarts.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.try_read_fallbacks.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.ops.store(0, Ordering::Relaxed);
        for cell in shard.ops_by.iter() {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            cell.store(0, Ordering::Relaxed);
        }
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.last_cas_fail.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.last_backlink.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        shard.last_curr.store(0, Ordering::Relaxed);
        if let Some(hists) = shard.hist.get() {
            for h in hists.iter() {
                h.reset();
            }
        }
    }
    if let Some(global) = GLOBAL_HIST.get() {
        for g in global {
            g.reset();
        }
    }
    for i in 0..4 {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        GLOBAL.cas_ok[i].store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        GLOBAL.cas_fail[i].store(0, Ordering::Relaxed);
    }
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.backlink_traversals.store(0, Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.next_updates.store(0, Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.curr_updates.store(0, Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.try_read_restarts.store(0, Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.try_read_fallbacks.store(0, Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    GLOBAL.ops.store(0, Ordering::Relaxed);
    for cell in GLOBAL.ops_by.iter() {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        cell.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the global aggregate. Difference two
/// snapshots (`after - before`) to measure a phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    /// Successful CAS count per [`CasType`].
    pub cas_ok: [u64; 4],
    /// Failed CAS count per [`CasType`].
    pub cas_fail: [u64; 4],
    /// Backlink pointer traversals.
    pub backlink_traversals: u64,
    /// `next_node` updates.
    pub next_updates: u64,
    /// `curr_node` updates.
    pub curr_updates: u64,
    /// Pin-free `try_read` restarts (failed birth-stamp validations).
    pub try_read_restarts: u64,
    /// Pin-free `try_read` ops that fell back to the pinned path.
    pub try_read_fallbacks: u64,
    /// Completed operations.
    pub ops: u64,
    /// Completed operations per [`Structure`], indexed by discriminant.
    /// Bare [`record_op`] calls are structure-blind, so these sum to at
    /// most `ops`.
    pub ops_by: [u64; 3],
}

impl Snapshot {
    /// Completed operations attributed to one [`Structure`].
    pub fn ops_for(&self, s: Structure) -> u64 {
        self.ops_by[s as usize]
    }
    /// Total CAS attempts (all types, both outcomes).
    pub fn cas_attempts(&self) -> u64 {
        self.cas_ok.iter().sum::<u64>() + self.cas_fail.iter().sum::<u64>()
    }

    /// Total successful CAS.
    pub fn cas_successes(&self) -> u64 {
        self.cas_ok.iter().sum()
    }

    /// Total failed CAS.
    pub fn cas_failures(&self) -> u64 {
        self.cas_fail.iter().sum()
    }

    /// The paper's essential-step total: CAS attempts + backlink
    /// traversals + `next_node` updates + `curr_node` updates.
    pub fn essential_steps(&self) -> u64 {
        self.cas_attempts() + self.backlink_traversals + self.next_updates + self.curr_updates
    }

    /// Essential steps per completed operation (0 if no ops recorded).
    pub fn steps_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.essential_steps() as f64 / self.ops as f64
        }
    }
}

impl Sub for Snapshot {
    type Output = Snapshot;

    fn sub(self, rhs: Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for i in 0..4 {
            out.cas_ok[i] = self.cas_ok[i].wrapping_sub(rhs.cas_ok[i]);
            out.cas_fail[i] = self.cas_fail[i].wrapping_sub(rhs.cas_fail[i]);
        }
        out.backlink_traversals = self
            .backlink_traversals
            .wrapping_sub(rhs.backlink_traversals);
        out.next_updates = self.next_updates.wrapping_sub(rhs.next_updates);
        out.curr_updates = self.curr_updates.wrapping_sub(rhs.curr_updates);
        out.try_read_restarts = self.try_read_restarts.wrapping_sub(rhs.try_read_restarts);
        out.try_read_fallbacks = self.try_read_fallbacks.wrapping_sub(rhs.try_read_fallbacks);
        out.ops = self.ops.wrapping_sub(rhs.ops);
        for i in 0..Structure::ALL.len() {
            out.ops_by[i] = self.ops_by[i].wrapping_sub(rhs.ops_by[i]);
        }
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "steps/op={:.2} (ops={}, essential={})",
            self.steps_per_op(),
            self.ops,
            self.essential_steps()
        )?;
        for ty in CasType::ALL {
            writeln!(
                f,
                "  cas[{}]: ok={} fail={}",
                ty, self.cas_ok[ty as usize], self.cas_fail[ty as usize]
            )?;
        }
        writeln!(
            f,
            "  backlinks={} next_updates={} curr_updates={}",
            self.backlink_traversals, self.next_updates, self.curr_updates
        )?;
        writeln!(
            f,
            "  try_read: restarts={} fallbacks={}",
            self.try_read_restarts, self.try_read_fallbacks
        )?;
        write!(
            f,
            "  ops[list]={} ops[skiplist]={} ops[map]={}",
            self.ops_for(Structure::List),
            self.ops_for(Structure::SkipList),
            self.ops_for(Structure::Map)
        )
    }
}

/// Copy the current aggregate: the retired totals plus every live
/// thread's shard.
///
/// No flush is required — counts recorded by any thread are visible
/// here. Counts from a thread that is still running are racy-fresh;
/// they are exact once that thread has been joined.
pub fn snapshot() -> Snapshot {
    let reg = shards();
    snapshot_locked(&reg)
}

/// Sum the retired aggregate and the given live shards. Caller holds
/// the registry lock.
fn snapshot_locked(reg: &[Arc<Shard>]) -> Snapshot {
    let mut s = Snapshot::default();
    for i in 0..4 {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.cas_ok[i] = GLOBAL.cas_ok[i].load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.cas_fail[i] = GLOBAL.cas_fail[i].load(Ordering::Relaxed);
    }
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    s.backlink_traversals = GLOBAL.backlink_traversals.load(Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    s.next_updates = GLOBAL.next_updates.load(Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    s.curr_updates = GLOBAL.curr_updates.load(Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    s.try_read_restarts = GLOBAL.try_read_restarts.load(Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    s.try_read_fallbacks = GLOBAL.try_read_fallbacks.load(Ordering::Relaxed);
    // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
    s.ops = GLOBAL.ops.load(Ordering::Relaxed);
    for i in 0..Structure::ALL.len() {
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.ops_by[i] = GLOBAL.ops_by[i].load(Ordering::Relaxed);
    }
    for shard in reg {
        for i in 0..4 {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            s.cas_ok[i] += shard.cas_ok[i].load(Ordering::Relaxed);
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            s.cas_fail[i] += shard.cas_fail[i].load(Ordering::Relaxed);
        }
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.backlink_traversals += shard.backlink_traversals.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.next_updates += shard.next_updates.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.curr_updates += shard.curr_updates.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.try_read_restarts += shard.try_read_restarts.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.try_read_fallbacks += shard.try_read_fallbacks.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        s.ops += shard.ops.load(Ordering::Relaxed);
        for i in 0..Structure::ALL.len() {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            s.ops_by[i] += shard.ops_by[i].load(Ordering::Relaxed);
        }
    }
    s
}

/// Scalar counters plus the four per-operation distributions, captured
/// together. Difference two (`after - before`) to isolate a phase.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// The essential-step scalar totals.
    pub counters: Snapshot,
    hists: [Histogram; HIST_SLOTS],
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            counters: Snapshot::default(),
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

impl Telemetry {
    /// The distribution for one [`Metric`].
    pub fn histogram(&self, m: Metric) -> &Histogram {
        &self.hists[m as usize]
    }

    /// Per-op latency distribution for one [`Structure`], nanoseconds.
    ///
    /// The aggregate [`Telemetry::op_latency_ns`] sums every structure;
    /// this view is what keeps a map's ~O(1) point ops from being
    /// averaged into a skip list's O(log n) latencies in mixed
    /// deployments.
    pub fn structure_latency_ns(&self, s: Structure) -> &Histogram {
        &self.hists[Metric::ALL.len() + s as usize]
    }

    /// Per-op latency distribution, nanoseconds.
    pub fn op_latency_ns(&self) -> &Histogram {
        self.histogram(Metric::OpLatencyNs)
    }

    /// Per-op failed-CAS distribution (empirical `c(S)`).
    pub fn cas_retries(&self) -> &Histogram {
        self.histogram(Metric::CasRetries)
    }

    /// Per-op backlink-chain-length distribution.
    pub fn backlink_chain(&self) -> &Histogram {
        self.histogram(Metric::BacklinkChain)
    }

    /// Per-op search-hop distribution (empirical `n(S)`).
    pub fn search_hops(&self) -> &Histogram {
        self.histogram(Metric::SearchHops)
    }
}

impl Sub for Telemetry {
    type Output = Telemetry;

    fn sub(self, rhs: Telemetry) -> Telemetry {
        let mut hists = self.hists;
        let mut rhs_hists = rhs.hists.into_iter();
        for h in hists.iter_mut() {
            let taken = std::mem::take(h);
            *h = taken - rhs_hists.next().expect("matching histogram slots");
        }
        Telemetry {
            counters: self.counters - rhs.counters,
            hists,
        }
    }
}

impl fmt::Display for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.counters)?;
        for m in Metric::ALL {
            writeln!(f, "  {}: {}", m, self.histogram(m))?;
        }
        for s in Structure::ALL {
            writeln!(
                f,
                "  op_latency_ns[{}]: {}",
                s,
                self.structure_latency_ns(s)
            )?;
        }
        Ok(())
    }
}

/// Copy the current scalar aggregate and histograms.
///
/// Same visibility contract as [`snapshot`]: every thread's counts and
/// distributions are summed (retired aggregate plus live shards), with
/// no flush required. Prefer [`Registry::join_and_snapshot`] to bound
/// a measurement phase.
pub fn telemetry() -> Telemetry {
    let reg = shards();
    let counters = snapshot_locked(&reg);
    let g = global_hist();
    let mut hists: [Histogram; HIST_SLOTS] = std::array::from_fn(|i| g[i].load());
    for shard in reg.iter() {
        if let Some(h) = shard.hist.get() {
            for (dst, src) in hists.iter_mut().zip(h.iter()) {
                src.add_into(dst);
            }
        }
    }
    Telemetry { counters, hists }
}

/// Namespace for measurement-phase helpers over the process-global
/// metric state.
pub struct Registry;

impl Registry {
    /// Run `work` between two [`telemetry`] snapshots and return its
    /// result together with the phase delta.
    ///
    /// This fixes the flush-before-snapshot footgun. Worker counts
    /// used to become globally visible only when each worker's TLS
    /// destructor flushed them — and `std::thread::scope` can return
    /// *before* a joined worker's TLS destructors have run, silently
    /// dropping whole threads from a naive measurement. Snapshots now
    /// read every live shard straight from the registry, so nothing
    /// depends on destructor timing; `work` joining its workers (e.g.
    /// via [`std::thread::scope`]) establishes the happens-before edge
    /// that makes the closing snapshot exact rather than racy-fresh.
    ///
    /// # Examples
    ///
    /// ```
    /// use lf_metrics::{self as metrics, Registry};
    ///
    /// let (sum, tel) = Registry::join_and_snapshot(|| {
    ///     std::thread::scope(|s| {
    ///         let h = s.spawn(|| {
    ///             let t = metrics::op_begin();
    ///             metrics::record_cas(metrics::CasType::Insert, false);
    ///             metrics::op_end(t);
    ///             21 + 21
    ///         });
    ///         h.join().unwrap()
    ///     })
    /// });
    /// assert_eq!(sum, 42);
    /// assert_eq!(tel.counters.ops, 1);
    /// assert_eq!(tel.cas_retries().count(), 1);
    /// ```
    pub fn join_and_snapshot<R>(work: impl FnOnce() -> R) -> (R, Telemetry) {
        let before = telemetry();
        let result = work();
        (result, telemetry() - before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share global state; run with a lock so `cargo test` threads
    // don't interleave resets.
    use std::sync::Mutex;
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn shards_are_cache_line_aligned() {
        // No two threads' shards may share a 64-byte line.
        assert_eq!(std::mem::align_of::<Shard>(), 64);
        assert_eq!(std::mem::size_of::<Shard>() % 64, 0);
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        record_cas(CasType::Insert, true);
        record_cas(CasType::Flag, false);
        record_cas(CasType::Mark, true);
        record_cas(CasType::Unlink, true);
        record_backlink();
        record_backlink();
        record_next_update();
        record_curr_update();
        record_op();
        let delta = snapshot() - before;
        assert_eq!(delta.cas_ok, [1, 0, 1, 1]);
        assert_eq!(delta.cas_fail, [0, 1, 0, 0]);
        assert_eq!(delta.backlink_traversals, 2);
        assert_eq!(delta.next_updates, 1);
        assert_eq!(delta.curr_updates, 1);
        assert_eq!(delta.ops, 1);
        assert_eq!(delta.cas_attempts(), 4);
        assert_eq!(delta.cas_successes(), 3);
        assert_eq!(delta.cas_failures(), 1);
        assert_eq!(delta.essential_steps(), 4 + 2 + 1 + 1);
        assert_eq!(delta.steps_per_op(), 8.0);
    }

    #[test]
    fn try_read_counters_roundtrip() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        record_try_read_restart();
        record_try_read_restart();
        record_try_read_restart();
        record_try_read_fallback();
        let delta = snapshot() - before;
        assert_eq!(delta.try_read_restarts, 3);
        assert_eq!(delta.try_read_fallbacks, 1);
        // Restarts are not essential steps of the paper's cost model.
        assert_eq!(delta.essential_steps(), 0);
        let shown = delta.to_string();
        assert!(
            shown.contains("try_read: restarts=3 fallbacks=1"),
            "{shown}"
        );
    }

    #[test]
    fn structure_attribution_separates_ops() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        op_end(op_begin_for(Structure::Map));
        op_end(op_begin_for(Structure::Map));
        op_end(op_begin_for(Structure::SkipList));
        op_end(op_begin()); // structure-blind default credits List
        let delta = snapshot() - before;
        assert_eq!(delta.ops, 4);
        assert_eq!(delta.ops_for(Structure::Map), 2);
        assert_eq!(delta.ops_for(Structure::SkipList), 1);
        assert_eq!(delta.ops_for(Structure::List), 1);
        let shown = delta.to_string();
        assert!(shown.contains("ops[map]=2"), "{shown}");
    }

    #[test]
    fn structure_latency_histograms_do_not_alias() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = telemetry();
        // Latency is sampled 1-in-16 per thread; run enough ops that
        // every structure lands samples regardless of sequence phase.
        for _ in 0..64 {
            op_end(op_begin_for(Structure::Map));
        }
        let delta = telemetry() - before;
        assert_eq!(delta.counters.ops_for(Structure::Map), 64);
        assert!(delta.structure_latency_ns(Structure::Map).count() >= 1);
        assert_eq!(delta.structure_latency_ns(Structure::SkipList).count(), 0);
        // The aggregate histogram still sees the map's samples.
        assert_eq!(
            delta.op_latency_ns().count(),
            delta.structure_latency_ns(Structure::Map).count()
        );
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        record_backlink();
                    }
                });
            }
        });
        let delta = snapshot() - before;
        assert_eq!(delta.backlink_traversals, 400);
    }

    #[test]
    fn reset_zeroes_counts() {
        let _g = TEST_LOCK.lock().unwrap();
        record_op();
        reset();
        let s = snapshot();
        assert_eq!(s.ops, 0);
        assert_eq!(s.essential_steps(), 0);
    }

    #[test]
    fn steps_per_op_zero_ops() {
        assert_eq!(Snapshot::default().steps_per_op(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Snapshot::default();
        assert!(format!("{s}").contains("steps/op"));
        assert_eq!(CasType::Unlink.to_string(), "unlink");
    }

    #[test]
    fn live_thread_counts_visible_without_flush_or_exit() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let t = std::thread::spawn(move || {
            for _ in 0..25 {
                record_curr_update();
            }
            ready_tx.send(()).unwrap();
            // Stay alive — no flush, no exit — until the main thread
            // has snapshotted.
            done_rx.recv().unwrap();
        });
        ready_rx.recv().unwrap();
        // The channel handshake orders the stores before this load, so
        // the live shard must already show all 25.
        let delta = snapshot() - before;
        assert_eq!(delta.curr_updates, 25);
        done_tx.send(()).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn explicit_flush_makes_counts_visible() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        let t = std::thread::spawn(|| {
            record_next_update();
            flush_local();
            // Keep the thread alive; flush already published the count.
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        // Wait for the flush (bounded spin).
        let mut delta = snapshot() - before;
        for _ in 0..1000 {
            if delta.next_updates == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            delta = snapshot() - before;
        }
        assert_eq!(delta.next_updates, 1);
        t.join().unwrap();
    }
}
