#![warn(missing_docs)]

//! Essential-step accounting.
//!
//! The amortized analysis in Fomitchev & Ruppert §3.4 counts exactly four
//! kinds of *essential steps*:
//!
//! 1. **C&S attempts**, split by the four CAS types of Def. 4 —
//!    insertion, flagging, marking, physical deletion — and by outcome;
//! 2. **backlink traversals** (`TryFlag` line 10, `Insert` line 18);
//! 3. **`next_node` pointer updates** (`SearchFrom` line 6);
//! 4. **`curr_node` pointer updates** (`SearchFrom` line 8).
//!
//! "Counting these steps gives an accurate picture of the required time
//! (up to a constant factor)". The instrumented list and skip list call
//! the `record_*` functions here at each such step; experiment harnesses
//! take [`snapshot`]s around measurement phases and difference them to
//! validate the `O(n(S) + c(S))` bound empirically.
//!
//! Counters are thread-local plain `Cell`s (an increment is ~1 ns, so
//! instrumentation does not distort throughput measurements) and are
//! folded into a global aggregate when a thread exits or when
//! [`flush_local`] is called explicitly. Harnesses must join worker
//! threads (or have them call `flush_local`) before snapshotting.
//!
//! # Examples
//!
//! ```
//! use lf_metrics as metrics;
//!
//! let before = metrics::snapshot();
//! metrics::record_cas(metrics::CasType::Insert, true);
//! metrics::record_curr_update();
//! metrics::flush_local();
//! let delta = metrics::snapshot() - before;
//! assert_eq!(delta.cas_attempts(), 1);
//! assert_eq!(delta.curr_updates, 1);
//! assert_eq!(delta.essential_steps(), 2);
//! ```

use std::cell::Cell;
use std::fmt;
use std::ops::Sub;
use std::sync::atomic::{AtomicU64, Ordering};

/// The four CAS types of the paper's Def. 4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CasType {
    /// Type 1: inserting a new node (`Insert` line 11).
    Insert = 0,
    /// Type 2: flagging a predecessor (`TryFlag` line 4).
    Flag = 1,
    /// Type 3: marking a node (`TryMark` line 3).
    Mark = 2,
    /// Type 4: physical deletion / unflag (`HelpMarked` line 2).
    Unlink = 3,
}

impl CasType {
    /// All four types, in discriminant order.
    pub const ALL: [CasType; 4] = [
        CasType::Insert,
        CasType::Flag,
        CasType::Mark,
        CasType::Unlink,
    ];

    /// Short lowercase label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CasType::Insert => "insert",
            CasType::Flag => "flag",
            CasType::Mark => "mark",
            CasType::Unlink => "unlink",
        }
    }
}

impl fmt::Display for CasType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Default)]
struct LocalCounters {
    cas_ok: [Cell<u64>; 4],
    cas_fail: [Cell<u64>; 4],
    backlink_traversals: Cell<u64>,
    next_updates: Cell<u64>,
    curr_updates: Cell<u64>,
    ops: Cell<u64>,
    dirty: Cell<bool>,
}

struct FlushOnExit(LocalCounters);

impl Drop for FlushOnExit {
    fn drop(&mut self) {
        flush_into_global(&self.0);
    }
}

thread_local! {
    static LOCAL: FlushOnExit = FlushOnExit(LocalCounters::default());
}

#[derive(Default)]
struct GlobalCounters {
    cas_ok: [AtomicU64; 4],
    cas_fail: [AtomicU64; 4],
    backlink_traversals: AtomicU64,
    next_updates: AtomicU64,
    curr_updates: AtomicU64,
    ops: AtomicU64,
}

static GLOBAL: GlobalCounters = GlobalCounters {
    cas_ok: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    cas_fail: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    backlink_traversals: AtomicU64::new(0),
    next_updates: AtomicU64::new(0),
    curr_updates: AtomicU64::new(0),
    ops: AtomicU64::new(0),
};

fn flush_into_global(local: &LocalCounters) {
    if !local.dirty.replace(false) {
        return;
    }
    for i in 0..4 {
        GLOBAL.cas_ok[i].fetch_add(local.cas_ok[i].replace(0), Ordering::Relaxed);
        GLOBAL.cas_fail[i].fetch_add(local.cas_fail[i].replace(0), Ordering::Relaxed);
    }
    GLOBAL
        .backlink_traversals
        .fetch_add(local.backlink_traversals.replace(0), Ordering::Relaxed);
    GLOBAL
        .next_updates
        .fetch_add(local.next_updates.replace(0), Ordering::Relaxed);
    GLOBAL
        .curr_updates
        .fetch_add(local.curr_updates.replace(0), Ordering::Relaxed);
    GLOBAL.ops.fetch_add(local.ops.replace(0), Ordering::Relaxed);
}

#[inline]
fn with_local(f: impl FnOnce(&LocalCounters)) {
    // Accessing a thread-local during its own destruction panics;
    // metrics are best-effort, so silently drop those increments.
    let _ = LOCAL.try_with(|l| {
        l.0.dirty.set(true);
        f(&l.0);
    });
}

/// Record one C&S attempt of the given type and outcome.
#[inline]
pub fn record_cas(ty: CasType, success: bool) {
    with_local(|l| {
        let slot = if success {
            &l.cas_ok[ty as usize]
        } else {
            &l.cas_fail[ty as usize]
        };
        slot.set(slot.get() + 1);
    });
}

/// Record one backlink pointer traversal.
#[inline]
pub fn record_backlink() {
    with_local(|l| l.backlink_traversals.set(l.backlink_traversals.get() + 1));
}

/// Record one `next_node` pointer update (`SearchFrom` line 6).
#[inline]
pub fn record_next_update() {
    with_local(|l| l.next_updates.set(l.next_updates.get() + 1));
}

/// Record one `curr_node` pointer update (`SearchFrom` line 8).
#[inline]
pub fn record_curr_update() {
    with_local(|l| l.curr_updates.set(l.curr_updates.get() + 1));
}

/// Record one completed dictionary operation (for per-op averages).
#[inline]
pub fn record_op() {
    with_local(|l| l.ops.set(l.ops.get() + 1));
}

/// Fold this thread's pending counts into the global aggregate.
pub fn flush_local() {
    let _ = LOCAL.try_with(|l| flush_into_global(&l.0));
}

/// Reset the global aggregate (and this thread's local counts) to zero.
///
/// Other threads' unflushed local counts are *not* cleared; reset while
/// workers are quiescent.
pub fn reset() {
    let _ = LOCAL.try_with(|l| {
        l.0.dirty.set(false);
        for i in 0..4 {
            l.0.cas_ok[i].set(0);
            l.0.cas_fail[i].set(0);
        }
        l.0.backlink_traversals.set(0);
        l.0.next_updates.set(0);
        l.0.curr_updates.set(0);
        l.0.ops.set(0);
    });
    for i in 0..4 {
        GLOBAL.cas_ok[i].store(0, Ordering::Relaxed);
        GLOBAL.cas_fail[i].store(0, Ordering::Relaxed);
    }
    GLOBAL.backlink_traversals.store(0, Ordering::Relaxed);
    GLOBAL.next_updates.store(0, Ordering::Relaxed);
    GLOBAL.curr_updates.store(0, Ordering::Relaxed);
    GLOBAL.ops.store(0, Ordering::Relaxed);
}

/// A point-in-time copy of the global aggregate. Difference two
/// snapshots (`after - before`) to measure a phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    /// Successful CAS count per [`CasType`].
    pub cas_ok: [u64; 4],
    /// Failed CAS count per [`CasType`].
    pub cas_fail: [u64; 4],
    /// Backlink pointer traversals.
    pub backlink_traversals: u64,
    /// `next_node` updates.
    pub next_updates: u64,
    /// `curr_node` updates.
    pub curr_updates: u64,
    /// Completed operations.
    pub ops: u64,
}

impl Snapshot {
    /// Total CAS attempts (all types, both outcomes).
    pub fn cas_attempts(&self) -> u64 {
        self.cas_ok.iter().sum::<u64>() + self.cas_fail.iter().sum::<u64>()
    }

    /// Total successful CAS.
    pub fn cas_successes(&self) -> u64 {
        self.cas_ok.iter().sum()
    }

    /// Total failed CAS.
    pub fn cas_failures(&self) -> u64 {
        self.cas_fail.iter().sum()
    }

    /// The paper's essential-step total: CAS attempts + backlink
    /// traversals + `next_node` updates + `curr_node` updates.
    pub fn essential_steps(&self) -> u64 {
        self.cas_attempts() + self.backlink_traversals + self.next_updates + self.curr_updates
    }

    /// Essential steps per completed operation (0 if no ops recorded).
    pub fn steps_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.essential_steps() as f64 / self.ops as f64
        }
    }
}

impl Sub for Snapshot {
    type Output = Snapshot;

    fn sub(self, rhs: Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for i in 0..4 {
            out.cas_ok[i] = self.cas_ok[i].wrapping_sub(rhs.cas_ok[i]);
            out.cas_fail[i] = self.cas_fail[i].wrapping_sub(rhs.cas_fail[i]);
        }
        out.backlink_traversals = self
            .backlink_traversals
            .wrapping_sub(rhs.backlink_traversals);
        out.next_updates = self.next_updates.wrapping_sub(rhs.next_updates);
        out.curr_updates = self.curr_updates.wrapping_sub(rhs.curr_updates);
        out.ops = self.ops.wrapping_sub(rhs.ops);
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "steps/op={:.2} (ops={}, essential={})",
            self.steps_per_op(),
            self.ops,
            self.essential_steps()
        )?;
        for ty in CasType::ALL {
            writeln!(
                f,
                "  cas[{}]: ok={} fail={}",
                ty,
                self.cas_ok[ty as usize],
                self.cas_fail[ty as usize]
            )?;
        }
        write!(
            f,
            "  backlinks={} next_updates={} curr_updates={}",
            self.backlink_traversals, self.next_updates, self.curr_updates
        )
    }
}

/// Copy the current global aggregate.
///
/// Flushes the calling thread's local counts first; other threads must
/// have exited or called [`flush_local`] for their counts to appear.
pub fn snapshot() -> Snapshot {
    flush_local();
    let mut s = Snapshot::default();
    for i in 0..4 {
        s.cas_ok[i] = GLOBAL.cas_ok[i].load(Ordering::Relaxed);
        s.cas_fail[i] = GLOBAL.cas_fail[i].load(Ordering::Relaxed);
    }
    s.backlink_traversals = GLOBAL.backlink_traversals.load(Ordering::Relaxed);
    s.next_updates = GLOBAL.next_updates.load(Ordering::Relaxed);
    s.curr_updates = GLOBAL.curr_updates.load(Ordering::Relaxed);
    s.ops = GLOBAL.ops.load(Ordering::Relaxed);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share global state; run with a lock so `cargo test` threads
    // don't interleave resets.
    use std::sync::Mutex;
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn record_and_snapshot_roundtrip() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        record_cas(CasType::Insert, true);
        record_cas(CasType::Flag, false);
        record_cas(CasType::Mark, true);
        record_cas(CasType::Unlink, true);
        record_backlink();
        record_backlink();
        record_next_update();
        record_curr_update();
        record_op();
        let delta = snapshot() - before;
        assert_eq!(delta.cas_ok, [1, 0, 1, 1]);
        assert_eq!(delta.cas_fail, [0, 1, 0, 0]);
        assert_eq!(delta.backlink_traversals, 2);
        assert_eq!(delta.next_updates, 1);
        assert_eq!(delta.curr_updates, 1);
        assert_eq!(delta.ops, 1);
        assert_eq!(delta.cas_attempts(), 4);
        assert_eq!(delta.cas_successes(), 3);
        assert_eq!(delta.cas_failures(), 1);
        assert_eq!(delta.essential_steps(), 4 + 2 + 1 + 1);
        assert_eq!(delta.steps_per_op(), 8.0);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        record_backlink();
                    }
                });
            }
        });
        let delta = snapshot() - before;
        assert_eq!(delta.backlink_traversals, 400);
    }

    #[test]
    fn reset_zeroes_counts() {
        let _g = TEST_LOCK.lock().unwrap();
        record_op();
        reset();
        let s = snapshot();
        assert_eq!(s.ops, 0);
        assert_eq!(s.essential_steps(), 0);
    }

    #[test]
    fn steps_per_op_zero_ops() {
        assert_eq!(Snapshot::default().steps_per_op(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Snapshot::default();
        assert!(format!("{s}").contains("steps/op"));
        assert_eq!(CasType::Unlink.to_string(), "unlink");
    }

    #[test]
    fn explicit_flush_makes_counts_visible() {
        let _g = TEST_LOCK.lock().unwrap();
        let before = snapshot();
        let t = std::thread::spawn(|| {
            record_next_update();
            flush_local();
            // Keep the thread alive; flush already published the count.
            std::thread::sleep(std::time::Duration::from_millis(10));
        });
        // Wait for the flush (bounded spin).
        let mut delta = snapshot() - before;
        for _ in 0..1000 {
            if delta.next_updates == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            delta = snapshot() - before;
        }
        assert_eq!(delta.next_updates, 1);
        t.join().unwrap();
    }
}
