//! Log-bucketed histograms over the full `u64` range at ~2 significant
//! figures.
//!
//! The bucket layout is the HdrHistogram one: values below
//! [`SUB_BUCKET_COUNT`] are recorded exactly; above that, each
//! power-of-two range is split into [`SUB_BUCKET_HALF`] linear
//! sub-buckets, so the relative quantization error is bounded by
//! `1/128 < 1%` everywhere. A histogram is a flat array of
//! [`SLOT_COUNT`] counters — recording is two shifts, a subtract, and
//! an increment, with no allocation and no synchronization, which is
//! what lets the thread-local recording path stay out of the way of
//! the lock-free hot loops it observes.
//!
//! Percentiles follow the paper's framing: the distributional claims of
//! Fomitchev & Ruppert (amortized `O(n(S) + c(S))`) are about *tails*,
//! not means, so [`Histogram::percentile`] reports the highest value
//! equivalent to the bucket containing the requested rank — the
//! conservative (upper) end of the bucket.

use std::fmt;
use std::ops::Sub;
use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of [`SUB_BUCKET_COUNT`].
const SUB_BUCKET_BITS: u32 = 8;
/// Values below this are recorded exactly (one slot per value).
pub const SUB_BUCKET_COUNT: usize = 1 << SUB_BUCKET_BITS;
/// Linear sub-buckets per power-of-two range above the exact region.
pub const SUB_BUCKET_HALF: usize = SUB_BUCKET_COUNT / 2;
const SUB_BUCKET_MASK: u64 = (SUB_BUCKET_COUNT - 1) as u64;
/// Total slots needed to cover `0..=u64::MAX`.
pub const SLOT_COUNT: usize = (64 - SUB_BUCKET_BITS as usize + 2) * SUB_BUCKET_HALF;

/// Slot index covering value `v`.
#[inline]
pub fn index_for(v: u64) -> usize {
    let bucket = (64 - (v | SUB_BUCKET_MASK).leading_zeros() - SUB_BUCKET_BITS) as usize;
    let sub = (v >> bucket) as usize;
    (bucket + 1) * SUB_BUCKET_HALF + sub - SUB_BUCKET_HALF
}

/// Smallest value mapping to slot `index`.
#[inline]
pub fn lowest_equivalent(index: usize) -> u64 {
    if index < SUB_BUCKET_COUNT {
        index as u64
    } else {
        let bucket = index / SUB_BUCKET_HALF - 1;
        let sub = index % SUB_BUCKET_HALF + SUB_BUCKET_HALF;
        (sub as u64) << bucket
    }
}

/// Largest value mapping to slot `index`.
#[inline]
pub fn highest_equivalent(index: usize) -> u64 {
    if index < SUB_BUCKET_COUNT {
        index as u64
    } else {
        let bucket = index / SUB_BUCKET_HALF - 1;
        lowest_equivalent(index).saturating_add((1u64 << bucket) - 1)
    }
}

/// A single-writer log-bucketed histogram.
///
/// Plain `u64` counters: record into one from a single thread (or
/// behind external synchronization), then [`Histogram::merge`] into an
/// aggregate. Two aggregates can be differenced with `-` to isolate a
/// measurement phase.
///
/// # Examples
///
/// ```
/// use lf_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=200u64 {
///     h.record(v); // values < 256 are recorded exactly
/// }
/// assert_eq!(h.count(), 200);
/// assert_eq!(h.percentile(50.0), 100);
/// assert_eq!(h.percentile(99.0), 198);
/// assert_eq!(h.max(), 200);
/// ```
pub struct Histogram {
    counts: Box<[u64]>,
    total: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        Histogram {
            counts: self.counts.clone(),
            total: self.total,
            sum: self.sum,
        }
    }
}

impl Histogram {
    /// An empty histogram (allocates its ~58 KiB slot array).
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; SLOT_COUNT].into_boxed_slice(),
            total: 0,
            sum: 0,
        }
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v`.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[index_for(v)] += n;
        self.total += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Fold `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Reset to empty without reallocating.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value, rounded down to its bucket boundary
    /// (0 if empty).
    pub fn min(&self) -> u64 {
        self.counts
            .iter()
            .position(|&c| c != 0)
            .map(lowest_equivalent)
            .unwrap_or(0)
    }

    /// Largest recorded value, rounded up to its bucket boundary
    /// (0 if empty).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c != 0)
            .map(highest_equivalent)
            .unwrap_or(0)
    }

    /// The value at the given percentile (`0.0..=100.0`), reported as
    /// the upper bound of the bucket holding that rank (0 if empty).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let target = target.min(self.total);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return highest_equivalent(i);
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Iterate over `(lowest_value, count)` for every nonempty slot.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (lowest_equivalent(i), c))
    }
}

impl Sub for Histogram {
    type Output = Histogram;

    /// Per-bucket difference (`after - before`), for isolating a phase
    /// between two cumulative snapshots.
    fn sub(self, rhs: Histogram) -> Histogram {
        let mut out = self;
        for (dst, src) in out.counts.iter_mut().zip(rhs.counts.iter()) {
            *dst = dst.wrapping_sub(*src);
        }
        out.total = out.total.wrapping_sub(rhs.total);
        out.sum = out.sum.wrapping_sub(rhs.sum);
        out
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} p999={} max={}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

/// The lock-free aggregate a flushing thread merges its local
/// [`Histogram`] into: the same slot layout with atomic counters, so
/// concurrent flushes never block each other.
///
/// Public since the async serving layer: subsystems that cannot use the
/// per-thread shard machinery (e.g. `lf-async`'s service metrics, where
/// producers and workers on arbitrary threads record into one shared
/// histogram) embed an `AtomicHistogram` directly and record via the
/// multi-writer [`AtomicHistogram::record`].
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram (allocates its ~58 KiB slot array).
    pub fn new() -> Self {
        let mut v = Vec::with_capacity(SLOT_COUNT);
        v.resize_with(SLOT_COUNT, || AtomicU64::new(0));
        AtomicHistogram {
            counts: v.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Multi-writer record: `fetch_add` so any number of threads can
    /// record concurrently into one shared histogram. Costlier than
    /// [`AtomicHistogram::record_owner`] (a locked RMW per field), so
    /// the single-writer shard path keeps using the owner variant; this
    /// one serves shared service-level histograms (queue depth,
    /// enqueue-to-complete latency) where there is no owner.
    #[inline]
    pub fn record(&self, v: u64) {
        // ord: Relaxed — MET.shard: statistic counter, snapshots racy-fresh
        self.counts[index_for(v)].fetch_add(1, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: statistic counter, snapshots racy-fresh
        self.total.fetch_add(1, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: statistic counter, snapshots racy-fresh
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Owner-only record: relaxed load+store instead of `fetch_add`,
    /// because the owning thread is the histogram's sole writer.
    /// Concurrent readers ([`AtomicHistogram::add_into`]) may observe
    /// the slot before the total (or vice versa) — snapshots are
    /// racy-fresh by contract and exact once the writer is joined.
    pub(crate) fn record_owner(&self, v: u64) {
        let slot = &self.counts[index_for(v)];
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        slot.store(slot.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        self.total
            .store(self.total.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        let s = self.sum.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        self.sum.store(s.saturating_add(v), Ordering::Relaxed);
    }

    /// Fold `other` into `self` and zero `other` (skipping empty
    /// slots). Used to retire a dead thread's shard into the global
    /// aggregate; the caller serializes against snapshot readers.
    pub(crate) fn absorb(&self, other: &AtomicHistogram) {
        // Load-then-swap: nearly all slots are empty, and a plain load
        // is ~20x cheaper than a locked `swap`. This runs on a worker's
        // exit path inside benchmark timing windows, so sweeping 30k
        // slots with RMWs would bill milliseconds to the measured
        // phase. The caller serializes against the owner, so a slot
        // cannot become nonzero between the load and the skip.
        for (dst, src) in self.counts.iter().zip(other.counts.iter()) {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            if src.load(Ordering::Relaxed) != 0 {
                // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
                dst.fetch_add(src.swap(0, Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        self.total
            .fetch_add(other.total.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        self.sum
            .fetch_add(other.sum.swap(0, Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Accumulate a relaxed copy of `self` into `dst`.
    pub fn add_into(&self, dst: &mut Histogram) {
        for (d, s) in dst.counts.iter_mut().zip(self.counts.iter()) {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            *d += s.load(Ordering::Relaxed);
        }
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        dst.total += self.total.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        dst.sum = dst.sum.saturating_add(self.sum.load(Ordering::Relaxed));
    }

    /// Copy into a plain [`Histogram`].
    pub fn load(&self) -> Histogram {
        let mut h = Histogram::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            *dst = src.load(Ordering::Relaxed);
        }
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        h.total = self.total.load(Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        h.sum = self.sum.load(Ordering::Relaxed);
        h
    }

    /// Zero every counter in place.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
            c.store(0, Ordering::Relaxed);
        }
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        self.total.store(0, Ordering::Relaxed);
        // ord: Relaxed — MET.shard: single-writer counter, snapshots racy-fresh
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_region_is_exact() {
        for v in 0..SUB_BUCKET_COUNT as u64 {
            let i = index_for(v);
            assert_eq!(lowest_equivalent(i), v);
            assert_eq!(highest_equivalent(i), v);
        }
    }

    #[test]
    fn boundary_round_trips() {
        // Every slot's boundaries map back to that slot.
        for i in 0..SLOT_COUNT {
            let lo = lowest_equivalent(i);
            let hi = highest_equivalent(i);
            assert_eq!(index_for(lo), i, "lowest of slot {i}");
            assert_eq!(index_for(hi), i, "highest of slot {i}");
            assert!(lo <= hi);
        }
        // Extremes.
        assert_eq!(index_for(0), 0);
        assert_eq!(index_for(u64::MAX), SLOT_COUNT - 1);
    }

    #[test]
    fn quantization_error_within_two_sigfigs() {
        for shift in 8..63 {
            let v = (1u64 << shift) + (1u64 << (shift - 1)) + 3;
            let i = index_for(v);
            let (lo, hi) = (lowest_equivalent(i), highest_equivalent(i));
            assert!(lo <= v && v <= hi);
            let err = (hi - lo) as f64 / lo as f64;
            assert!(err < 1.0 / 128.0, "slot width {err} at value {v}");
        }
    }

    #[test]
    fn percentile_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 5_000), (90.0, 9_000), (99.0, 9_900), (99.9, 9_990)] {
            let got = h.percentile(p);
            let expect = expect as f64;
            let rel = (got as f64 - expect).abs() / expect;
            assert!(rel < 0.01, "p{p}: got {got}, want ~{expect}");
        }
        assert!(h.min() <= 1);
        assert!(h.max() >= 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn merge_and_sub() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(10, 5);
        b.record_n(10, 2);
        b.record(1_000_000);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 8);
        let d = m - a;
        assert_eq!(d.count(), b.count());
        assert_eq!(d.sum(), b.sum());
        assert_eq!(d.percentile(100.0), b.percentile(100.0));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn atomic_multi_writer_record() {
        let h = std::sync::Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.load();
        assert_eq!(s.count(), 400);
        let expect: u64 = (0..4u64)
            .map(|t| (0..100).map(|i| t * 1_000 + i).sum::<u64>())
            .sum();
        assert_eq!(s.sum(), expect);
    }

    #[test]
    fn atomic_record_absorb_and_load() {
        let shard = AtomicHistogram::new();
        for _ in 0..3 {
            shard.record_owner(42);
        }
        shard.record_owner(7_777);
        let g = AtomicHistogram::new();
        g.absorb(&shard);
        assert!(shard.load().is_empty(), "absorb zeroes the source");
        let s = g.load();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 3 * 42 + 7_777);
        let mut acc = Histogram::new();
        acc.record(1);
        g.add_into(&mut acc);
        assert_eq!(acc.count(), 5);
        assert_eq!(acc.sum(), 1 + 3 * 42 + 7_777);
        g.reset();
        assert!(g.load().is_empty());
    }
}
