//! Peak-unreclaimed-memory gauge for the SMR backends.
//!
//! Every reclamation domain (EBR collector, hazard-era domain, VBR
//! domain) embeds one [`UnreclaimedGauge`] and bumps it at retire and
//! free time. The gauge keeps the running retired-minus-freed count
//! *and* its high-water mark, so the cross-SMR experiment (E14) can
//! report "peak unreclaimed memory" per backend — including under a
//! stalled reader, where the difference between schemes that bound
//! garbage and schemes that don't is the whole story — without each
//! experiment wiring up ad-hoc counters.
//!
//! Counts are in *objects*, not bytes: every backend retires whole
//! nodes/tower blocks, so object counts compare like-for-like across
//! backends operating on the same structure.

use std::sync::atomic::{AtomicU64, Ordering};

/// Running retired/freed totals and the unreclaimed high-water mark of
/// one reclamation domain.
///
/// All methods are lock-free and callable from any thread; the peak is
/// maintained with a `fetch_max`, so concurrent retires can never lose
/// a high-water update.
#[derive(Debug, Default)]
pub struct UnreclaimedGauge {
    /// Total objects handed to the collector since domain creation.
    retired: AtomicU64,
    /// Total objects whose destructors have run.
    freed: AtomicU64,
    /// High-water mark of `retired - freed`.
    peak: AtomicU64,
}

/// A point-in-time copy of an [`UnreclaimedGauge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnreclaimedSnapshot {
    /// Total objects retired since domain creation.
    pub retired: u64,
    /// Total objects freed since domain creation.
    pub freed: u64,
    /// Objects currently awaiting reclamation (`retired - freed`).
    pub unreclaimed: u64,
    /// High-water mark of `unreclaimed` over the domain's lifetime.
    pub peak_unreclaimed: u64,
}

impl UnreclaimedGauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        UnreclaimedGauge {
            retired: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Record `n` objects handed to the collector.
    #[inline]
    pub fn record_retire(&self, n: u64) {
        // Relaxed everywhere in this gauge: the counters are pure
        // statistics — never dereferenced, never used to order frees.
        // The peak is racy-fresh (a reader may briefly see a peak one
        // update behind a concurrent retire), which is fine for a
        // high-water diagnostic.
        // ord: Relaxed — STAT.len: pure statistic, no ordering role
        let retired = self.retired.fetch_add(n, Ordering::Relaxed) + n;
        // ord: Relaxed — STAT.len: pure statistic, no ordering role
        let freed = self.freed.load(Ordering::Relaxed);
        // `freed` may run ahead of the `retired` we read under
        // concurrency; saturate rather than wrap.
        let outstanding = retired.saturating_sub(freed);
        // ord: Relaxed — STAT.len: pure statistic, no ordering role
        self.peak.fetch_max(outstanding, Ordering::Relaxed);
    }

    /// Record `n` objects whose destructors have run.
    #[inline]
    pub fn record_free(&self, n: u64) {
        // ord: Relaxed — STAT.len: pure statistic, no ordering role
        self.freed.fetch_add(n, Ordering::Relaxed);
    }

    /// Objects currently awaiting reclamation.
    pub fn unreclaimed(&self) -> u64 {
        self.snapshot().unreclaimed
    }

    /// The unreclaimed high-water mark.
    pub fn peak_unreclaimed(&self) -> u64 {
        // ord: Relaxed — STAT.len: pure statistic, no ordering role
        self.peak.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of all counters (racy-fresh under
    /// concurrency, exact when quiescent).
    pub fn snapshot(&self) -> UnreclaimedSnapshot {
        // ord: Relaxed — STAT.len: pure statistic, no ordering role
        let retired = self.retired.load(Ordering::Relaxed);
        // ord: Relaxed — STAT.len: pure statistic, no ordering role
        let freed = self.freed.load(Ordering::Relaxed);
        UnreclaimedSnapshot {
            retired,
            freed,
            unreclaimed: retired.saturating_sub(freed),
            // ord: Relaxed — STAT.len: pure statistic, no ordering role
            peak_unreclaimed: self.peak.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_free_cycle_tracks_peak() {
        let g = UnreclaimedGauge::new();
        g.record_retire(3);
        assert_eq!(g.unreclaimed(), 3);
        assert_eq!(g.peak_unreclaimed(), 3);
        g.record_free(2);
        assert_eq!(g.unreclaimed(), 1);
        // Peak never decreases.
        assert_eq!(g.peak_unreclaimed(), 3);
        g.record_retire(5);
        let s = g.snapshot();
        assert_eq!(s.retired, 8);
        assert_eq!(s.freed, 2);
        assert_eq!(s.unreclaimed, 6);
        assert_eq!(s.peak_unreclaimed, 6);
    }

    #[test]
    fn concurrent_retires_never_lose_the_peak() {
        use std::sync::Arc;
        let g = Arc::new(UnreclaimedGauge::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..1000 {
                        g.record_retire(1);
                    }
                });
            }
        });
        let s = g.snapshot();
        assert_eq!(s.retired, 4000);
        assert_eq!(s.unreclaimed, 4000);
        assert_eq!(s.peak_unreclaimed, 4000);
    }
}
