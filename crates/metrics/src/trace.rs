//! Per-thread ring-buffer tracing of essential-step events
//! (compiled only with the `trace` feature).
//!
//! Every `record_*` call in the crate root doubles as a trace hook:
//! when tracing is [`enable`]d at runtime, the event is stamped with a
//! globally unique sequence number and appended to the calling
//! thread's private ring buffer. Buffers are bounded (oldest events
//! overwritten), so tracing a long run keeps only the most recent
//! window. [`take`] drains every thread's buffer and merges the events
//! into one seq-ordered timeline — a replayable interleaving of the
//! essential steps the paper's analysis counts, which is exactly what
//! you want in front of you when a stress test trips an invariant.
//!
//! Costs: with the feature compiled but tracing disabled, each hook is
//! one relaxed atomic load. With the feature off (the default), the
//! hooks do not exist.
//!
//! Sequence stamps are allocated by one global atomic counter at
//! record time, so the merged timeline is the true allocation order of
//! the stamps; per thread it is exactly program order.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::CasType;

/// What happened at one essential step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A C&S attempt of the given Def. 4 type, and whether it won.
    Cas {
        /// Which of the four C&S types.
        ty: CasType,
        /// Whether the C&S succeeded.
        ok: bool,
    },
    /// A backlink pointer traversal.
    Backlink,
    /// A `next_node` pointer update.
    NextUpdate,
    /// A `curr_node` pointer update.
    CurrUpdate,
    /// A dictionary operation completed.
    OpEnd,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Cas { ty, ok } => {
                write!(f, "cas({},{})", ty.label(), if *ok { "ok" } else { "fail" })
            }
            EventKind::Backlink => f.write_str("backlink"),
            EventKind::NextUpdate => f.write_str("next_update"),
            EventKind::CurrUpdate => f.write_str("curr_update"),
            EventKind::OpEnd => f.write_str("op_end"),
        }
    }
}

/// One traced essential step.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Globally unique, allocation-ordered stamp.
    pub seq: u64,
    /// Small dense id of the recording thread (first-event order).
    pub thread: u32,
    /// What the step was.
    pub kind: EventKind,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 16);

struct Ring {
    buf: Vec<Option<(u64, EventKind)>>,
    next: usize,
}

struct ThreadBuf {
    thread: u32,
    ring: Mutex<Ring>,
}

impl ThreadBuf {
    fn push(&self, seq: u64, kind: EventKind) {
        let mut r = self.ring.lock().unwrap();
        let cap = r.buf.len();
        let slot = r.next % cap;
        r.buf[slot] = Some((seq, kind));
        r.next += 1;
    }

    fn drain(&self) -> Vec<Event> {
        let mut r = self.ring.lock().unwrap();
        let mut out: Vec<Event> = r
            .buf
            .iter_mut()
            .filter_map(Option::take)
            .map(|(seq, kind)| Event {
                seq,
                thread: self.thread,
                kind,
            })
            .collect();
        r.next = 0;
        out.sort_by_key(|e| e.seq);
        out
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TL_BUF: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            // ord: Relaxed — MET.trace: id/seq tickets need only RMW atomicity
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed) as u32,
            ring: Mutex::new(Ring {
                // ord: Relaxed — MET.trace: advisory capacity hint
                buf: vec![None; CAPACITY.load(Ordering::Relaxed).max(1)],
                next: 0,
            }),
        });
        registry().lock().unwrap().push(buf.clone());
        buf
    };
}

/// Turn event recording on.
pub fn enable() {
    // Relaxed (demoted from SeqCst): the flag guards no data — emitters
    // that miss the flip merely skip a few leading events.
    // ord: Relaxed — MET.toggle: advisory kill-switch, no data guarded
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn event recording off (buffers keep their contents).
pub fn disable() {
    // ord: Relaxed — MET.toggle: advisory kill-switch, no data guarded
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether events are currently being recorded.
pub fn is_enabled() -> bool {
    // ord: Relaxed — MET.toggle: advisory kill-switch, no data guarded
    ENABLED.load(Ordering::Relaxed)
}

/// Set the ring capacity (events kept per thread) for threads that
/// have not yet recorded their first event. Existing buffers keep
/// their size.
pub fn set_thread_capacity(events: usize) {
    // ord: Relaxed — MET.trace: advisory capacity hint
    CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// The trace thread id the calling thread records under (registers the
/// thread's buffer if needed). Useful for filtering [`take`] output.
pub fn current_thread_id() -> u32 {
    TL_BUF.with(|b| b.thread)
}

#[inline]
pub(crate) fn emit(kind: EventKind) {
    // ord: Relaxed — MET.toggle: advisory kill-switch, no data guarded
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    // ord: Relaxed — MET.trace: id/seq tickets need only RMW atomicity
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    // Best-effort during thread teardown, like the counters.
    let _ = TL_BUF.try_with(|b| b.push(seq, kind));
}

/// Drain every thread's buffer into one seq-ordered timeline.
///
/// Within each thread the events are in program order; across threads
/// the stamps give the global allocation order. Events evicted by ring
/// wrap-around are absent (the window keeps the newest per thread).
pub fn take() -> Vec<Event> {
    let bufs: Vec<Arc<ThreadBuf>> = registry().lock().unwrap().clone();
    let mut all: Vec<Event> = bufs.iter().flat_map(|b| b.drain()).collect();
    all.sort_by_key(|e| e.seq);
    all
}

/// Discard all buffered events.
pub fn clear() {
    let _ = take();
}

/// Render a timeline as one line per event, indented by thread for a
/// visual interleaving.
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let indent = (e.thread as usize % 8) * 2;
        out.push_str(&format!(
            "{:>10}  t{:<3} {:indent$}{}\n",
            e.seq,
            e.thread,
            "",
            e.kind,
            indent = indent
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_backlink, record_cas, record_curr_update, record_op};

    // Trace state is process-global; serialize the tests against each
    // other (other test modules may record while untraced — that's
    // harmless because `ENABLED` is off between these tests).
    static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// The scripted per-thread step pattern used by the replay test.
    fn run_pattern(reps: usize) -> u32 {
        let tid = current_thread_id();
        for _ in 0..reps {
            record_cas(CasType::Insert, true);
            record_backlink();
            record_curr_update();
            record_cas(CasType::Mark, false);
            record_op();
        }
        tid
    }

    fn expected_kinds(reps: usize) -> Vec<EventKind> {
        let unit = [
            EventKind::Cas {
                ty: CasType::Insert,
                ok: true,
            },
            EventKind::Backlink,
            EventKind::CurrUpdate,
            EventKind::Cas {
                ty: CasType::Mark,
                ok: false,
            },
            EventKind::OpEnd,
        ];
        std::iter::repeat(unit).take(reps).flatten().collect()
    }

    #[test]
    fn three_thread_interleaving_replays_each_program() {
        let _g = TRACE_TEST_LOCK.lock().unwrap();
        clear();
        enable();
        let tids: Vec<u32> = std::thread::scope(|s| {
            let hs: Vec<_> = (1..=3)
                .map(|reps| s.spawn(move || run_pattern(reps)))
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        disable();
        let events = take();

        // Stamps are unique and the merged timeline is sorted.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        // All three workers appear.
        let mut tids = tids;
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "threads shared a trace id");

        // Per-thread replay: filtering the global timeline by thread id
        // must reproduce each worker's program, in program order.
        // (Filtering also keeps the test independent of unrelated test
        // threads that record steps while tracing is on.)
        let mut scripted = 0;
        for (i, &tid) in tids.iter().enumerate() {
            let kinds: Vec<EventKind> = events
                .iter()
                .filter(|e| e.thread == tid)
                .map(|e| e.kind)
                .collect();
            // Worker `reps` is identified by its event count.
            let reps = kinds.len() / 5;
            assert!(
                (1..=3).contains(&reps),
                "thread {i} traced {} events",
                kinds.len()
            );
            assert_eq!(kinds, expected_kinds(reps), "thread {i} replay mismatch");
            scripted += kinds.len();
        }
        assert_eq!(scripted, (1 + 2 + 3) * 5, "scripted events lost");
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = TRACE_TEST_LOCK.lock().unwrap();
        clear();
        disable();
        record_cas(CasType::Flag, true);
        record_backlink();
        assert!(take().is_empty());
    }

    #[test]
    fn ring_keeps_newest_events() {
        let _g = TRACE_TEST_LOCK.lock().unwrap();
        clear();
        set_thread_capacity(8);
        enable();
        // Fresh thread so the small capacity applies.
        let tid = std::thread::spawn(|| {
            for _ in 0..20 {
                record_backlink();
            }
            current_thread_id()
        })
        .join()
        .unwrap();
        disable();
        set_thread_capacity(1 << 16);
        let mut events = take();
        events.retain(|e| e.thread == tid);
        assert_eq!(events.len(), 8, "ring should cap retained events");
        // The retained events are the newest: their stamps are the top
        // 8 of the 20 allocated.
        let min_kept = events.iter().map(|e| e.seq).min().unwrap();
        let max_kept = events.iter().map(|e| e.seq).max().unwrap();
        assert_eq!(max_kept - min_kept, 7);
        assert!(events.iter().all(|e| e.kind == EventKind::Backlink));
    }

    #[test]
    fn render_shows_interleaving() {
        let _g = TRACE_TEST_LOCK.lock().unwrap();
        clear();
        enable();
        record_cas(CasType::Unlink, true);
        disable();
        let events = take();
        let text = render(&events);
        assert!(text.contains("cas(unlink,ok)"), "{text}");
    }
}
