//! Low-overhead monotonic clock for per-op latency capture.
//!
//! `Instant::now` is a vDSO `clock_gettime` call, ~30 ns per read on
//! this class of hardware — two reads per operation would consume the
//! entire telemetry overhead budget by themselves. On x86-64 we read
//! the time-stamp counter directly (a few ns) and convert tick deltas
//! to nanoseconds with a fixed-point multiplier calibrated once against
//! `Instant` over a ~2 ms window. `constant_tsc`/`nonstop_tsc`
//! hardware (standard since ~2008) makes the TSC a valid monotonic
//! time source across frequency scaling and sleep states; the
//! histogram's two-significant-figure buckets absorb the remaining
//! calibration error. Other architectures fall back to `Instant`.

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    /// Raw TSC read. Unserialized: reordering slack of a few cycles is
    /// far below the histogram's bucket resolution.
    #[inline]
    pub fn now_ticks() -> u64 {
        // SAFETY: `rdtsc` is unprivileged and has no memory effects.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// Fixed-point ns-per-tick multiplier, shifted left by
    /// [`MULT_SHIFT`]. Calibrated on first use.
    static MULT: OnceLock<u64> = OnceLock::new();

    const MULT_SHIFT: u32 = 20;

    fn calibrate() -> u64 {
        let t0 = Instant::now();
        let c0 = now_ticks();
        while t0.elapsed() < Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let dt_ns = t0.elapsed().as_nanos() as u64;
        let dt_ticks = now_ticks().wrapping_sub(c0).max(1);
        // ~2 ms of Instant error (≲100 ns for two reads) keeps the
        // multiplier well inside the histogram's 1/128 bucket error.
        (((dt_ns as u128) << MULT_SHIFT) / dt_ticks as u128).max(1) as u64
    }

    /// Convert a tick delta to nanoseconds.
    #[inline]
    pub fn ticks_to_ns(dt: u64) -> u64 {
        let mult = *MULT.get_or_init(calibrate);
        u64::try_from((dt as u128 * mult as u128) >> MULT_SHIFT).unwrap_or(u64::MAX)
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Nanoseconds since the first call — `Instant`-backed fallback.
    #[inline]
    pub fn now_ticks() -> u64 {
        let epoch = EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Ticks already are nanoseconds on the fallback path.
    #[inline]
    pub fn ticks_to_ns(dt: u64) -> u64 {
        dt
    }
}

pub use imp::{now_ticks, ticks_to_ns};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn tick_deltas_convert_to_plausible_nanoseconds() {
        let t0 = Instant::now();
        let c0 = now_ticks();
        while t0.elapsed() < Duration::from_millis(20) {
            std::hint::spin_loop();
        }
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let ns = ticks_to_ns(now_ticks().wrapping_sub(c0));
        // Within 20% of the Instant-measured wall time: loose enough
        // for CI noise, tight enough to catch a botched calibration.
        let err = ns.abs_diff(wall_ns) as f64 / wall_ns as f64;
        assert!(err < 0.2, "tsc says {ns} ns, wall clock says {wall_ns} ns");
    }

    #[test]
    fn ticks_are_monotone_on_one_thread() {
        let a = now_ticks();
        let b = now_ticks();
        assert!(b >= a);
    }
}
