//! Property tests for the log-bucketed histogram and the concurrent
//! flush/merge path.
//!
//! The percentile oracle re-derives each percentile from a sorted copy
//! of the recorded values: because `index_for` is monotone, the bucket
//! where the cumulative count first reaches the target rank is exactly
//! the bucket of the rank-th smallest value, so the histogram's answer
//! must equal `highest_equivalent(index_for(oracle))` — and stay within
//! the two-significant-figure quantization bound of the oracle itself.

use proptest::prelude::*;

use lf_metrics::histogram::{highest_equivalent, index_for, lowest_equivalent};
use lf_metrics::{CasType, Histogram};

/// Map raw random words onto values spanning the full u64 dynamic
/// range (mantissa in 1..=255, shift in 0..56) so every magnitude of
/// bucket gets exercised, not just the exact sub-256 region.
fn spread(raw: u64) -> u64 {
    let shift = (raw % 56) as u32;
    let base = (raw >> 8) % 255 + 1;
    base << shift
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn percentile_matches_sorted_vec_oracle(
        raw in proptest::collection::vec(any::<u64>(), 1..300),
    ) {
        let values: Vec<u64> = raw.iter().map(|&r| spread(r)).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len();

        prop_assert_eq!(h.count(), n as u64);
        // The histogram saturates its running sum; mirror that fold.
        prop_assert_eq!(h.sum(), values.iter().fold(0u64, |a, &v| a.saturating_add(v)));
        prop_assert_eq!(h.max(), highest_equivalent(index_for(sorted[n - 1])));
        prop_assert_eq!(h.min(), lowest_equivalent(index_for(sorted[0])));

        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
            let oracle = sorted[rank.min(n) - 1];
            let got = h.percentile(p);
            prop_assert_eq!(
                got,
                highest_equivalent(index_for(oracle)),
                "p{} of {:?}",
                p,
                sorted
            );
            // Reported value is an upper bound on the oracle within the
            // bucket's equivalent range: relative error < 1/128.
            prop_assert!(got >= oracle);
            prop_assert!(
                got - oracle <= oracle / 128 + 1,
                "p{}: got {} vs oracle {}",
                p,
                got,
                oracle
            );
        }
    }

    /// Merging per-thread histograms is order-independent: any
    /// partition of the values into shards, merged in any order, gives
    /// the same aggregate as recording sequentially.
    #[test]
    fn merge_is_partition_and_order_independent(
        raw in proptest::collection::vec(any::<u64>(), 1..200),
        shards in 1usize..8,
    ) {
        let values: Vec<u64> = raw.iter().map(|&r| spread(r)).collect();
        let mut sequential = Histogram::new();
        for &v in &values {
            sequential.record(v);
        }
        let mut parts = vec![Histogram::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].record(v);
        }
        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = Histogram::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        for h in [&forward, &backward] {
            prop_assert_eq!(h.count(), sequential.count());
            prop_assert_eq!(h.sum(), sequential.sum());
            prop_assert_eq!(h.min(), sequential.min());
            prop_assert_eq!(h.max(), sequential.max());
            for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
                prop_assert_eq!(h.percentile(p), sequential.percentile(p));
            }
        }
    }
}

/// One concurrent run: 4 threads each record a deterministic
/// per-thread sequence of CAS-retry counts through the public
/// `op_begin`/`op_end` path; `join_and_snapshot` returns the aggregate
/// delta after every thread's local histogram has been flushed.
fn concurrent_retry_run() -> Histogram {
    let ((), tel) = lf_metrics::Registry::join_and_snapshot(|| {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..128u64 {
                        let op = lf_metrics::op_begin();
                        for _ in 0..(t * 977 + i * 131) % 97 {
                            lf_metrics::record_cas(CasType::Insert, false);
                        }
                        lf_metrics::op_end(op);
                    }
                });
            }
        });
    });
    tel.cas_retries().clone()
}

/// Concurrent merge determinism: the retry histogram produced by a
/// racy 4-thread run equals a sequentially computed expectation (and a
/// second racy run), bucket-for-bucket — thread interleavings must not
/// affect the aggregate because the drain is a per-bucket sum.
///
/// This test owns the process's global telemetry for retry values; it
/// would be perturbed only by another test in this binary recording
/// `cas_fail` between its two snapshots, which none does.
#[test]
fn concurrent_flush_is_deterministic() {
    let mut expected = Histogram::new();
    for t in 0..4u64 {
        for i in 0..128u64 {
            expected.record((t * 977 + i * 131) % 97);
        }
    }
    let a = concurrent_retry_run();
    let b = concurrent_retry_run();
    for run in [&a, &b] {
        assert_eq!(run.count(), expected.count());
        assert_eq!(run.sum(), expected.sum());
        assert_eq!(run.min(), expected.min());
        assert_eq!(run.max(), expected.max());
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(run.percentile(p), expected.percentile(p), "p{p}");
        }
    }
}
