//! SMR guard-lifetime & pointer-escape dataflow — audit pillar three.
//!
//! The workspace carries three reclamation disciplines behind the
//! `Reclaim` trait (DESIGN.md §13): guard-scoped derefs for EBR and
//! hazard eras, stamp re-validation before trusting a pin-free VBR
//! read, and the pin-per-poll rule in `lf-async` (no guard live across
//! an `.await`). This pass enforces them statically with an
//! intra-procedural dataflow over the lexer's token stream: it finds
//! guard/pin bindings, tracks raw-pointer bindings *derived from
//! guarded atomic loads* (`.load(`, `.ptr(`, or a registered
//! pointer-returning wrapper call), and checks five rules per fn:
//!
//! 1. **`smr-guard-scope`** — a deref of a guard-derived pointer
//!    outside the lexical scope of its originating guard (or after
//!    `drop(guard)`) is a finding.
//! 2. **`smr-escape`** — a guard-derived pointer escaping the fn (a
//!    pointer-returning fn whose body performs or delegates to a
//!    guarded atomic load, a field store, or a channel `send`) must
//!    carry a `// escape: <id>: <rationale>` annotation whose id is a
//!    row of the DESIGN.md §9.8 obligations table.
//! 3. **`smr-pin-across-await`** — a guard binding live across an
//!    `.await` token is a finding (the `pin_hygiene.rs` invariant,
//!    compile-gated).
//! 4. **`smr-unvalidated-deref`** — in a *safe* fn that holds no guard
//!    (the pin-free `try_read` shape), a deref of an optimistic-load-
//!    derived pointer must carry a `// validate: <id>` annotation
//!    naming the stamp re-validation that makes it sound.
//! 5. **`smr-retire-unlink`** — every `retire`/`defer` call site must
//!    carry an `// unlink: <id>` annotation pairing the retirement
//!    with the unlink CAS that made the node unreachable
//!    (retire-without-unlink is the classic double-free shape).
//!
//! Annotation ids are cross-checked bidirectionally against the §9.8
//! obligations table by the audit layer, with the same drift
//! discipline as the §9 ordering tables. The pass is intentionally
//! intra-procedural and name-based: like the rest of the auditor it
//! trades soundness-in-the-limit for zero dependencies and findings a
//! human can act on.

use std::collections::BTreeMap;

use crate::analyze::{BadAnnotation, Scanner};
use crate::design::is_invariant_id;
use crate::lexer::TokenKind;

/// The three SMR annotation kinds (comment prefixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SmrKind {
    /// `// escape:` — a guard-derived pointer deliberately leaves the
    /// guard's lexical scope (wrapper return, field store, send).
    Escape,
    /// `// validate:` — a guard-free deref is proven by stamp
    /// re-validation (VBR seqlock protocol).
    Validate,
    /// `// unlink:` — a retire/defer is paired with the unlink CAS
    /// that removed the node from the structure.
    Unlink,
}

impl SmrKind {
    /// The comment prefix (without the trailing `:`).
    pub fn as_str(self) -> &'static str {
        match self {
            SmrKind::Escape => "escape",
            SmrKind::Validate => "validate",
            SmrKind::Unlink => "unlink",
        }
    }
}

/// A parsed `// escape|validate|unlink: <id>: <rationale>` comment.
#[derive(Debug, Clone)]
pub struct SmrAnnotation {
    /// 1-based source line of the comment (its last line).
    pub line: u32,
    /// Which obligation kind the comment discharges.
    pub kind: SmrKind,
    /// Invariant id (`FAMILY.site`), a §9.8 obligations-table row.
    pub id: String,
    /// Free-text rationale after the id.
    pub rationale: String,
    /// Set during attachment; unattached annotations are drift.
    pub attached: bool,
}

/// One rule violation, before the audit layer adds crate/file context.
#[derive(Debug, Clone)]
pub struct SmrViolation {
    /// 1-based source line.
    pub line: u32,
    /// The violated rule (`smr-guard-scope`, `smr-escape`,
    /// `smr-pin-across-await`, `smr-unvalidated-deref`,
    /// `smr-retire-unlink`).
    pub rule: &'static str,
    /// Human-readable description naming the originating binding.
    pub message: String,
}

/// Everything the SMR pass learned about one file.
#[derive(Debug, Default)]
pub struct SmrScan {
    /// Parsed `// escape:` / `// validate:` / `// unlink:` comments.
    pub annotations: Vec<SmrAnnotation>,
    /// Rule violations (the audit layer applies per-crate policy).
    pub violations: Vec<SmrViolation>,
    /// Guard/pin bindings (locals + guard-typed params) seen.
    pub guards: usize,
    /// Pointer bindings tracked as derived from guarded loads.
    pub tracked: usize,
    /// Deref events of tracked bindings that were checked.
    pub derefs: usize,
    /// `retire`/`defer` call sites checked for unlink annotations.
    pub defer_sites: usize,
}

/// Idents that introduce a deferred-reclamation call site (rule 5).
const DEFER_FNS: &[&str] = &["defer", "defer_unchecked", "defer_drop_box", "retire"];

/// Idents that count as a channel/queue escape sink (rule 2).
const SEND_FNS: &[&str] = &["send", "try_send"];

/// One fn item with a body.
struct FnItem {
    name: String,
    fn_tok: usize,
    is_unsafe: bool,
    returns_raw_ptr: bool,
    param_open: usize,
    param_close: usize,
    body_open: usize,
    body_close: usize,
}

/// A live guard/pin binding inside one fn.
struct GuardBind {
    name: String,
    line: u32,
    decl_tok: usize,
    /// Token index of the innermost enclosing block's `}`.
    scope_end: usize,
    /// Token index of a `drop(name)` call, if any.
    drop_tok: Option<usize>,
    /// Guard received as a parameter (live for the whole body; the
    /// caller owns its scope).
    param: bool,
}

/// A tracked pointer binding derived from a guarded atomic load.
#[derive(Clone)]
struct PtrBind {
    /// Index into the fn's guard list, or `None` when no guard was
    /// live at the binding site (the pin-free optimistic-read shape).
    guard: Option<usize>,
    line: u32,
}

impl<'a> Scanner<'a> {
    /// Run the SMR dataflow pass. Requires the wrapper registry (call
    /// sites already collected), so it runs last in [`Scanner::run`].
    pub(crate) fn collect_smr(&mut self) {
        self.collect_smr_annotations();
        let fns = self.collect_fn_items();
        for (i, f) in fns.iter().enumerate() {
            if self.is_excluded(f.fn_tok) {
                continue;
            }
            // Nested fn items are analyzed on their own; mask their
            // spans out of the enclosing fn's walk.
            let nested: Vec<(usize, usize)> = fns
                .iter()
                .enumerate()
                .filter(|(j, g)| *j != i && g.fn_tok > f.body_open && g.body_close < f.body_close)
                .map(|(_, g)| (g.fn_tok, g.body_close))
                .collect();
            self.smr_analyze_fn(f, &nested);
        }
        self.collect_defer_sites();
    }

    fn collect_smr_annotations(&mut self) {
        for c in self.comments {
            let parsed = [SmrKind::Escape, SmrKind::Validate, SmrKind::Unlink]
                .into_iter()
                .find_map(|kind| {
                    c.text
                        .strip_prefix(kind.as_str())
                        .and_then(|r| r.strip_prefix(':'))
                        .map(|rest| (kind, rest.trim()))
                });
            let Some((kind, body)) = parsed else { continue };
            match parse_smr_body(body) {
                Ok((id, rationale)) => self.out.smr.annotations.push(SmrAnnotation {
                    line: c.end_line,
                    kind,
                    id,
                    rationale,
                    attached: false,
                }),
                Err(message) => self.out.bad_annotations.push(BadAnnotation {
                    line: c.line,
                    message: format!("malformed `// {}:` comment: {message}", kind.as_str()),
                }),
            }
        }
    }

    /// Find every fn item with a body (not just pointer-returning
    /// ones), recording param/body spans and `unsafe`-ness.
    fn collect_fn_items(&self) -> Vec<FnItem> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            if self.ident_at(i) != Some("fn") {
                i += 1;
                continue;
            }
            let Some(name) = self.ident_at(i + 1).map(str::to_owned) else {
                i += 1;
                continue;
            };
            // Qualifiers before `fn`: `pub(crate) const unsafe extern "C"`.
            let mut is_unsafe = false;
            let mut b = i;
            while b > 0 {
                b -= 1;
                match &self.toks[b].kind {
                    TokenKind::Ident(s)
                        if matches!(
                            s.as_str(),
                            "pub"
                                | "crate"
                                | "super"
                                | "self"
                                | "in"
                                | "const"
                                | "async"
                                | "extern"
                                | "unsafe"
                                | "default"
                        ) =>
                    {
                        if s == "unsafe" {
                            is_unsafe = true;
                        }
                    }
                    TokenKind::Punct('(') | TokenKind::Punct(')') | TokenKind::Str => {}
                    _ => break,
                }
            }
            // Optional generics (`>` preceded by `-` is a `->` inside
            // the bounds, not a closer).
            let mut j = i + 2;
            if self.punct_at(j) == Some('<') {
                let mut angle = 0i32;
                while j < self.toks.len() {
                    match self.punct_at(j) {
                        Some('<') => angle += 1,
                        Some('>') if self.punct_at(j.wrapping_sub(1)) != Some('-') => {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if self.punct_at(j) != Some('(') {
                i += 1;
                continue;
            }
            let param_open = j;
            let mut depth = 0i32;
            while j < self.toks.len() {
                match self.punct_at(j) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let param_close = j;
            // Return type between `->` and the body `{` / `where` / `;`.
            let mut k = j + 1;
            let mut returns_raw_ptr = false;
            if self.punct_at(k) == Some('-') && self.punct_at(k + 1) == Some('>') {
                k += 2;
                while k < self.toks.len() {
                    if matches!(self.punct_at(k), Some('{') | Some(';'))
                        || self.ident_at(k) == Some("where")
                    {
                        break;
                    }
                    if self.punct_at(k) == Some('*')
                        && matches!(self.ident_at(k + 1), Some("const") | Some("mut"))
                    {
                        returns_raw_ptr = true;
                    }
                    k += 1;
                }
            }
            while k < self.toks.len()
                && self.punct_at(k) != Some('{')
                && self.punct_at(k) != Some(';')
            {
                k += 1;
            }
            if self.punct_at(k) != Some('{') {
                // Trait/extern declaration without a body.
                i = k.max(i) + 1;
                continue;
            }
            let body_open = k;
            let mut braces = 0i32;
            let mut end = k;
            while end < self.toks.len() {
                match self.punct_at(end) {
                    Some('{') => braces += 1,
                    Some('}') => {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            out.push(FnItem {
                name,
                fn_tok: i,
                is_unsafe,
                returns_raw_ptr,
                param_open,
                param_close,
                body_open,
                body_close: end,
            });
            // Continue *inside* the body so nested fns are found too.
            i = body_open + 1;
        }
        out
    }

    /// Guard-typed / guard-named parameters of `f`.
    fn guard_params(&self, f: &FnItem) -> Vec<GuardBind> {
        let mut out = Vec::new();
        let mut seg_start = f.param_open + 1;
        let mut depth = 0i32;
        let mut t = seg_start;
        while t <= f.param_close {
            let end_of_seg = match self.punct_at(t) {
                Some('(') | Some('[') | Some('<') => {
                    depth += 1;
                    false
                }
                Some(')') | Some(']') | Some('>') => {
                    depth -= 1;
                    t == f.param_close
                }
                Some(',') if depth == 0 => true,
                _ => false,
            };
            if end_of_seg {
                let seg = seg_start..t;
                let mut name: Option<&str> = None;
                let mut is_guard_ty = false;
                for u in seg {
                    if let Some(id) = self.ident_at(u) {
                        if name.is_none() && !matches!(id, "mut" | "ref") {
                            name = Some(id);
                        }
                        if id.contains("Guard") {
                            is_guard_ty = true;
                        }
                    }
                }
                if let Some(n) = name {
                    if is_guard_ty || n == "guard" || n.ends_with("_guard") {
                        out.push(GuardBind {
                            name: n.to_string(),
                            line: self.toks[f.param_open].line,
                            decl_tok: f.body_open,
                            scope_end: f.body_close,
                            drop_tok: None,
                            param: true,
                        });
                    }
                }
                seg_start = t + 1;
            }
            t += 1;
        }
        out
    }

    /// Matched `{`/`}` pairs within the fn body, for innermost-scope
    /// lookups.
    fn block_spans(&self, f: &FnItem) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut stack = Vec::new();
        for t in f.body_open..=f.body_close {
            match self.punct_at(t) {
                Some('{') => stack.push(t),
                Some('}') => {
                    if let Some(open) = stack.pop() {
                        pairs.push((open, t));
                    }
                }
                _ => {}
            }
        }
        pairs
    }

    /// The `}` closing the innermost block containing token `t`.
    fn innermost_close(blocks: &[(usize, usize)], t: usize, default: usize) -> usize {
        blocks
            .iter()
            .filter(|&&(o, c)| o < t && t < c)
            .map(|&(o, c)| (o, c))
            .max_by_key(|&(o, _)| o)
            .map(|(_, c)| c)
            .unwrap_or(default)
    }

    /// Whether the init/RHS token range contains a tracked-pointer
    /// source: a guarded atomic `.load(`, a `.ptr(` tag unpack, a
    /// registered wrapper call, or a mention of an existing tracked
    /// binding. Returns the source description for messages.
    fn ptr_source_in(
        &self,
        range: std::ops::Range<usize>,
        tracked: &BTreeMap<String, PtrBind>,
    ) -> Option<&'static str> {
        let mut found: Option<&'static str> = None;
        for u in range {
            if self.punct_at(u) == Some('.')
                && matches!(self.ident_at(u + 1), Some("load") | Some("ptr"))
                && self.punct_at(u + 2) == Some('(')
            {
                return Some("an atomic load");
            }
            if let Some(id) = self.ident_at(u) {
                if self.wrapper_names.contains(id)
                    && self.punct_at(u + 1) == Some('(')
                    && self.ident_at(u.wrapping_sub(1)) != Some("fn")
                {
                    return Some("a pointer-returning wrapper");
                }
                if tracked.contains_key(id) {
                    found = Some("a tracked pointer");
                }
            }
        }
        found
    }

    /// Idents bound by a `let` pattern (tokens between `let` and `=`):
    /// lowercase idents outside type position, skipping `mut`/`ref`.
    fn pattern_idents(&self, range: std::ops::Range<usize>) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        for u in range {
            match self.punct_at(u) {
                Some('(') | Some('[') | Some('{') | Some('<') => depth += 1,
                Some(')') | Some(']') | Some('}') | Some('>') => depth -= 1,
                // A `:` at depth 0 starts the type ascription.
                Some(':') if depth == 0 => break,
                _ => {}
            }
            if let Some(id) = self.ident_at(u) {
                if !matches!(id, "mut" | "ref")
                    && id
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                {
                    out.push(id.to_string());
                }
            }
        }
        out
    }

    /// Analyze one fn against rules 1–4.
    fn smr_analyze_fn(&mut self, f: &FnItem, nested: &[(usize, usize)]) {
        let in_nested = |t: usize| nested.iter().any(|&(a, b)| t >= a && t <= b);
        let blocks = self.block_spans(f);
        let mut guards: Vec<GuardBind> = self.guard_params(f);
        let has_guard_param = !guards.is_empty();
        self.out.smr.guards += guards.len();
        let mut tracked: BTreeMap<String, PtrBind> = BTreeMap::new();
        // Events that need annotations, resolved after the walk so the
        // borrow of `self` stays shared during scanning.
        // (line, stmt_tok, end_tok, kind, rule, message)
        let mut needs: Vec<(usize, usize, SmrKind, &'static str, String)> = Vec::new();
        let mut escapes_fn_level = false;

        let live_guard = |guards: &[GuardBind], t: usize| -> Option<usize> {
            guards
                .iter()
                .enumerate()
                .rev()
                .find(|(_, g)| {
                    g.param
                        || (g.decl_tok < t && t <= g.scope_end && g.drop_tok.is_none_or(|d| d > t))
                })
                .map(|(i, _)| i)
        };

        let mut t = f.body_open + 1;
        while t < f.body_close {
            if in_nested(t) {
                t += 1;
                continue;
            }
            // --- drop(guard) truncates the guard's liveness ---
            if self.ident_at(t) == Some("drop") && self.punct_at(t + 1) == Some('(') {
                if let Some(arg) = self.ident_at(t + 2) {
                    if self.punct_at(t + 3) == Some(')') {
                        for g in guards.iter_mut() {
                            if g.name == arg && g.drop_tok.is_none() && g.decl_tok < t {
                                g.drop_tok = Some(t);
                            }
                        }
                    }
                }
            }
            // --- let bindings ---
            if self.ident_at(t) == Some("let") {
                // Pattern up to `=` (or `;` for uninitialized lets).
                let mut eq = t + 1;
                let mut pd = 0i32;
                while eq < f.body_close {
                    match self.punct_at(eq) {
                        Some('(') | Some('[') | Some('{') | Some('<') => pd += 1,
                        Some(')') | Some(']') | Some('}') | Some('>') => pd -= 1,
                        Some('=') if pd == 0 && self.punct_at(eq + 1) != Some('=') => break,
                        Some(';') if pd == 0 => break,
                        _ => {}
                    }
                    eq += 1;
                }
                if self.punct_at(eq) == Some('=') {
                    // Init up to the terminating `;` at depth 0.
                    let mut semi = eq + 1;
                    let mut d = 0i32;
                    while semi < f.body_close {
                        match self.punct_at(semi) {
                            Some('(') | Some('[') | Some('{') => d += 1,
                            Some(')') | Some(']') | Some('}') => d -= 1,
                            Some(';') if d == 0 => break,
                            _ => {}
                        }
                        semi += 1;
                    }
                    let names = self.pattern_idents(t + 1..eq);
                    let init = eq + 1..semi;
                    let is_pin = init.clone().any(|u| {
                        self.ident_at(u) == Some("pin") && self.punct_at(u + 1) == Some('(')
                    });
                    if is_pin {
                        let scope_end = Self::innermost_close(&blocks, t, f.body_close);
                        for n in names {
                            guards.push(GuardBind {
                                name: n,
                                line: self.toks[t].line,
                                decl_tok: t,
                                scope_end,
                                drop_tok: None,
                                param: false,
                            });
                            self.out.smr.guards += 1;
                        }
                    } else if self.ptr_source_in(init.clone(), &tracked).is_some() {
                        let g = live_guard(&guards, t);
                        for n in names {
                            tracked.insert(
                                n,
                                PtrBind {
                                    guard: g,
                                    line: self.toks[t].line,
                                },
                            );
                            self.out.smr.tracked += 1;
                        }
                    } else {
                        // Shadowed by an untracked value.
                        for n in names {
                            tracked.remove(&n);
                        }
                    }
                }
            }
            // --- simple reassignment `name = rhs;` at statement start ---
            if let Some(name) = self.ident_at(t).map(str::to_owned) {
                let at_stmt_start =
                    t == 0 || matches!(self.punct_at(t - 1), Some(';') | Some('{') | Some('}'));
                if at_stmt_start
                    && self.punct_at(t + 1) == Some('=')
                    && self.punct_at(t + 2) != Some('=')
                {
                    let mut semi = t + 2;
                    let mut d = 0i32;
                    while semi < f.body_close {
                        match self.punct_at(semi) {
                            Some('(') | Some('[') | Some('{') => d += 1,
                            Some(')') | Some(']') | Some('}') => d -= 1,
                            Some(';') if d == 0 => break,
                            _ => {}
                        }
                        semi += 1;
                    }
                    if self.ptr_source_in(t + 2..semi, &tracked).is_some() {
                        let g = live_guard(&guards, t);
                        if !tracked.contains_key(&name) {
                            self.out.smr.tracked += 1;
                        }
                        tracked.insert(
                            name,
                            PtrBind {
                                guard: g,
                                line: self.toks[t].line,
                            },
                        );
                    } else {
                        tracked.remove(&name);
                    }
                }
            }
            // --- deref events: prefix `*` on a tracked binding ---
            if self.punct_at(t) == Some('*') {
                let prefix = match t.checked_sub(1).map(|p| &self.toks[p].kind) {
                    None => true,
                    Some(TokenKind::Ident(s)) => matches!(s.as_str(), "return" | "in" | "else"),
                    Some(TokenKind::Number(_))
                    | Some(TokenKind::Str)
                    | Some(TokenKind::Char)
                    | Some(TokenKind::Lifetime) => false,
                    Some(TokenKind::Punct(c)) => !matches!(c, ')' | ']'),
                };
                if prefix {
                    if let Some(name) = self.ident_at(t + 1).map(str::to_owned) {
                        if let Some(bind) = tracked.get(&name).cloned() {
                            self.out.smr.derefs += 1;
                            let line = self.toks[t].line;
                            match bind.guard.and_then(|gi| guards.get(gi)) {
                                Some(g) if !g.param => {
                                    let out_of_scope =
                                        t > g.scope_end || g.drop_tok.is_some_and(|d| d < t);
                                    if out_of_scope {
                                        self.out.smr.violations.push(SmrViolation {
                                            line,
                                            rule: "smr-guard-scope",
                                            message: format!(
                                                "deref of guard-derived pointer `{name}` \
                                                 (bound line {}) outside the scope of its \
                                                 originating guard `{}` (pinned line {})",
                                                bind.line, g.name, g.line
                                            ),
                                        });
                                    }
                                }
                                Some(_) => {} // caller's guard covers the body
                                None if !f.is_unsafe => {
                                    // Pin-free optimistic read: deref must
                                    // name its stamp re-validation.
                                    needs.push((
                                        t,
                                        t,
                                        SmrKind::Validate,
                                        "smr-unvalidated-deref",
                                        format!(
                                            "deref of `{name}` (derived from an optimistic \
                                             load line {}, no guard live) in fn `{}` has no \
                                             `// validate:` annotation naming the stamp \
                                             re-validation that covers it",
                                            bind.line, f.name
                                        ),
                                    ));
                                }
                                None => {} // unsafe fn: caller discharges it (SAFETY:)
                            }
                        }
                    }
                }
            }
            // --- rule 3: guard live across `.await` ---
            if self.punct_at(t) == Some('.') && self.ident_at(t + 1) == Some("await") {
                for g in &guards {
                    let live = g.param
                        || (g.decl_tok < t && t <= g.scope_end && g.drop_tok.is_none_or(|d| d > t));
                    if live {
                        self.out.smr.violations.push(SmrViolation {
                            line: self.toks[t].line,
                            rule: "smr-pin-across-await",
                            message: format!(
                                "guard `{}` (pinned line {}) is live across `.await` in \
                                 fn `{}` — pin-per-poll invariant (DESIGN.md §10) forbids \
                                 holding a pin over a suspension point",
                                g.name, g.line, f.name
                            ),
                        });
                    }
                }
            }
            // --- rule 2: statement-level escapes (field store / send) ---
            if self.punct_at(t) == Some('.')
                && self.ident_at(t + 1).is_some()
                && self.punct_at(t + 2) == Some('=')
                && self.punct_at(t + 3) != Some('=')
            {
                let mut semi = t + 3;
                let mut d = 0i32;
                while semi < f.body_close {
                    match self.punct_at(semi) {
                        Some('(') | Some('[') | Some('{') => d += 1,
                        Some(')') | Some(']') | Some('}') => d -= 1,
                        Some(';') if d == 0 => break,
                        _ => {}
                    }
                    semi += 1;
                }
                if let Some(name) = self.guarded_mention(t + 3..semi, &tracked, &guards) {
                    needs.push((
                        t,
                        semi,
                        SmrKind::Escape,
                        "smr-escape",
                        format!(
                            "guard-derived pointer `{name}` escapes via field store in fn \
                             `{}` — annotate with `// escape: <id>` registered in the \
                             DESIGN.md §9.8 obligations table",
                            f.name
                        ),
                    ));
                }
            }
            if let Some(send) = self.ident_at(t) {
                if SEND_FNS.contains(&send)
                    && self.punct_at(t + 1) == Some('(')
                    && self.ident_at(t.wrapping_sub(1)) != Some("fn")
                {
                    let mut close = t + 1;
                    let mut d = 0i32;
                    while close < f.body_close {
                        match self.punct_at(close) {
                            Some('(') => d += 1,
                            Some(')') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        close += 1;
                    }
                    if let Some(name) = self.guarded_mention(t + 2..close, &tracked, &guards) {
                        needs.push((
                            t,
                            close,
                            SmrKind::Escape,
                            "smr-escape",
                            format!(
                                "guard-derived pointer `{name}` escapes via `{send}(..)` in \
                                 fn `{}` — annotate with `// escape: <id>` registered in \
                                 the DESIGN.md §9.8 obligations table",
                                f.name
                            ),
                        ));
                    }
                }
            }
            t += 1;
        }

        // --- rule 2, fn level: a pointer-returning fn whose body
        // performs (or delegates to) a guarded atomic load hands its
        // caller a guard-derived pointer — the escape is the return.
        if f.returns_raw_ptr {
            let body_has_site = self
                .site_tok_indices
                .iter()
                .chain(self.wrapper_call_tok_indices.iter())
                .any(|&s| s > f.body_open && s < f.body_close && !in_nested(s));
            let body_has_guarded = tracked.values().any(|b| b.guard.is_some());
            if body_has_site || body_has_guarded || has_guard_param {
                escapes_fn_level = true;
            }
        }
        if escapes_fn_level {
            needs.push((
                f.fn_tok,
                f.fn_tok,
                SmrKind::Escape,
                "smr-escape",
                format!(
                    "fn `{}` returns a raw pointer derived from a guarded atomic load — \
                     the pointer outlives this fn's view of the guard; annotate the fn \
                     with `// escape: <id>` registered in the DESIGN.md §9.8 obligations \
                     table",
                    f.name
                ),
            ));
        }

        for (start_tok, end_tok, kind, rule, message) in needs {
            let start_line = self.toks[start_tok].line;
            let end_line = self.toks[end_tok.min(self.toks.len() - 1)].line;
            let stmt_line = self.statement_start_line(start_tok);
            match self.find_smr_annotation(kind, stmt_line, start_line, end_line) {
                Some(ai) => self.out.smr.annotations[ai].attached = true,
                None => self.out.smr.violations.push(SmrViolation {
                    line: start_line,
                    rule,
                    message,
                }),
            }
        }
    }

    /// First tracked *guarded* binding mentioned in the range (for
    /// escape sinks).
    fn guarded_mention(
        &self,
        range: std::ops::Range<usize>,
        tracked: &BTreeMap<String, PtrBind>,
        guards: &[GuardBind],
    ) -> Option<String> {
        for u in range {
            if let Some(id) = self.ident_at(u) {
                if let Some(b) = tracked.get(id) {
                    if b.guard.and_then(|gi| guards.get(gi)).is_some() {
                        return Some(id.to_string());
                    }
                }
            }
        }
        None
    }

    /// Rule 5: every `retire`/`defer` call site pairs with an
    /// `// unlink:` annotation naming the unlink CAS.
    fn collect_defer_sites(&mut self) {
        let mut needs: Vec<(usize, usize, String)> = Vec::new();
        for t in 0..self.toks.len() {
            let Some(name) = self.ident_at(t).map(str::to_owned) else {
                continue;
            };
            if !DEFER_FNS.contains(&name.as_str())
                || self.punct_at(t + 1) != Some('(')
                || self.ident_at(t.wrapping_sub(1)) == Some("fn")
                || self.is_excluded(t)
            {
                continue;
            }
            let mut close = t + 1;
            let mut d = 0i32;
            while close < self.toks.len() {
                match self.punct_at(close) {
                    Some('(') => d += 1,
                    Some(')') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            self.out.smr.defer_sites += 1;
            needs.push((t, close, name));
        }
        for (t, close, name) in needs {
            let start_line = self.toks[t].line;
            let end_line = self.toks[close.min(self.toks.len() - 1)].line;
            let stmt_line = self.statement_start_line(t);
            match self.find_smr_annotation(SmrKind::Unlink, stmt_line, start_line, end_line) {
                Some(ai) => self.out.smr.annotations[ai].attached = true,
                None => self.out.smr.violations.push(SmrViolation {
                    line: start_line,
                    rule: "smr-retire-unlink",
                    message: format!(
                        "`{name}(..)` retires memory with no `// unlink: <id>` annotation \
                         pairing it with the unlink CAS that made the node unreachable \
                         (retire-without-unlink is the double-free shape)"
                    ),
                }),
            }
        }
    }

    /// Nearest visible SMR annotation of `kind` for a statement
    /// spanning `start_line..=end_line` (same attachment discipline as
    /// `// ord:` comments).
    fn find_smr_annotation(
        &self,
        kind: SmrKind,
        stmt_line: u32,
        start_line: u32,
        end_line: u32,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for l in self.visible_comment_lines(stmt_line, start_line, end_line) {
            for &ci in self.comments_ending.get(&l).into_iter().flatten() {
                let c = &self.comments[ci];
                if let Some(ai) = self
                    .out
                    .smr
                    .annotations
                    .iter()
                    .position(|a| a.line == c.end_line && a.kind == kind)
                {
                    best = Some(ai);
                }
            }
        }
        best
    }
}

/// Parse `<invariant-id>: <rationale>` after the kind prefix.
fn parse_smr_body(body: &str) -> Result<(String, String), String> {
    let (id, rationale) = body
        .split_once(':')
        .ok_or("missing `:` after invariant id")?;
    let id = id.trim();
    if !is_invariant_id(id) {
        return Err(format!(
            "invariant id {id:?} must look like FAMILY.site (e.g. ESC.node-right)"
        ));
    }
    let rationale = rationale.trim();
    if rationale.is_empty() {
        return Err("empty rationale".into());
    }
    Ok((id.to_string(), rationale.to_string()))
}

#[cfg(test)]
mod tests {
    use crate::analyze::scan_file;

    #[test]
    fn guard_scoped_deref_is_clean() {
        let s = scan_file(
            "fn f(h: &H) {\n\
                 let guard = R::pin(h);\n\
                 let p = self.head.load(Ordering::Acquire);\n\
                 unsafe { (*p).touch() };\n\
             }\n",
        );
        assert!(s.smr.violations.is_empty(), "{:?}", s.smr.violations);
        assert_eq!(s.smr.guards, 1);
        assert_eq!(s.smr.derefs, 1);
    }

    #[test]
    fn deref_outside_guard_block_is_flagged() {
        let s = scan_file(
            "fn f(h: &H) {\n\
                 let p;\n\
                 {\n\
                     let guard = R::pin(h);\n\
                     p = self.head.load(Ordering::Acquire);\n\
                 }\n\
                 unsafe { (*p).touch() };\n\
             }\n",
        );
        let v: Vec<_> = s
            .smr
            .violations
            .iter()
            .filter(|v| v.rule == "smr-guard-scope")
            .collect();
        assert_eq!(v.len(), 1, "{:?}", s.smr.violations);
        assert!(v[0].message.contains("`guard`"));
    }

    #[test]
    fn deref_after_drop_is_flagged() {
        let s = scan_file(
            "fn f(h: &H) {\n\
                 let guard = R::pin(h);\n\
                 let p = self.head.load(Ordering::Acquire);\n\
                 drop(guard);\n\
                 unsafe { (*p).touch() };\n\
             }\n",
        );
        assert!(s
            .smr
            .violations
            .iter()
            .any(|v| v.rule == "smr-guard-scope" && v.message.contains("`guard`")));
    }

    #[test]
    fn pin_across_await_is_flagged() {
        let s = scan_file(
            "async fn f(h: &H) {\n\
                 let guard = R::pin(h);\n\
                 submit().await;\n\
                 let _ = &guard;\n\
             }\n",
        );
        assert!(s
            .smr
            .violations
            .iter()
            .any(|v| v.rule == "smr-pin-across-await" && v.message.contains("`guard`")));
    }

    #[test]
    fn guard_dropped_before_await_is_clean() {
        let s = scan_file(
            "async fn f(h: &H) {\n\
                 {\n\
                     let guard = R::pin(h);\n\
                     let _ = &guard;\n\
                 }\n\
                 submit().await;\n\
             }\n",
        );
        assert!(s.smr.violations.is_empty(), "{:?}", s.smr.violations);
    }

    #[test]
    fn unvalidated_optimistic_deref_is_flagged() {
        let s = scan_file(
            "fn read(&self) -> u64 {\n\
                 let curr = self.head.load(Ordering::Acquire);\n\
                 unsafe { (*curr).value }\n\
             }\n",
        );
        assert!(s
            .smr
            .violations
            .iter()
            .any(|v| v.rule == "smr-unvalidated-deref" && v.message.contains("`curr`")));
    }

    #[test]
    fn validate_annotation_discharges_optimistic_deref() {
        let s = scan_file(
            "fn read(&self) -> u64 {\n\
                 let curr = self.head.load(Ordering::Acquire);\n\
                 // validate: VAL.list-read: birth stamp re-checked below\n\
                 unsafe { (*curr).value }\n\
             }\n",
        );
        assert!(s.smr.violations.is_empty(), "{:?}", s.smr.violations);
        assert!(s.smr.annotations[0].attached);
    }

    #[test]
    fn unsafe_fn_optimistic_deref_is_callers_problem() {
        let s = scan_file(
            "unsafe fn read(&self) -> u64 {\n\
                 let curr = self.head.load(Ordering::Acquire);\n\
                 unsafe { (*curr).value }\n\
             }\n",
        );
        assert!(s.smr.violations.is_empty(), "{:?}", s.smr.violations);
    }

    #[test]
    fn defer_without_unlink_is_flagged() {
        let s = scan_file("fn f() { R::defer(guard, birth, destroy); }\n");
        assert!(s
            .smr
            .violations
            .iter()
            .any(|v| v.rule == "smr-retire-unlink"));
        assert_eq!(s.smr.defer_sites, 1);
    }

    #[test]
    fn unlink_annotation_discharges_defer() {
        let s = scan_file(
            "fn f() {\n\
                 // unlink: UNLINK.list-del: succ CAS marked+flagged before retire\n\
                 R::defer(guard, birth, destroy);\n\
             }\n",
        );
        assert!(s.smr.violations.is_empty(), "{:?}", s.smr.violations);
    }

    #[test]
    fn fn_defer_definition_is_not_a_site() {
        let s = scan_file("unsafe fn defer(&self, f: F) { self.push(f); }\n");
        assert_eq!(s.smr.defer_sites, 0);
    }

    #[test]
    fn malformed_escape_comment_is_reported() {
        let s = scan_file("// escape: lowercase: nope\nfn f() {}\n");
        assert_eq!(s.smr.annotations.len(), 0);
        assert!(!s.bad_annotations.is_empty());
    }

    #[test]
    fn multiplication_is_not_a_deref() {
        let s = scan_file(
            "fn f(&self) -> u64 {\n\
                 let p = self.head.load(Ordering::Relaxed);\n\
                 p * 2\n\
             }\n",
        );
        assert!(s.smr.violations.is_empty(), "{:?}", s.smr.violations);
        assert_eq!(s.smr.derefs, 0);
    }
}
