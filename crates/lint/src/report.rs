//! Human and machine (`--json`) rendering of an [`Audit`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::audit::Audit;

/// Render the human report.
pub fn human(audit: &Audit) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "lf-lint: {} files, {} atomic sites, {} unsafe items, \
         {} ptr-wrapper fn(s) with {} call site(s)",
        audit.files_scanned,
        audit.sites_total,
        audit.unsafe_total,
        audit.wrapper_fns,
        audit.wrapper_calls
    );
    let _ = writeln!(
        out,
        "lf-lint: SMR dataflow: {} guard binding(s), {} guarded deref(s), \
         {} retire/defer site(s), {} escape/validate/unlink annotation(s)",
        audit.smr_guards, audit.smr_derefs, audit.smr_defer_sites, audit.smr_annotations
    );
    if audit.findings.is_empty() {
        let _ = writeln!(out, "lf-lint: clean — no findings");
        return out;
    }
    let mut by_check: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &audit.findings {
        *by_check.entry(f.check).or_default() += 1;
    }
    let _ = writeln!(out, "lf-lint: {} finding(s)", audit.findings.len());
    for (check, n) in &by_check {
        let _ = writeln!(out, "  {check}: {n}");
    }
    let _ = writeln!(out);
    for f in &audit.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.check, f.message);
    }
    out
}

/// Render the machine report: stable keys, sorted findings, and the
/// per-crate ordering inventory so CI can diff audits across PRs.
pub fn json(audit: &Audit) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"summary\": {{\"files\": {}, \"atomic_sites\": {}, \"unsafe_items\": {}, \
         \"wrapper_fns\": {}, \"wrapper_calls\": {}, \"smr_guards\": {}, \
         \"smr_derefs\": {}, \"smr_defer_sites\": {}, \"smr_annotations\": {}, \
         \"findings\": {}}},",
        audit.files_scanned,
        audit.sites_total,
        audit.unsafe_total,
        audit.wrapper_fns,
        audit.wrapper_calls,
        audit.smr_guards,
        audit.smr_derefs,
        audit.smr_defer_sites,
        audit.smr_annotations,
        audit.findings.len()
    );
    out.push_str("  \"inventory\": {");
    let mut first_crate = true;
    for (krate, combos) in &audit.inventory {
        if !first_crate {
            out.push(',');
        }
        first_crate = false;
        let _ = write!(out, "\n    {}: {{", quote(krate));
        let mut first = true;
        for (combo, n) in combos {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "{}: {n}", quote(combo));
        }
        out.push('}');
    }
    out.push_str("\n  },\n  \"findings\": [");
    let mut first = true;
    for f in &audit.findings {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"check\": {}, \"crate\": {}, \"file\": {}, \"line\": {}, \
             \"message\": {}}}",
            quote(f.check),
            quote(&f.krate),
            quote(&f.file),
            f.line,
            quote(&f.message)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn quote(s: &str) -> String {
    let mut q = String::with_capacity(s.len() + 2);
    q.push('"');
    for c in s.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            '\n' => q.push_str("\\n"),
            '\t' => q.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(q, "\\u{:04x}", c as u32);
            }
            c => q.push(c),
        }
    }
    q.push('"');
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Finding;

    fn sample() -> Audit {
        let mut a = Audit {
            files_scanned: 2,
            sites_total: 5,
            unsafe_total: 1,
            ..Audit::default()
        };
        a.inventory
            .entry("lf-core".into())
            .or_default()
            .insert("Release/Acquire".into(), 3);
        a.findings.push(Finding {
            check: "seqcst",
            krate: "lf-core".into(),
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: "say \"no\"".into(),
        });
        a
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let j = json(&sample());
        assert!(j.contains("\"atomic_sites\": 5"));
        assert!(j.contains("\"Release/Acquire\": 3"));
        assert!(j.contains("say \\\"no\\\""));
    }

    #[test]
    fn human_lists_findings_with_location() {
        let h = human(&sample());
        assert!(h.contains("crates/core/src/x.rs:7: [seqcst]"));
    }

    #[test]
    fn clean_audit_says_clean() {
        let a = Audit::default();
        assert!(human(&a).contains("clean"));
    }
}
