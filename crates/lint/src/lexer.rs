//! A minimal hand-rolled Rust lexer.
//!
//! The workspace is fully offline (no `syn`, no `proc-macro2`), so the
//! auditor tokenizes source text itself. It does not aim to be a full
//! Rust lexer — only to be *sound for auditing*: comments, string/char
//! literals, and raw strings must never be confused with code, line
//! numbers must be exact, and nested block comments must terminate
//! correctly. Everything else (precise float grammar, exotic suffixes)
//! may be approximated.

/// One significant (non-comment, non-whitespace) token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// The token classes the auditor distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, dequoted).
    Ident(String),
    /// Any numeric literal, with its source text (so `0b` prefixes are
    /// recoverable for the tag-arithmetic check).
    Number(String),
    /// String / raw-string / byte-string literal (contents dropped).
    Str,
    /// Character or byte literal.
    Char,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// A comment, kept separate from the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Text with the `//`/`/*` framing stripped, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (> `line` only for multi-line
    /// block comments).
    pub end_line: u32,
    /// `true` for `/* .. */`, `false` for `// ..`.
    pub block: bool,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Never panics; on malformed input it degrades to
/// single-character punctuation tokens rather than guessing structure.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' | b'c' if self.raw_or_byte_literal() => {}
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c => {
                    self.push(TokenKind::Punct(c as char));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        let mut text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        // Doc comments: strip the extra `/` or `!` so `/// # Safety`
        // yields `# Safety`.
        while text.starts_with('/') || text.starts_with('!') {
            text.remove(0);
        }
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            line: self.line,
            end_line: self.line,
            block: false,
        });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let text_start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1u32;
        let mut text_end = self.src.len();
        while self.pos < self.src.len() {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    if depth == 0 {
                        text_end = self.pos;
                        self.pos += 2;
                        break;
                    }
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.src[text_start..text_end.min(self.src.len())]);
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            line: start_line,
            end_line: self.line,
            block: true,
        });
    }

    /// Handle `r"..."`, `r#"..."#`, `r#ident`, `b"..."`, `br#"..."#`,
    /// `b'x'`, `c"..."`. Returns `false` (consuming nothing) when the
    /// leading letter is just an ordinary identifier start.
    fn raw_or_byte_literal(&mut self) -> bool {
        let c0 = self.src[self.pos];
        // br"..." / br#"..."#
        let (prefix_len, allow_hash) = match (c0, self.peek(1)) {
            (b'b', Some(b'r')) => (2, true),
            (b'r', _) => (1, true),
            (b'b', Some(b'\'')) => {
                // Byte char literal b'x' (possibly escaped).
                self.pos += 1; // consume `b`, delegate to char lexer
                self.char_or_lifetime();
                return true;
            }
            (b'b', Some(b'"')) | (b'c', Some(b'"')) => (1, false),
            _ => return false,
        };
        let mut p = self.pos + prefix_len;
        let mut hashes = 0usize;
        if allow_hash {
            while self.src.get(p) == Some(&b'#') {
                hashes += 1;
                p += 1;
            }
        }
        if self.src.get(p) != Some(&b'"') {
            // `r#ident` raw identifier, or plain ident starting with r/b/c.
            if c0 == b'r' && hashes == 1 {
                self.pos += 2; // strip `r#`
                self.ident();
                return true;
            }
            return false;
        }
        // Consume the raw/plain string body up to `"` + hashes.
        p += 1;
        loop {
            match self.src.get(p) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    p += 1;
                }
                Some(b'\\') if hashes == 0 && c0 != b'r' => p += 2, // escapes only in non-raw
                Some(b'"') => {
                    let mut q = p + 1;
                    let mut seen = 0usize;
                    while seen < hashes && self.src.get(q) == Some(&b'#') {
                        seen += 1;
                        q += 1;
                    }
                    if seen == hashes {
                        p = q;
                        break;
                    }
                    p += 1;
                }
                _ => p += 1,
            }
        }
        self.push(TokenKind::Str);
        self.pos = p;
        true
    }

    fn string_literal(&mut self) {
        self.push(TokenKind::Str);
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: consume to closing quote.
            self.push(TokenKind::Char);
            self.pos += 2;
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.pos += if self.src[self.pos] == b'\\' { 2 } else { 1 };
            }
            self.pos += 1;
            return;
        }
        let is_char = matches!((self.peek(1), self.peek(2)), (Some(_), Some(b'\'')));
        if is_char {
            self.push(TokenKind::Char);
            self.pos += 3;
        } else {
            self.push(TokenKind::Lifetime);
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        // Prefixed literals consume alphanumerics/underscores wholesale.
        if self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'b') | Some(b'o') | Some(b'x'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        } else {
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            // Fractional part — but `1..x` is a range, not a float.
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    self.pos += 1;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Number(text));
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn code_in_strings_is_not_tokenized() {
        let l = lex(r#"let s = "unsafe { Ordering::SeqCst }";"#);
        assert!(idents(r#"let s = "unsafe { Ordering::SeqCst }";"#)
            .iter()
            .all(|i| i != "unsafe" && i != "Ordering"));
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let src = r##"let s = r#"has "quotes" and // no comment"#; let x = 1;"##;
        let l = lex(src);
        assert!(l.comments.is_empty());
        assert!(idents(src).contains(&"x".to_string()));
    }

    #[test]
    fn raw_string_spanning_lines_keeps_line_numbers() {
        let src = "let s = r\"line\nline\nline\";\nlet y = 2;";
        let l = lex(src);
        let y = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident("y".into()))
            .unwrap();
        assert_eq!(y.line, 4);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let src = "/* outer /* inner */ still outer */ let z = 3;";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert!(idents(src).contains(&"z".to_string()));
    }

    #[test]
    fn multiline_block_comment_records_span() {
        let src = "/* a\nb\nc */\nlet q = 1;";
        let l = lex(src);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.tokens[0].line, 4);
    }

    #[test]
    fn doc_comment_framing_is_stripped() {
        let l = lex("/// # Safety\n//! inner\nfn f() {}");
        assert_eq!(l.comments[0].text, "# Safety");
        assert_eq!(l.comments[1].text, "inner");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'y' }";
        let l = lex(src);
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let c = '\n'; let d = '\''; let e = 1;");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
        assert!(idents(r"let c = '\n'; let d = '\''; let e = 1;").contains(&"e".to_string()));
    }

    #[test]
    fn binary_literals_keep_text() {
        let l = lex("let m = x & 0b11;");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Number("0b11".into())));
    }

    #[test]
    fn line_comment_text_and_line() {
        let l = lex("let a = 1; // ord: Relaxed — STAT.len: counter\nlet b = 2;");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.starts_with("ord:"));
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn raw_identifiers() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r##"let a = b"bytes"; let b = br#"raw"#; let c = b'x';"##;
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn range_is_not_a_float() {
        let l = lex("for i in 0..10 {}");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Number("0".into())));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Number("10".into())));
    }
}
