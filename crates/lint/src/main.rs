//! CLI: `cargo run -p lf-lint -- --check [--json] [--root PATH]`.

use std::path::PathBuf;
use std::process::ExitCode;

use lf_lint::{report, run_audit, WorkspaceFiles};

const USAGE: &str = "\
lf-lint — atomic-ordering, unsafe-hygiene & SMR-lifetime auditor

Three pillars: memory-ordering annotations cross-checked against
DESIGN.md §9, `SAFETY:` hygiene on unsafe items, and the SMR
guard-lifetime dataflow (guard-scoped derefs, `// escape:` /
`// validate:` / `// unlink:` obligations vs the §9.8 table,
pin-across-await, retire-without-unlink).

USAGE:
    cargo run -p lf-lint -- --check [--json] [--root PATH]

OPTIONS:
    --check        Run the audit; exit 1 if there are findings
    --json         Emit the machine-readable report instead of text
    --root PATH    Workspace root (default: ancestor containing lint-policy.toml)
    --help         Show this help
";

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if !check && !json {
        print!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("lf-lint: no lint-policy.toml found above the current directory");
            return ExitCode::from(2);
        }
    };

    let files = WorkspaceFiles::new(&root);
    match run_audit(&files) {
        Ok(audit) => {
            if json {
                print!("{}", report::json(&audit));
            } else {
                print!("{}", report::human(&audit));
            }
            if check && !audit.findings.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("lf-lint: configuration error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory to the first `lint-policy.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint-policy.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
