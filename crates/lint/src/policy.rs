//! `lint-policy.toml` — per-crate audit policy.
//!
//! The workspace is offline, so this module includes a parser for the
//! small TOML subset the policy file uses: `[section]` headers (dotted
//! keys allowed), `key = "string"`, `key = ["array", "of", "strings"]`,
//! `key = true/false`, and `#` comments.

use std::collections::BTreeMap;

/// How strictly a crate is audited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Hot-path crate: every atomic site must carry an `// ord:`
    /// annotation, `SeqCst` is banned unless the site's invariant id is
    /// in `seqcst_allow`, and `thread::sleep` is banned.
    Hot,
    /// Audited for `SAFETY:` hygiene and tag-bit encapsulation, but
    /// orderings are unconstrained (infrastructure / harness code).
    Support,
    /// Ordering checks skipped entirely (intentionally naive reference
    /// implementations). `SAFETY:` hygiene still applies.
    Exempt,
}

/// Policy for one crate.
#[derive(Debug, Clone)]
pub struct CratePolicy {
    /// How strictly the crate is audited.
    pub class: CrateClass,
    /// Why the crate holds its class (surfaced in reports).
    pub reason: String,
    /// Invariant ids whose sites may use `SeqCst` even in a hot crate.
    pub seqcst_allow: Vec<String>,
    /// Whether raw tag-bit arithmetic (`0b..` masks, MARK/FLAG/TAG
    /// constants under `&`/`|`) is allowed outside comments.
    pub tag_arith: bool,
    /// Whether the SMR guard-lifetime dataflow pass applies. `None`
    /// defers to the class default (on for hot crates); `Some` is an
    /// explicit per-crate override (e.g. `lf-hazard` is support-class
    /// but its retire paths are exactly what the pass audits).
    pub smr: Option<bool>,
}

impl Default for CratePolicy {
    fn default() -> Self {
        CratePolicy {
            class: CrateClass::Support,
            reason: String::new(),
            seqcst_allow: Vec::new(),
            tag_arith: false,
            smr: None,
        }
    }
}

impl CratePolicy {
    /// Effective SMR-audit switch: explicit `smr` key wins, otherwise
    /// hot crates are audited and support/exempt crates are not.
    pub fn smr_audit(&self) -> bool {
        self.smr.unwrap_or(self.class == CrateClass::Hot)
    }
}

/// The whole policy file.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Per-crate policies keyed by crate name.
    pub crates: BTreeMap<String, CratePolicy>,
}

impl Policy {
    /// Look up a crate's policy; unknown crates audit as `Support` with
    /// tag arithmetic denied (safe default for new crates).
    pub fn for_crate(&self, name: &str) -> CratePolicy {
        self.crates.get(name).cloned().unwrap_or_default()
    }

    /// Parse the policy file.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending line for
    /// syntax errors or unknown classes.
    pub fn parse(text: &str) -> Result<Policy, String> {
        let raw = parse_toml(text)?;
        let mut policy = Policy::default();
        for (section, entries) in raw {
            let Some(crate_name) = section.strip_prefix("crates.") else {
                return Err(format!("unknown policy section [{section}]"));
            };
            let mut cp = CratePolicy::default();
            for (key, value) in entries {
                match (key.as_str(), value) {
                    ("class", Value::Str(s)) => {
                        cp.class = match s.as_str() {
                            "hot" => CrateClass::Hot,
                            "support" => CrateClass::Support,
                            "exempt" => CrateClass::Exempt,
                            other => {
                                return Err(format!(
                                    "crate {crate_name}: unknown class {other:?} \
                                     (expected hot | support | exempt)"
                                ))
                            }
                        };
                    }
                    ("reason", Value::Str(s)) => cp.reason = s,
                    ("seqcst_allow", Value::Array(items)) => cp.seqcst_allow = items,
                    ("tag_arith", Value::Bool(b)) => cp.tag_arith = b,
                    ("smr", Value::Bool(b)) => cp.smr = Some(b),
                    (other, _) => return Err(format!("crate {crate_name}: unknown key {other:?}")),
                }
            }
            if cp.class == CrateClass::Exempt && cp.reason.is_empty() {
                return Err(format!(
                    "crate {crate_name}: exempt crates must state a reason"
                ));
            }
            policy.crates.insert(crate_name.to_string(), cp);
        }
        Ok(policy)
    }
}

enum Value {
    Str(String),
    Array(Vec<String>),
    Bool(bool),
}

type RawToml = Vec<(String, Vec<(String, Value)>)>;

fn parse_toml(text: &str) -> Result<RawToml, String> {
    let mut out: RawToml = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("lint-policy.toml:{}: {msg}", idx + 1);
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            out.push((name.trim().to_string(), Vec::new()));
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`"))?;
        let value = parse_value(value.trim()).map_err(|m| err(&m))?;
        out.last_mut()
            .ok_or_else(|| err("key outside any [section]"))?
            .1
            .push((key.trim().to_string(), value));
    }
    Ok(out)
}

/// Drop a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) {
        return Ok(Value::Str(s.to_string()));
    }
    if let Some(body) = v.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match item.strip_prefix('"').and_then(|i| i.strip_suffix('"')) {
                Some(s) => items.push(s.to_string()),
                None => return Err(format!("array items must be strings, got {item:?}")),
            }
        }
        return Ok(Value::Array(items));
    }
    Err(format!("unsupported value {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[crates.lf-core]
class = "hot"

[crates.lf-reclaim]
class = "hot"
seqcst_allow = ["EPOCH.pin", "EPOCH.advance"] # total-order race

[crates.lf-baselines]
class = "exempt"
reason = "intentionally naive"
tag_arith = true
"#;

    #[test]
    fn parses_classes_and_allowlists() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.for_crate("lf-core").class, CrateClass::Hot);
        assert_eq!(
            p.for_crate("lf-reclaim").seqcst_allow,
            vec!["EPOCH.pin".to_string(), "EPOCH.advance".to_string()]
        );
        let b = p.for_crate("lf-baselines");
        assert_eq!(b.class, CrateClass::Exempt);
        assert!(b.tag_arith);
    }

    #[test]
    fn unknown_crate_defaults_to_support() {
        let p = Policy::parse(SAMPLE).unwrap();
        assert_eq!(p.for_crate("brand-new").class, CrateClass::Support);
        assert!(!p.for_crate("brand-new").tag_arith);
    }

    #[test]
    fn exempt_without_reason_is_rejected() {
        let bad = "[crates.x]\nclass = \"exempt\"\n";
        assert!(Policy::parse(bad).is_err());
    }

    #[test]
    fn unknown_class_is_rejected() {
        let bad = "[crates.x]\nclass = \"warm\"\n";
        assert!(Policy::parse(bad).unwrap_err().contains("warm"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let p =
            Policy::parse("[crates.x]\nclass = \"exempt\"\nreason = \"uses # freely\"\n").unwrap();
        assert_eq!(p.for_crate("x").reason, "uses # freely");
    }
}
