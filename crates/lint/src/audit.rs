//! Workspace audit: crate discovery, file walking, policy application,
//! and the DESIGN.md cross-check.
//!
//! All file contents can be overridden in memory (`overrides` maps
//! workspace-relative paths to replacement text), which is how the
//! drift self-tests perturb a file without touching the checkout.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::analyze::{scan_file, scan_file_with, BannedKind, FileScan};
use crate::design::{parse_design, parse_obligations};
use crate::policy::{CrateClass, Policy};

/// One reported problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable machine id of the check (`missing-annotation`, `seqcst`,
    /// `missing-safety`, `design-drift`, ...).
    pub check: &'static str,
    /// Crate the finding belongs to.
    pub krate: String,
    /// Workspace-relative path (DESIGN.md drift reports anchor there).
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Audit results: findings plus the atomic-site inventory.
#[derive(Debug, Default)]
pub struct Audit {
    /// Everything the checks flagged, in path order.
    pub findings: Vec<Finding>,
    /// crate -> ordering combination (e.g. `Release/Acquire`) -> count.
    pub inventory: BTreeMap<String, BTreeMap<String, usize>>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total atomic sites inventoried.
    pub sites_total: usize,
    /// Total `unsafe` items seen.
    pub unsafe_total: usize,
    /// Pointer-returning atomic wrapper fns discovered (registry size).
    pub wrapper_fns: usize,
    /// Call sites of those wrappers, across all crate classes.
    pub wrapper_calls: usize,
    /// Guard/pin bindings seen by the SMR pass (audited crates only).
    pub smr_guards: usize,
    /// Deref events of guard-derived pointers the SMR pass checked.
    pub smr_derefs: usize,
    /// `retire`/`defer` call sites checked for `// unlink:` pairing.
    pub smr_defer_sites: usize,
    /// `// escape:` / `// validate:` / `// unlink:` annotations seen.
    pub smr_annotations: usize,
}

/// In-memory view of the workspace with optional content overrides.
pub struct WorkspaceFiles {
    root: PathBuf,
    overrides: BTreeMap<String, String>,
}

impl WorkspaceFiles {
    /// View the workspace rooted at `root` with no overrides.
    pub fn new(root: &Path) -> Self {
        WorkspaceFiles {
            root: root.to_path_buf(),
            overrides: BTreeMap::new(),
        }
    }

    /// Replace `rel_path`'s content for this audit only.
    pub fn override_file(&mut self, rel_path: &str, content: String) {
        self.overrides.insert(rel_path.to_string(), content);
    }

    fn read(&self, rel_path: &str) -> std::io::Result<String> {
        if let Some(text) = self.overrides.get(rel_path) {
            return Ok(text.clone());
        }
        fs::read_to_string(self.root.join(rel_path))
    }
}

/// A crate to scan: its package name and src root (workspace-relative).
#[derive(Debug, Clone)]
struct CrateDir {
    name: String,
    src: String,
}

/// Run the full audit.
///
/// # Errors
///
/// Returns a message if the policy file, DESIGN.md, or workspace layout
/// cannot be read/parsed — configuration problems, as opposed to
/// findings, which are reported in the [`Audit`].
pub fn run_audit(files: &WorkspaceFiles) -> Result<Audit, String> {
    let policy_text = files
        .read("lint-policy.toml")
        .map_err(|e| format!("cannot read lint-policy.toml: {e}"))?;
    let policy = Policy::parse(&policy_text)?;
    let design_text = files
        .read("DESIGN.md")
        .map_err(|e| format!("cannot read DESIGN.md: {e}"))?;
    let design_rows = parse_design(&design_text);
    if design_rows.is_empty() {
        return Err("DESIGN.md §9 contains no ordering-table rows — \
                    the drift check would be vacuous"
            .into());
    }
    // §9.8 SMR-obligations table. An empty table is not a config
    // error: any attached SMR annotation then flags obligation-drift,
    // which is exactly the bidirectional discipline working.
    let obligations = parse_obligations(&design_text);

    let crates = discover_crates(files)?;
    let mut audit = Audit::default();
    let mut sources: Vec<(String, String, String)> = Vec::new(); // (crate, file, text)
    let mut test_files: BTreeSet<String> = BTreeSet::new();

    for krate in &crates {
        let mut rs_files = Vec::new();
        walk_rs_files(&files.root.join(&krate.src), &mut rs_files);
        rs_files.sort();
        for abs in rs_files {
            let rel = abs
                .strip_prefix(&files.root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            if is_test_path(&rel) {
                continue;
            }
            let text = files
                .read(&rel)
                .map_err(|e| format!("cannot read {rel}: {e}"))?;
            sources.push((krate.name.clone(), rel, text));
        }
    }

    // Pass 1: scan every file to learn the test-submodule set and the
    // pointer-returning wrapper fns. The wrapper registry is
    // crate-scoped (name -> orderings hidden inside): the wrappers
    // this workspace grows are `pub(crate)` helpers, and cross-crate
    // name resolution would collide with unrelated fns.
    let mut pass1: Vec<FileScan> = Vec::new();
    for (_, rel, text) in &sources {
        let scan = scan_file(text);
        let dir = rel.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
        for sub in &scan.test_submodules {
            test_files.insert(format!("{dir}/{sub}"));
        }
        pass1.push(scan);
    }
    let mut registry: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    for (scan, (krate, rel, _)) in pass1.iter().zip(&sources) {
        if test_files.contains(rel) {
            continue;
        }
        for w in &scan.wrappers {
            let entry = registry
                .entry(krate.clone())
                .or_default()
                .entry(w.name.clone())
                .or_default();
            for o in &w.orderings {
                if !entry.contains(o) {
                    entry.push(o.clone());
                }
            }
        }
    }

    // Pass 2, run to a fixpoint: re-scan with each crate's wrapper
    // names so call sites are collected and their annotations
    // attached. A sweep may expose *delegating* wrappers —
    // pointer-returning fns whose bodies call a registered wrapper —
    // which join the registry with the union of their callees'
    // orderings, and the sweep repeats so the delegators' own call
    // sites are audited too (`outer -> mid -> try_flag` is caught at
    // `outer`). The registry only ever grows, so this terminates.
    // Crates with no wrappers keep their pass-1 scan.
    let mut scans: Vec<(String, String, FileScan)> = pass1
        .into_iter()
        .zip(&sources)
        .map(|(scan, (krate, rel, _))| (krate.clone(), rel.clone(), scan))
        .collect();
    loop {
        for (i, (krate, rel, text)) in sources.iter().enumerate() {
            let names: BTreeSet<String> = registry
                .get(krate)
                .map(|m| m.keys().cloned().collect())
                .unwrap_or_default();
            if !names.is_empty() {
                scans[i] = (krate.clone(), rel.clone(), scan_file_with(text, &names));
            }
        }
        let mut grew = false;
        for (krate, rel, scan) in &scans {
            if test_files.contains(rel) {
                continue;
            }
            for d in &scan.delegating {
                let crate_reg = registry.entry(krate.clone()).or_default();
                let inherited: Vec<String> = d
                    .callees
                    .iter()
                    .flat_map(|c| crate_reg.get(c).cloned().unwrap_or_default())
                    .collect();
                let entry = crate_reg.entry(d.name.clone()).or_default();
                for o in inherited {
                    if !entry.contains(&o) {
                        entry.push(o);
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    audit.wrapper_fns = registry.values().map(|m| m.len()).sum();

    let mut attached_ids: BTreeSet<String> = BTreeSet::new();
    let mut smr_attached_ids: BTreeSet<String> = BTreeSet::new();
    for (krate, file, scan) in &scans {
        if test_files.contains(file) {
            continue;
        }
        audit.files_scanned += 1;
        let cp = policy.for_crate(krate);
        let push = |audit: &mut Audit, check, line, message: String| {
            audit.findings.push(Finding {
                check,
                krate: krate.clone(),
                file: file.clone(),
                line,
                message,
            });
        };

        for bad in &scan.bad_annotations {
            push(
                &mut audit,
                "bad-annotation",
                bad.line,
                format!("malformed `// ord:` comment: {}", bad.message),
            );
        }

        for site in &scan.sites {
            audit.sites_total += 1;
            let combo = site.orderings.join("/");
            *audit
                .inventory
                .entry(krate.clone())
                .or_default()
                .entry(combo.clone())
                .or_default() += 1;

            if cp.class == CrateClass::Exempt {
                continue;
            }
            let ann = site.annotation.map(|ai| &scan.annotations[ai]);
            if cp.class == CrateClass::Hot {
                match ann {
                    None => push(
                        &mut audit,
                        "missing-annotation",
                        site.line,
                        format!(
                            "atomic `{}` ({}) in hot crate has no `// ord:` annotation",
                            site.method, combo
                        ),
                    ),
                    Some(a) => {
                        for o in &site.orderings {
                            if !a.orderings.contains(o) {
                                push(
                                    &mut audit,
                                    "annotation-mismatch",
                                    site.line,
                                    format!(
                                        "code uses Ordering::{o} but the `// ord:` comment \
                                         ({}, id {}) does not list it",
                                        a.orderings.join("/"),
                                        a.id
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            if site.orderings.iter().any(|o| o == "SeqCst") {
                let allowed = match cp.class {
                    CrateClass::Hot => ann
                        .map(|a| cp.seqcst_allow.contains(&a.id))
                        .unwrap_or(false),
                    CrateClass::Support | CrateClass::Exempt => true,
                };
                if !allowed {
                    push(
                        &mut audit,
                        "seqcst",
                        site.line,
                        format!(
                            "SeqCst on `{}` in hot crate {krate} is not covered by the \
                             policy allowlist (annotate with an id from `seqcst_allow` \
                             or downgrade)",
                            site.method
                        ),
                    );
                }
            }
        }

        for call in &scan.wrapper_calls {
            audit.wrapper_calls += 1;
            if cp.class != CrateClass::Hot {
                continue;
            }
            let hidden: Vec<String> = registry
                .get(krate)
                .and_then(|m| m.get(&call.callee))
                .cloned()
                .unwrap_or_default();
            match call.annotation.map(|ai| &scan.annotations[ai]) {
                None => push(
                    &mut audit,
                    "wrapper-unannotated",
                    call.line,
                    format!(
                        "call to pointer-returning atomic wrapper `{}` ({}) in hot \
                         crate has no `// ord:` annotation — the wrapper hides the \
                         ordering from this call site",
                        call.callee,
                        hidden.join("/")
                    ),
                ),
                Some(a) => {
                    for o in &hidden {
                        if !a.orderings.contains(o) {
                            push(
                                &mut audit,
                                "annotation-mismatch",
                                call.line,
                                format!(
                                    "wrapper `{}` performs a {o} atomic inside, but \
                                     the `// ord:` comment ({}, id {}) does not list \
                                     it",
                                    call.callee,
                                    a.orderings.join("/"),
                                    a.id
                                ),
                            );
                        }
                    }
                }
            }
        }

        for ann in &scan.annotations {
            if ann.attached {
                attached_ids.insert(ann.id.clone());
                match design_rows.iter().find(|r| r.id == ann.id) {
                    None => push(
                        &mut audit,
                        "design-drift",
                        ann.line,
                        format!(
                            "annotation id `{}` has no row in the DESIGN.md §9 \
                             ordering tables",
                            ann.id
                        ),
                    ),
                    Some(row) => {
                        for o in &ann.orderings {
                            if !row.orderings.contains(o) {
                                push(
                                    &mut audit,
                                    "design-drift",
                                    ann.line,
                                    format!(
                                        "annotation `{}` claims {o} but DESIGN.md row \
                                         `{}` (line {}) only licenses {}",
                                        ann.id,
                                        row.id,
                                        row.line,
                                        row.orderings.join("/")
                                    ),
                                );
                            }
                        }
                    }
                }
            } else {
                push(
                    &mut audit,
                    "dangling-annotation",
                    ann.line,
                    format!(
                        "`// ord:` comment (id {}) is not attached to any atomic \
                         operation — stale after a refactor?",
                        ann.id
                    ),
                );
            }
        }

        for u in &scan.unsafes {
            audit.unsafe_total += 1;
            if !u.documented {
                push(
                    &mut audit,
                    "missing-safety",
                    u.line,
                    format!("{} without a `// SAFETY:` comment", u.kind),
                );
            }
        }

        // SMR guard-lifetime / pointer-escape pass (pillar three).
        if cp.smr_audit() {
            audit.smr_guards += scan.smr.guards;
            audit.smr_derefs += scan.smr.derefs;
            audit.smr_defer_sites += scan.smr.defer_sites;
            for v in &scan.smr.violations {
                push(&mut audit, v.rule, v.line, v.message.clone());
            }
            for ann in &scan.smr.annotations {
                audit.smr_annotations += 1;
                if ann.attached {
                    smr_attached_ids.insert(ann.id.clone());
                    match obligations.iter().find(|o| o.id == ann.id) {
                        None => push(
                            &mut audit,
                            "obligation-drift",
                            ann.line,
                            format!(
                                "annotation `// {}:` id `{}` has no row in the DESIGN.md \
                                 §9.8 SMR-obligations table",
                                ann.kind.as_str(),
                                ann.id
                            ),
                        ),
                        Some(row) if row.kind != ann.kind => push(
                            &mut audit,
                            "obligation-drift",
                            ann.line,
                            format!(
                                "annotation `// {}:` id `{}` is registered in DESIGN.md \
                                 §9.8 (line {}) as kind `{}` — kinds must match",
                                ann.kind.as_str(),
                                ann.id,
                                row.line,
                                row.kind.as_str()
                            ),
                        ),
                        Some(_) => {}
                    }
                } else {
                    push(
                        &mut audit,
                        "dangling-annotation",
                        ann.line,
                        format!(
                            "`// {}:` comment (id {}) is not attached to any {} site — \
                             stale after a refactor?",
                            ann.kind.as_str(),
                            ann.id,
                            match ann.kind {
                                crate::dataflow::SmrKind::Escape => "escape",
                                crate::dataflow::SmrKind::Validate => "guard-free deref",
                                crate::dataflow::SmrKind::Unlink => "retire/defer",
                            }
                        ),
                    );
                }
            }
        }

        for b in &scan.banned {
            match b.what {
                BannedKind::Sleep if cp.class == CrateClass::Hot => push(
                    &mut audit,
                    "sleep",
                    b.line,
                    "thread::sleep in a hot-path crate (use Backoff / yield)".to_string(),
                ),
                BannedKind::TagArith if !cp.tag_arith => push(
                    &mut audit,
                    "tag-arith",
                    b.line,
                    "raw tag-bit arithmetic outside lf-tagged (use TaggedPtr \
                     accessors)"
                        .to_string(),
                ),
                _ => {}
            }
        }
    }

    // Reverse direction: every DESIGN row must be witnessed by at least
    // one attached annotation somewhere in the workspace.
    for row in &design_rows {
        if !attached_ids.contains(&row.id) {
            audit.findings.push(Finding {
                check: "design-drift",
                krate: String::new(),
                file: "DESIGN.md".to_string(),
                line: row.line,
                message: format!(
                    "ordering-table row `{}` matches no `// ord:` annotation in the \
                     code — table and code have drifted",
                    row.id
                ),
            });
        }
    }
    // Same discipline for the §9.8 SMR-obligations table.
    for row in &obligations {
        if !smr_attached_ids.contains(&row.id) {
            audit.findings.push(Finding {
                check: "obligation-drift",
                krate: String::new(),
                file: "DESIGN.md".to_string(),
                line: row.line,
                message: format!(
                    "SMR-obligations row `{}` matches no attached `// {}:` annotation \
                     in the code — table and code have drifted",
                    row.id,
                    row.kind.as_str()
                ),
            });
        }
    }

    audit.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check).cmp(&(b.file.as_str(), b.line, b.check))
    });
    Ok(audit)
}

/// `crates/*/src` plus the root package's `src/`.
fn discover_crates(files: &WorkspaceFiles) -> Result<Vec<CrateDir>, String> {
    let mut out = Vec::new();
    let root_manifest = files
        .read("Cargo.toml")
        .map_err(|e| format!("cannot read Cargo.toml: {e}"))?;
    if let Some(name) = manifest_package_name(&root_manifest) {
        out.push(CrateDir {
            name,
            src: "src".to_string(),
        });
    }
    let crates_dir = files.root.join("crates");
    let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read crates/: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for dir in entries {
        if !dir.is_dir() {
            continue;
        }
        let rel_manifest = format!(
            "crates/{}/Cargo.toml",
            dir.file_name().unwrap_or_default().to_string_lossy()
        );
        let Ok(manifest) = files.read(&rel_manifest) else {
            continue;
        };
        if let Some(name) = manifest_package_name(&manifest) {
            out.push(CrateDir {
                name,
                src: format!(
                    "crates/{}/src",
                    dir.file_name().unwrap_or_default().to_string_lossy()
                ),
            });
        }
    }
    Ok(out)
}

fn manifest_package_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let v = value.trim().trim_matches('"');
                if !v.is_empty() {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Paths excluded wholesale: integration tests, benches, and files
/// conventionally named `tests.rs`.
fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.ends_with("/tests.rs")
        || rel == "tests.rs"
}
