//! `lf-lint` — the workspace's static-analysis auditor.
//!
//! Keeps the lock-free hot paths honest on three fronts:
//!
//! 1. **Atomic-ordering annotations.** Every atomic operation in a
//!    *hot* crate must carry a machine-readable comment
//!    `// ord: <Ordering>[/<Ordering>] — <invariant-id>: <rationale>`
//!    whose orderings match the code tokens, and whose invariant id is
//!    a row of the DESIGN.md §9 ordering tables. Drift in either
//!    direction (a table row no code witnesses, or an annotation the
//!    table does not license) fails the audit. This covers standalone
//!    `fence(..)` / `compiler_fence(..)` calls, and *pointer-returning
//!    atomic wrappers*: a fn that returns a raw pointer and performs
//!    an atomic op in its body hides the `Ordering` from its callers,
//!    so its call sites (crate-scoped, one wrapping level deep) must
//!    carry the same annotations as direct atomic sites.
//! 2. **`unsafe` hygiene.** Every `unsafe` block/fn/impl/trait in the
//!    workspace needs a `// SAFETY:` comment (or a `# Safety` doc
//!    section).
//! 3. **Banned patterns.** `SeqCst` outside the policy allowlist,
//!    `thread::sleep` in hot crates, and raw tag-bit arithmetic outside
//!    `lf-tagged`.
//! 4. **SMR lifetimes.** An intra-procedural dataflow pass (see
//!    [`dataflow`]) tracks raw pointers derived from guarded atomic
//!    loads and enforces the reclamation obligations of all three
//!    `Reclaim` backends: derefs stay inside their guard's lexical
//!    scope, escapes carry `// escape:` annotations cross-checked
//!    bidirectionally against the DESIGN.md §9.8 obligations table,
//!    no guard is live across an `.await`, pin-free optimistic derefs
//!    carry `// validate:` stamp-revalidation annotations, and every
//!    `retire`/`defer` call site carries an `// unlink:` annotation.
//!
//! Per-crate strictness lives in `lint-policy.toml` at the workspace
//! root. The workspace is offline, so everything here — lexer, TOML
//! subset, markdown table parser — is hand-rolled with no dependencies.

pub mod analyze;
pub mod audit;
pub mod dataflow;
pub mod design;
pub mod lexer;
pub mod policy;
pub mod report;

pub use audit::{run_audit, Audit, Finding, WorkspaceFiles};
pub use policy::{CrateClass, CratePolicy, Policy};
