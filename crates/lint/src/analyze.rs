//! Per-file analysis: atomic-operation inventory, `// ord:` annotation
//! attachment, `unsafe` hygiene, and banned-pattern detection.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::SmrScan;
use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// Atomic methods whose `Ordering` arguments the auditor inventories.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Standalone fence functions audited like atomic sites: they take a
/// literal `Ordering` and order surrounding accesses without touching
/// a location, so hot crates must annotate them the same way.
const FENCE_FNS: &[&str] = &["fence", "compiler_fence"];

/// The five memory orderings.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic operation with at least one literal `Ordering::` argument.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// 1-based source line of the atomic call.
    pub line: u32,
    /// Method name (`load`, `store`, `compare_exchange`, ...).
    pub method: String,
    /// Ordering tokens in argument order (1 for load/store, 2 for CAS).
    pub orderings: Vec<String>,
    /// Index into [`FileScan::annotations`] of the attached annotation.
    pub annotation: Option<usize>,
}

/// A parsed `// ord: <Orderings> — <id>: <rationale>` comment.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// 1-based source line of the comment.
    pub line: u32,
    /// Orderings the annotation licenses.
    pub orderings: Vec<String>,
    /// Invariant id (`FAMILY.site`).
    pub id: String,
    /// Free-text rationale after the id.
    pub rationale: String,
    /// Set during attachment; unattached annotations are drift.
    pub attached: bool,
}

/// An `unsafe` block / fn / impl / trait and whether it carries a
/// `SAFETY:` (or `# Safety` doc) comment.
#[derive(Debug, Clone)]
pub struct UnsafeItem {
    /// 1-based source line of the `unsafe` keyword.
    pub line: u32,
    /// `"unsafe block"`, `"unsafe fn"`, `"unsafe impl"`, or
    /// `"unsafe trait"`.
    pub kind: &'static str,
    /// Whether a `SAFETY:` / `# Safety` comment covers it.
    pub documented: bool,
}

/// A banned-pattern occurrence, independent of policy (the audit layer
/// decides whether the crate is allowed to do this).
#[derive(Debug, Clone)]
pub struct BannedUse {
    /// 1-based source line of the occurrence.
    pub line: u32,
    /// Which banned pattern was seen.
    pub what: BannedKind,
}

/// The kinds of banned patterns the scanner recognizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BannedKind {
    /// `thread::sleep` (or any `::sleep(` path call).
    Sleep,
    /// Raw tag-bit arithmetic: binary literal or MARK/FLAG/TAG constant
    /// adjacent to `&`, `|`, or `!`.
    TagArith,
}

/// A fn that returns a raw pointer and performs an atomic operation in
/// its body — a "wrapper" that hands its callers a dereferenceable
/// pointer while keeping the `Ordering` out of the call site. Call
/// sites of such fns are audited like atomic sites (the wrapper's
/// orderings are what the call inherits). Detection follows
/// delegation: a pointer-returning helper that merely *calls* a known
/// wrapper is itself a wrapper (see [`DelegatingFn`]) — the audit
/// layer closes the registry over such chains to a fixpoint, so
/// `outer -> mid -> try_flag` is audited at `outer`'s call sites too.
#[derive(Debug, Clone)]
pub struct WrapperFn {
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// The fn's name (wrapper resolution is name-based, crate-scoped).
    pub name: String,
    /// Union of the orderings used by the atomic sites in the body.
    pub orderings: Vec<String>,
}

/// A pointer-returning fn whose body calls one or more *registered*
/// wrappers without performing a (new) atomic operation of its own —
/// the multi-level case. It inherits the union of its callees'
/// orderings; the audit layer promotes it into the wrapper registry
/// and re-scans until no new delegators appear.
#[derive(Debug, Clone)]
pub struct DelegatingFn {
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// The fn's name (registry resolution is name-based, crate-scoped).
    pub name: String,
    /// Names of the registered wrappers its body calls (deduped).
    pub callees: Vec<String>,
}

/// A call site of a known [`WrapperFn`] (the caller passes the
/// registry of names to [`scan_file_with`]).
#[derive(Debug, Clone)]
pub struct WrapperCall {
    /// 1-based source line of the call.
    pub line: u32,
    /// Name of the wrapper being called.
    pub callee: String,
    /// Index into [`FileScan::annotations`] of the attached annotation.
    pub annotation: Option<usize>,
}

/// A malformed `// ord:` comment (wrong grammar / unknown ordering).
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    /// 1-based source line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Everything the auditor learned about one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Atomic operations with literal `Ordering::` arguments.
    pub sites: Vec<AtomicSite>,
    /// Parsed `// ord:` annotations.
    pub annotations: Vec<Annotation>,
    /// `unsafe` blocks / fns / impls / traits.
    pub unsafes: Vec<UnsafeItem>,
    /// Banned-pattern occurrences (policy decides if they matter).
    pub banned: Vec<BannedUse>,
    /// Malformed `// ord:` comments.
    pub bad_annotations: Vec<BadAnnotation>,
    /// Pointer-returning fns with atomic bodies (wrapper candidates).
    pub wrappers: Vec<WrapperFn>,
    /// Call sites of registry wrappers (only with [`scan_file_with`]).
    pub wrapper_calls: Vec<WrapperCall>,
    /// Pointer-returning fns that delegate to registry wrappers (only
    /// with [`scan_file_with`]; drives the audit's registry fixpoint).
    pub delegating: Vec<DelegatingFn>,
    /// Submodule files declared under `#[cfg(test)] mod name;` —
    /// relative names (`name.rs`, `name/mod.rs`) to exclude.
    pub test_submodules: Vec<String>,
    /// SMR guard-lifetime / pointer-escape dataflow results (pillar
    /// three; see [`crate::dataflow`]).
    pub smr: SmrScan,
}

/// Scan one file's source text.
pub fn scan_file(src: &str) -> FileScan {
    scan_file_with(src, &BTreeSet::new())
}

/// Scan with a registry of wrapper-fn names whose call sites should be
/// collected and annotation-checked (see [`WrapperFn`]). The registry
/// is crate-scoped by the audit layer: the wrappers this workspace
/// grows are `pub(crate)` helpers, and name-based resolution across
/// crates would collide with unrelated fns in the baselines.
pub fn scan_file_with(src: &str, wrapper_names: &BTreeSet<String>) -> FileScan {
    let lexed = lex(src);
    Scanner::new(&lexed, wrapper_names).run()
}

pub(crate) struct Scanner<'a> {
    pub(crate) toks: &'a [Token],
    pub(crate) comments: &'a [Comment],
    /// Wrapper-fn names whose call sites this scan collects.
    pub(crate) wrapper_names: &'a BTreeSet<String>,
    /// Token index of each collected site's method/fence ident
    /// (parallel to `out.sites`; used for wrapper-body membership).
    pub(crate) site_tok_indices: Vec<usize>,
    /// Token index of each collected wrapper call's callee ident
    /// (parallel to `out.wrapper_calls`; used for delegation-body
    /// membership).
    pub(crate) wrapper_call_tok_indices: Vec<usize>,
    /// Every pointer-returning fn with a body, regardless of whether
    /// it contains atomic sites: (name, line, body `{` tok, body `}`
    /// tok). Delegation detection re-checks these against the wrapper
    /// calls collected later.
    ptr_fn_spans: Vec<(String, u32, usize, usize)>,
    /// Token-index ranges excluded as test-only code.
    excluded: Vec<(usize, usize)>,
    /// Token-index ranges covered by `#[...]` / `#![...]` attributes.
    attr_spans: Vec<(usize, usize)>,
    /// Lines with at least one token outside attribute spans.
    code_lines: BTreeSet<u32>,
    /// Lines whose tokens are all within attribute spans.
    attr_lines: BTreeSet<u32>,
    /// line -> indices of comments ending on that line.
    pub(crate) comments_ending: BTreeMap<u32, Vec<usize>>,
    /// Lines covered by any comment.
    comment_lines: BTreeSet<u32>,
    pub(crate) out: FileScan,
}

impl<'a> Scanner<'a> {
    fn new(lexed: &'a Lexed, wrapper_names: &'a BTreeSet<String>) -> Self {
        let mut s = Scanner {
            toks: &lexed.tokens,
            comments: &lexed.comments,
            wrapper_names,
            site_tok_indices: Vec::new(),
            wrapper_call_tok_indices: Vec::new(),
            ptr_fn_spans: Vec::new(),
            excluded: Vec::new(),
            attr_spans: Vec::new(),
            code_lines: BTreeSet::new(),
            attr_lines: BTreeSet::new(),
            comments_ending: BTreeMap::new(),
            comment_lines: BTreeSet::new(),
            out: FileScan::default(),
        };
        s.index_attributes_and_tests();
        s.index_lines();
        s
    }

    fn run(mut self) -> FileScan {
        self.collect_annotations();
        self.collect_atomic_sites();
        self.collect_wrappers();
        self.collect_wrapper_calls();
        self.collect_delegating();
        self.collect_unsafe();
        self.collect_banned();
        // Last: the SMR dataflow needs the wrapper call sites above.
        self.collect_smr();
        self.out
    }

    pub(crate) fn ident_at(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn punct_at(&self, i: usize) -> Option<char> {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    pub(crate) fn is_excluded(&self, tok_idx: usize) -> bool {
        self.excluded
            .iter()
            .any(|&(a, b)| tok_idx >= a && tok_idx <= b)
    }

    /// Find `#[..]` / `#![..]` spans; mark `#[cfg(test)] item` regions
    /// excluded and record `#[cfg(test)] mod x;` submodule files.
    fn index_attributes_and_tests(&mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            if self.punct_at(i) != Some('#') {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if self.punct_at(j) == Some('!') {
                j += 1;
            }
            if self.punct_at(j) != Some('[') {
                i += 1;
                continue;
            }
            // Balance brackets to the attribute's end.
            let mut depth = 0i32;
            let mut end = j;
            while end < self.toks.len() {
                match self.punct_at(end) {
                    Some('[') => depth += 1,
                    Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            self.attr_spans.push((i, end));
            let body: Vec<&str> = (j..=end).filter_map(|k| self.ident_at(k)).collect();
            let is_test =
                (body.contains(&"cfg") && body.contains(&"test") && !body.contains(&"not"))
                    || body == ["test"];
            if is_test {
                self.exclude_item_after(i, end + 1);
            }
            i = end + 1;
        }
    }

    /// Exclude the item following a test attribute: skip further
    /// attributes, then either a `mod name;` declaration (recorded as a
    /// test submodule file) or a braced/`;`-terminated item.
    fn exclude_item_after(&mut self, attr_start: usize, mut i: usize) {
        // Skip any further attributes on the same item.
        while self.punct_at(i) == Some('#') {
            let mut j = i + 1;
            if self.punct_at(j) == Some('!') {
                j += 1;
            }
            if self.punct_at(j) != Some('[') {
                break;
            }
            let mut depth = 0i32;
            while j < self.toks.len() {
                match self.punct_at(j) {
                    Some('[') => depth += 1,
                    Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
        }
        if self.ident_at(i) == Some("mod") {
            if let Some(name) = self.ident_at(i + 1).map(str::to_owned) {
                if self.punct_at(i + 2) == Some(';') {
                    self.out.test_submodules.push(format!("{name}.rs"));
                    self.out.test_submodules.push(format!("{name}/mod.rs"));
                    self.excluded.push((attr_start, i + 2));
                    return;
                }
            }
        }
        // Scan to the item's body `{` (at zero paren/bracket depth) or a
        // terminating `;`, then balance braces.
        let mut depth = 0i32;
        let mut k = i;
        while k < self.toks.len() {
            match self.punct_at(k) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some(';') if depth == 0 => {
                    self.excluded.push((attr_start, k));
                    return;
                }
                Some('{') if depth == 0 => {
                    let mut braces = 0i32;
                    while k < self.toks.len() {
                        match self.punct_at(k) {
                            Some('{') => braces += 1,
                            Some('}') => {
                                braces -= 1;
                                if braces == 0 {
                                    self.excluded.push((attr_start, k));
                                    return;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        self.excluded
            .push((attr_start, self.toks.len().saturating_sub(1)));
    }

    fn index_lines(&mut self) {
        let in_attr = |idx: usize| self.attr_spans.iter().any(|&(a, b)| idx >= a && idx <= b);
        let mut line_has_code: BTreeMap<u32, bool> = BTreeMap::new();
        for (idx, tok) in self.toks.iter().enumerate() {
            let e = line_has_code.entry(tok.line).or_insert(false);
            if !in_attr(idx) {
                *e = true;
            }
        }
        for (line, has_code) in line_has_code {
            if has_code {
                self.code_lines.insert(line);
            } else {
                self.attr_lines.insert(line);
            }
        }
        for (ci, c) in self.comments.iter().enumerate() {
            self.comments_ending.entry(c.end_line).or_default().push(ci);
            for l in c.line..=c.end_line {
                self.comment_lines.insert(l);
            }
        }
    }

    fn collect_annotations(&mut self) {
        for c in self.comments {
            let Some(rest) = c.text.strip_prefix("ord:") else {
                continue;
            };
            match parse_annotation(rest.trim()) {
                Ok((orderings, id, rationale)) => self.out.annotations.push(Annotation {
                    line: c.end_line,
                    orderings,
                    id,
                    rationale,
                    attached: false,
                }),
                Err(message) => self.out.bad_annotations.push(BadAnnotation {
                    line: c.line,
                    message,
                }),
            }
        }
    }

    /// Comments visible from a site spanning `start_line..=end_line`
    /// whose statement begins at `stmt_line`: trailing comments inside
    /// the span, plus the contiguous comment/attribute block directly
    /// above the span start and above the statement start.
    pub(crate) fn visible_comment_lines(
        &self,
        stmt_line: u32,
        start_line: u32,
        end_line: u32,
    ) -> Vec<u32> {
        let mut lines: Vec<u32> = (start_line..=end_line)
            .filter(|l| self.comment_lines.contains(l))
            .collect();
        for anchor in [start_line, stmt_line] {
            let mut l = anchor.saturating_sub(1);
            while l >= 1 {
                if self.comment_lines.contains(&l) && !self.code_lines.contains(&l) {
                    lines.push(l);
                } else if !self.attr_lines.contains(&l) {
                    break;
                }
                l -= 1;
            }
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// The line where the statement containing token `idx` starts
    /// (first token after the previous `;`, `{`, or `}`).
    pub(crate) fn statement_start_line(&self, idx: usize) -> u32 {
        let mut i = idx;
        while i > 0 {
            if matches!(self.punct_at(i - 1), Some(';') | Some('{') | Some('}')) {
                break;
            }
            i -= 1;
        }
        self.toks[i].line
    }

    fn collect_atomic_sites(&mut self) {
        // First locate every site and its paren span.
        struct Raw {
            method_idx: usize,
            span_end: usize,
            orderings: Vec<(usize, String)>,
        }
        let mut raws: Vec<Raw> = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            // `.method(` — an atomic method call; or `fence(` /
            // `compiler_fence(` — a standalone fence (plain or path
            // call). A fence ident preceded by `.` is some other
            // type's method, and one preceded by `fn` is a definition,
            // not a use; both are skipped.
            let found = if self.punct_at(i) == Some('.')
                && self
                    .ident_at(i + 1)
                    .is_some_and(|m| ATOMIC_METHODS.contains(&m))
                && self.punct_at(i + 2) == Some('(')
            {
                Some((i + 1, i + 2))
            } else if self.ident_at(i).is_some_and(|m| FENCE_FNS.contains(&m))
                && self.punct_at(i + 1) == Some('(')
                && self.punct_at(i.wrapping_sub(1)) != Some('.')
                && self.ident_at(i.wrapping_sub(1)) != Some("fn")
            {
                Some((i, i + 1))
            } else {
                None
            };
            let (method_idx, open) = match found {
                Some(f) if !self.is_excluded(i) => f,
                _ => {
                    i += 1;
                    continue;
                }
            };
            let mut depth = 0i32;
            let mut k = open;
            let mut orderings = Vec::new();
            while k < self.toks.len() {
                match self.punct_at(k) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if self.ident_at(k) == Some("Ordering")
                    && self.punct_at(k + 1) == Some(':')
                    && self.punct_at(k + 2) == Some(':')
                {
                    if let Some(ord) = self.ident_at(k + 3) {
                        if ORDERINGS.contains(&ord) {
                            orderings.push((k + 3, ord.to_string()));
                        }
                    }
                }
                k += 1;
            }
            if !orderings.is_empty() {
                raws.push(Raw {
                    method_idx,
                    span_end: k,
                    orderings,
                });
            }
            i += 1;
        }
        // Nested atomic calls: drop ordering tokens that belong to an
        // inner site from the outer site's list.
        let spans: Vec<(usize, usize)> = raws.iter().map(|r| (r.method_idx, r.span_end)).collect();
        for (ri, raw) in raws.iter_mut().enumerate() {
            raw.orderings.retain(|&(oidx, _)| {
                !spans
                    .iter()
                    .enumerate()
                    .any(|(si, &(a, b))| si != ri && a > raw.method_idx && oidx >= a && oidx <= b)
            });
        }
        for raw in raws {
            if raw.orderings.is_empty() {
                continue;
            }
            let start_line = self.toks[raw.method_idx].line;
            let end_line = self.toks[raw.span_end.min(self.toks.len() - 1)].line;
            let stmt_line = self.statement_start_line(raw.method_idx);
            let annotation = self.find_annotation(stmt_line, start_line, end_line);
            if let Some(ai) = annotation {
                self.out.annotations[ai].attached = true;
            }
            self.site_tok_indices.push(raw.method_idx);
            self.out.sites.push(AtomicSite {
                line: start_line,
                method: self
                    .ident_at(raw.method_idx)
                    .unwrap_or_default()
                    .to_string(),
                orderings: raw.orderings.into_iter().map(|(_, o)| o).collect(),
                annotation,
            });
        }
    }

    /// Find fn items that return a raw pointer (`*const` / `*mut`) and
    /// perform an atomic operation in their body. Runs after
    /// `collect_atomic_sites` so body membership is a token-index
    /// range check against the collected sites.
    fn collect_wrappers(&mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            if self.ident_at(i) != Some("fn") || self.is_excluded(i) {
                i += 1;
                continue;
            }
            let Some(name) = self.ident_at(i + 1).map(str::to_owned) else {
                i += 1;
                continue;
            };
            // Optional generics between the name and the params. `>`
            // preceded by `-` is part of a `->` inside the generic
            // bounds (e.g. `F: Fn(u32) -> u32`), not a closer.
            let mut j = i + 2;
            if self.punct_at(j) == Some('<') {
                let mut angle = 0i32;
                while j < self.toks.len() {
                    match self.punct_at(j) {
                        Some('<') => angle += 1,
                        Some('>') if self.punct_at(j.wrapping_sub(1)) != Some('-') => {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if self.punct_at(j) != Some('(') {
                i += 1;
                continue;
            }
            // Parameter list.
            let mut depth = 0i32;
            while j < self.toks.len() {
                match self.punct_at(j) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Return type: between `->` and the body `{` (or `where`).
            let mut k = j + 1;
            let mut returns_raw_ptr = false;
            if self.punct_at(k) == Some('-') && self.punct_at(k + 1) == Some('>') {
                k += 2;
                while k < self.toks.len() {
                    if matches!(self.punct_at(k), Some('{') | Some(';'))
                        || self.ident_at(k) == Some("where")
                    {
                        break;
                    }
                    if self.punct_at(k) == Some('*')
                        && matches!(self.ident_at(k + 1), Some("const") | Some("mut"))
                    {
                        returns_raw_ptr = true;
                    }
                    k += 1;
                }
            }
            if !returns_raw_ptr {
                i += 1;
                continue;
            }
            // Body: brace-balance from the first `{`; a `;` first means
            // a trait/extern declaration with no body.
            while k < self.toks.len()
                && self.punct_at(k) != Some('{')
                && self.punct_at(k) != Some(';')
            {
                k += 1;
            }
            if self.punct_at(k) != Some('{') {
                i += 1;
                continue;
            }
            let mut braces = 0i32;
            let mut end = k;
            while end < self.toks.len() {
                match self.punct_at(end) {
                    Some('{') => braces += 1,
                    Some('}') => {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            let mut orderings: Vec<String> = Vec::new();
            for (si, &tok) in self.site_tok_indices.iter().enumerate() {
                if tok > k && tok < end {
                    for o in &self.out.sites[si].orderings {
                        if !orderings.contains(o) {
                            orderings.push(o.clone());
                        }
                    }
                }
            }
            self.ptr_fn_spans
                .push((name.clone(), self.toks[i].line, k, end));
            if !orderings.is_empty() {
                self.out.wrappers.push(WrapperFn {
                    line: self.toks[i].line,
                    name,
                    orderings,
                });
            }
            i = k + 1;
        }
    }

    /// With the caller-supplied registry of wrapper names, collect
    /// their call sites and attach `// ord:` annotations exactly as
    /// for direct atomic sites.
    fn collect_wrapper_calls(&mut self) {
        if self.wrapper_names.is_empty() {
            return;
        }
        for i in 0..self.toks.len() {
            let Some(name) = self.ident_at(i).map(str::to_owned) else {
                continue;
            };
            if !self.wrapper_names.contains(&name)
                || self.punct_at(i + 1) != Some('(')
                || self.ident_at(i.wrapping_sub(1)) == Some("fn")
                || self.is_excluded(i)
            {
                continue;
            }
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < self.toks.len() {
                match self.punct_at(k) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let start_line = self.toks[i].line;
            let end_line = self.toks[k.min(self.toks.len() - 1)].line;
            let stmt_line = self.statement_start_line(i);
            let annotation = self.find_annotation(stmt_line, start_line, end_line);
            if let Some(ai) = annotation {
                self.out.annotations[ai].attached = true;
            }
            self.wrapper_call_tok_indices.push(i);
            self.out.wrapper_calls.push(WrapperCall {
                line: start_line,
                callee: name,
                annotation,
            });
        }
    }

    /// Pointer-returning fns whose bodies call registered wrappers are
    /// themselves wrappers-by-delegation: the dereferenceable pointer
    /// they hand out was produced under the callee's orderings. Runs
    /// after `collect_wrapper_calls` so membership is a token-range
    /// check of the recorded call sites against the fn spans noted by
    /// `collect_wrappers`. Self-recursive calls are ignored — they add
    /// no orderings the fn does not already own.
    fn collect_delegating(&mut self) {
        if self.wrapper_names.is_empty() {
            return;
        }
        for (name, line, k, end) in &self.ptr_fn_spans {
            let mut callees: Vec<String> = Vec::new();
            for (ci, &tok) in self.wrapper_call_tok_indices.iter().enumerate() {
                if tok > *k && tok < *end {
                    let callee = &self.out.wrapper_calls[ci].callee;
                    if callee != name && !callees.contains(callee) {
                        callees.push(callee.clone());
                    }
                }
            }
            if !callees.is_empty() {
                self.out.delegating.push(DelegatingFn {
                    line: *line,
                    name: name.clone(),
                    callees,
                });
            }
        }
    }

    fn find_annotation(&self, stmt_line: u32, start_line: u32, end_line: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for l in self.visible_comment_lines(stmt_line, start_line, end_line) {
            for &ci in self.comments_ending.get(&l).into_iter().flatten() {
                let c = &self.comments[ci];
                if let Some(ai) = self
                    .out
                    .annotations
                    .iter()
                    .position(|a| a.line == c.end_line && c.text.starts_with("ord:"))
                {
                    // Nearest annotation below/at wins (last in line order).
                    best = Some(ai);
                }
            }
        }
        best
    }

    fn collect_unsafe(&mut self) {
        for i in 0..self.toks.len() {
            if self.ident_at(i) != Some("unsafe") || self.is_excluded(i) {
                continue;
            }
            let kind = match (self.ident_at(i + 1), self.punct_at(i + 1)) {
                (_, Some('{')) => "unsafe block",
                // `unsafe fn(..)` with no name is a function-pointer
                // *type* (e.g. a struct field), not an unsafe fn item.
                (Some("fn"), _) if self.punct_at(i + 2) == Some('(') => continue,
                (Some("fn"), _) => "unsafe fn",
                (Some("impl"), _) => "unsafe impl",
                (Some("trait"), _) => "unsafe trait",
                // `unsafe extern`, attribute args, etc. — skip.
                _ => continue,
            };
            let line = self.toks[i].line;
            let stmt_line = self.statement_start_line(i);
            let documented = self
                .visible_comment_lines(stmt_line, line, line)
                .iter()
                .flat_map(|l| self.comments_ending.get(l).into_iter().flatten())
                .any(|&ci| {
                    let t = &self.comments[ci].text;
                    t.contains("SAFETY:") || t.contains("# Safety") || t.contains("Safety:")
                });
            self.out.unsafes.push(UnsafeItem {
                line,
                kind,
                documented,
            });
        }
    }

    fn collect_banned(&mut self) {
        for i in 0..self.toks.len() {
            if self.is_excluded(i) {
                continue;
            }
            let line = self.toks[i].line;
            // `::sleep(` — a path call to a sleep function.
            if self.ident_at(i) == Some("sleep")
                && self.punct_at(i + 1) == Some('(')
                && i >= 2
                && self.punct_at(i - 1) == Some(':')
                && self.punct_at(i - 2) == Some(':')
            {
                self.out.banned.push(BannedUse {
                    line,
                    what: BannedKind::Sleep,
                });
            }
            // Raw tag-bit arithmetic: `0b..` literals or the tag
            // constants combined with bitwise operators.
            let is_tag_operand = match &self.toks[i].kind {
                TokenKind::Number(n) => n.starts_with("0b"),
                TokenKind::Ident(s) => {
                    matches!(s.as_str(), "MARK_BIT" | "FLAG_BIT" | "TAG_MASK")
                }
                _ => false,
            };
            if is_tag_operand {
                let neighbor_op = [i.wrapping_sub(1), i + 1]
                    .iter()
                    .any(|&j| matches!(self.punct_at(j), Some('&') | Some('|') | Some('!')));
                if neighbor_op {
                    self.out.banned.push(BannedUse {
                        line,
                        what: BannedKind::TagArith,
                    });
                }
            }
        }
    }
}

/// Parse the body of an annotation after the `ord:` prefix:
/// `<Ordering>[/<Ordering>...] — <invariant-id>: <rationale>`.
/// The separator may be an em dash or `--`.
fn parse_annotation(body: &str) -> Result<(Vec<String>, String, String), String> {
    let (left, right) = body
        .split_once('—')
        .or_else(|| body.split_once("--"))
        .ok_or("missing `—` between orderings and invariant id")?;
    let mut orderings = Vec::new();
    for part in left.split(['/', ',']) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if !ORDERINGS.contains(&part) {
            return Err(format!("unknown ordering {part:?}"));
        }
        orderings.push(part.to_string());
    }
    if orderings.is_empty() {
        return Err("no orderings listed".into());
    }
    let (id, rationale) = right
        .trim()
        .split_once(':')
        .ok_or("missing `:` after invariant id")?;
    let id = id.trim();
    let ok_id = !id.is_empty()
        && id.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && id.contains('.');
    if !ok_id {
        return Err(format!(
            "invariant id {id:?} must look like FAMILY.site (e.g. LIST.traverse)"
        ));
    }
    let rationale = rationale.trim();
    if rationale.is_empty() {
        return Err("empty rationale".into());
    }
    Ok((orderings, id.to_string(), rationale.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_annotated_site_above() {
        let s = scan_file(
            "fn f(a: &A) {\n\
             // ord: Acquire — LIST.traverse: next hop is dereferenced\n\
             let x = a.succ.load(Ordering::Acquire);\n}\n",
        );
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].orderings, ["Acquire"]);
        let ai = s.sites[0].annotation.expect("annotation attached");
        assert_eq!(s.annotations[ai].id, "LIST.traverse");
        assert!(s.annotations[ai].attached);
    }

    #[test]
    fn finds_trailing_annotation() {
        let s = scan_file(
            "fn f(a: &A) {\n\
             a.len.fetch_add(1, Ordering::Relaxed); // ord: Relaxed — STAT.len: statistic\n}\n",
        );
        assert_eq!(s.sites[0].annotation, Some(0));
    }

    #[test]
    fn multiline_call_walks_to_statement_start() {
        let s = scan_file(
            "fn f(a: &A) {\n\
             // ord: Release/Acquire — LIST.insert-cas: publish node\n\
             let r = a.succ\n\
                 .compare_exchange(x, y, Ordering::Release, Ordering::Acquire);\n}\n",
        );
        assert_eq!(s.sites[0].orderings, ["Release", "Acquire"]);
        assert!(s.sites[0].annotation.is_some());
    }

    #[test]
    fn unannotated_site_detected() {
        let s = scan_file("fn f(a: &A) { a.x.store(1, Ordering::Release); }\n");
        assert_eq!(s.sites.len(), 1);
        assert!(s.sites[0].annotation.is_none());
    }

    #[test]
    fn cfg_test_mod_is_excluded() {
        let s = scan_file(
            "fn f(a: &A) { a.x.store(1, Ordering::Release); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn g(a: &A) { a.x.store(1, Ordering::SeqCst); unsafe { boom() } }\n\
             }\n",
        );
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].orderings, ["Release"]);
        assert!(s.unsafes.is_empty());
    }

    #[test]
    fn cfg_test_mod_declaration_records_submodule() {
        let s = scan_file("#[cfg(test)]\nmod tests;\n");
        assert!(s.test_submodules.contains(&"tests.rs".to_string()));
        assert!(s.test_submodules.contains(&"tests/mod.rs".to_string()));
    }

    #[test]
    fn cfg_not_test_is_not_excluded() {
        let s = scan_file("#[cfg(not(test))]\nfn f(a: &A) { a.x.store(1, Ordering::Release); }\n");
        assert_eq!(s.sites.len(), 1);
    }

    #[test]
    fn safety_comment_is_detected() {
        let s = scan_file(
            "fn f() {\n\
             // SAFETY: the guard pins the epoch.\n\
             unsafe { deref(p) };\n\
             unsafe { deref(q) };\n}\n",
        );
        assert_eq!(s.unsafes.len(), 2);
        assert!(s.unsafes[0].documented);
        assert!(!s.unsafes[1].documented);
    }

    #[test]
    fn safety_doc_heading_counts_for_unsafe_fn() {
        let s = scan_file(
            "/// Does things.\n///\n/// # Safety\n///\n/// Caller must pin.\n\
             pub unsafe fn f() {}\n",
        );
        assert_eq!(s.unsafes.len(), 1);
        assert!(s.unsafes[0].documented);
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let s = scan_file("unsafe impl Send for X {}\n");
        assert_eq!(s.unsafes[0].kind, "unsafe impl");
        assert!(!s.unsafes[0].documented);
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_an_item() {
        let s = scan_file("struct R {\n    drop_fn: unsafe fn(usize),\n}\n");
        assert!(s.unsafes.is_empty());
    }

    #[test]
    fn sleep_and_tag_arith_are_flagged() {
        let s = scan_file(
            "fn f(p: usize) -> usize {\n\
             std::thread::sleep(d);\n\
             p & !0b11\n}\n",
        );
        assert!(s.banned.iter().any(|b| b.what == BannedKind::Sleep));
        assert!(s.banned.iter().any(|b| b.what == BannedKind::TagArith));
    }

    #[test]
    fn annotation_grammar_errors_are_reported() {
        let s = scan_file(
            "// ord: Relaxed STAT.len: forgot the dash\n\
             // ord: Sloppy — STAT.len: unknown ordering\n\
             // ord: Relaxed — lowercase: bad id\n\
             fn f() {}\n",
        );
        assert_eq!(s.bad_annotations.len(), 3);
    }

    #[test]
    fn annotation_ordering_mismatch_is_visible_to_caller() {
        let s = scan_file(
            "fn f(a: &A) {\n\
             // ord: Acquire — LIST.traverse: says acquire\n\
             a.x.store(1, Ordering::Release);\n}\n",
        );
        let ai = s.sites[0].annotation.unwrap();
        assert_eq!(s.annotations[ai].orderings, ["Acquire"]);
        assert_eq!(s.sites[0].orderings, ["Release"]);
    }

    #[test]
    fn ordering_in_string_is_not_a_site() {
        let s = scan_file("fn f() { println!(\"x.load(Ordering::SeqCst)\"); }\n");
        assert!(s.sites.is_empty());
    }

    #[test]
    fn fetch_update_collects_both_orderings() {
        let s = scan_file(
            "fn f(a: &A) {\n\
             // ord: AcqRel/Acquire — TOWER.release: rmw\n\
             a.x.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(v + 1));\n}\n",
        );
        assert_eq!(s.sites[0].orderings, ["AcqRel", "Acquire"]);
    }

    #[test]
    fn standalone_fence_is_a_site() {
        let s = scan_file(
            "fn f() {\n\
             // ord: Release — EPOCH.flip: writes drain before the flip\n\
             std::sync::atomic::fence(Ordering::Release);\n}\n",
        );
        assert_eq!(s.sites.len(), 1);
        assert_eq!(s.sites[0].method, "fence");
        assert_eq!(s.sites[0].orderings, ["Release"]);
        assert!(s.sites[0].annotation.is_some());
    }

    #[test]
    fn bare_fence_and_compiler_fence_are_sites() {
        let s =
            scan_file("fn f() { fence(Ordering::SeqCst); compiler_fence(Ordering::AcqRel); }\n");
        assert_eq!(s.sites.len(), 2);
        assert_eq!(s.sites[0].method, "fence");
        assert_eq!(s.sites[0].orderings, ["SeqCst"]);
        assert_eq!(s.sites[1].method, "compiler_fence");
        assert_eq!(s.sites[1].orderings, ["AcqRel"]);
    }

    #[test]
    fn fence_definition_and_foreign_method_are_not_sites() {
        let s = scan_file(
            "fn fence(o: Ordering) { consume(o); }\n\
             fn g(m: &M) { m.fence(Ordering::SeqCst); }\n",
        );
        assert!(s.sites.is_empty());
    }

    #[test]
    fn pointer_returning_fn_with_atomic_body_is_a_wrapper() {
        let s = scan_file(
            "impl N {\n\
             pub(crate) fn next(&self) -> *mut N {\n\
             // ord: Acquire — LIST.traverse: next hop\n\
             self.succ.load(Ordering::Acquire)\n}\n}\n",
        );
        assert_eq!(s.wrappers.len(), 1);
        assert_eq!(s.wrappers[0].name, "next");
        assert_eq!(s.wrappers[0].orderings, ["Acquire"]);
    }

    #[test]
    fn generic_wrapper_signature_is_parsed() {
        let s = scan_file(
            "fn peek<K: Ord, V>(n: &Node<K, V>) -> *mut Node<K, V> {\n\
             n.back.load(Ordering::Acquire)\n}\n",
        );
        assert_eq!(s.wrappers.len(), 1);
        assert_eq!(s.wrappers[0].name, "peek");
    }

    #[test]
    fn non_pointer_or_non_atomic_fns_are_not_wrappers() {
        let s = scan_file(
            "fn a(x: &A) -> u64 { x.v.load(Ordering::Acquire) }\n\
             fn b() -> *mut u8 { std::ptr::null_mut() }\n",
        );
        assert!(s.wrappers.is_empty());
        assert_eq!(s.sites.len(), 1);
    }

    #[test]
    fn wrapper_call_sites_attach_annotations() {
        let names: BTreeSet<String> = ["next".to_string()].into_iter().collect();
        let s = scan_file_with(
            "fn g(n: &N) {\n\
             // ord: Acquire — LIST.traverse: wrapper hides the load\n\
             let p = n.next();\n\
             let q = n.next();\n}\n",
            &names,
        );
        assert_eq!(s.wrapper_calls.len(), 2);
        assert_eq!(s.wrapper_calls[0].callee, "next");
        assert!(s.wrapper_calls[0].annotation.is_some());
        assert!(s.wrapper_calls[1].annotation.is_none());
        assert!(s.annotations[0].attached);
    }

    #[test]
    fn wrapper_definition_is_not_its_own_call_site() {
        let names: BTreeSet<String> = ["next".to_string()].into_iter().collect();
        let s = scan_file_with(
            "fn next(n: &N) -> *mut N { n.succ.load(Ordering::Acquire) }\n",
            &names,
        );
        assert!(s.wrapper_calls.is_empty());
    }

    #[test]
    fn dangling_annotation_stays_unattached() {
        let s = scan_file(
            "// ord: Relaxed — STAT.len: floats free\n\
             fn f() { let x = 1; }\n",
        );
        assert_eq!(s.annotations.len(), 1);
        assert!(!s.annotations[0].attached);
    }
}
