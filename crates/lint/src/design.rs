//! Parser for the DESIGN.md §9 ordering tables.
//!
//! §9 is the normative inventory of every ordering invariant: each
//! table row starts with an invariant id (`FAMILY.site`), and the
//! `Ordering` column lists the orderings that id licenses. The audit
//! cross-checks these rows against `// ord:` annotations in both
//! directions.

use crate::analyze::ORDERINGS;
use crate::dataflow::SmrKind;

/// One row of a §9 ordering table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignRow {
    /// Invariant id (`FAMILY.site`) from the row's first column.
    pub id: String,
    /// Orderings named in the row's `Ordering` column.
    pub orderings: Vec<String>,
    /// 1-based line in DESIGN.md.
    pub line: u32,
}

/// Extract ordering rows from the §9 section of `text`. Rows of the
/// §9.8 SMR-obligations subsection are *not* ordering rows — they are
/// parsed by [`parse_obligations`] instead.
pub fn parse_design(text: &str) -> Vec<DesignRow> {
    let mut rows = Vec::new();
    let mut in_section = false;
    let mut in_obligations = false;
    let mut ordering_col: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("## ") {
            in_section = rest.starts_with("9.") || rest.starts_with("9 ");
            in_obligations = false;
            continue;
        }
        if let Some(rest) = line.strip_prefix("### ") {
            in_obligations = rest.starts_with("9.8");
            continue;
        }
        if !in_section || in_obligations || !line.starts_with('|') {
            continue;
        }
        let cells: Vec<String> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').trim().to_string())
            .collect();
        if cells.iter().any(|c| c == "Ordering") {
            ordering_col = cells.iter().position(|c| c == "Ordering");
            continue;
        }
        let Some(first) = cells.first() else { continue };
        if !is_invariant_id(first) {
            continue; // separator row or prose table
        }
        let scope = match ordering_col {
            Some(col) => cells.get(col).cloned().unwrap_or_default(),
            None => line.to_string(),
        };
        let orderings = ORDERINGS
            .iter()
            .filter(|o| contains_word(&scope, o))
            .map(|o| o.to_string())
            .collect();
        rows.push(DesignRow {
            id: first.clone(),
            orderings,
            line: (idx + 1) as u32,
        });
    }
    rows
}

/// One row of the §9.8 SMR-obligations table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObligationRow {
    /// Invariant id (`FAMILY.site`) from the row's first column.
    pub id: String,
    /// Which annotation kind discharges this obligation (the row's
    /// second column: `escape`, `validate`, or `unlink`).
    pub kind: SmrKind,
    /// 1-based line in DESIGN.md.
    pub line: u32,
}

/// Extract the SMR-obligations rows from the §9.8 subsection: table
/// rows whose first cell is an invariant id and whose second cell is
/// an annotation kind. The audit cross-checks these against
/// `// escape:` / `// validate:` / `// unlink:` annotations in both
/// directions, exactly like the ordering tables.
pub fn parse_obligations(text: &str) -> Vec<ObligationRow> {
    let mut rows = Vec::new();
    let mut in_obligations = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("### ") {
            in_obligations = rest.starts_with("9.8");
            continue;
        }
        if line.starts_with("## ") {
            in_obligations = false;
            continue;
        }
        if !in_obligations || !line.starts_with('|') {
            continue;
        }
        let cells: Vec<String> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().trim_matches('`').trim().to_string())
            .collect();
        let (Some(first), Some(second)) = (cells.first(), cells.get(1)) else {
            continue;
        };
        if !is_invariant_id(first) {
            continue; // header or separator row
        }
        let kind = match second.as_str() {
            "escape" => SmrKind::Escape,
            "validate" => SmrKind::Validate,
            "unlink" => SmrKind::Unlink,
            _ => continue,
        };
        rows.push(ObligationRow {
            id: first.clone(),
            kind,
            line: (idx + 1) as u32,
        });
    }
    rows
}

/// `FAMILY.site` ids: uppercase family, a dot, then a site name.
pub fn is_invariant_id(s: &str) -> bool {
    let Some((family, site)) = s.split_once('.') else {
        return false;
    };
    !family.is_empty()
        && family
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
        && !site.is_empty()
        && site
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn contains_word(haystack: &str, word: &str) -> bool {
    haystack.match_indices(word).any(|(i, _)| {
        let before = haystack[..i].chars().next_back();
        let after = haystack[i + word.len()..].chars().next();
        let boundary = |c: Option<char>| c.is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'));
        boundary(before) && boundary(after)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Design
## 9. Hot-path memory model
### 9.1 Ordering table
| ID | Field | Operation | Ordering | Invariant |
|---|---|---|---|---|
| `LIST.traverse` | `node.succ` | traversal load | `Acquire` | pairs with the Release CAS |
| `LIST.insert-cas` | `pred.succ` | Insert CAS | success `Release`, failure `Acquire` | publishes init |
| not-an-id | x | y | `SeqCst` | prose row |

### 9.3 Auxiliary
| ID | Where | Ordering | Why |
|---|---|---|---|
| `STAT.len` | counters | `Relaxed` | statistic only |

### 9.8 SMR obligations
| ID | Kind | Where | Discharged by |
|---|---|---|---|
| `ESC.node-right` | escape | `Node::right` | caller's guard outlives the call |
| `VAL.list-read` | validate | `read_impl` | birth stamp re-check after Acquire fence |
| `UNLINK.list-del` | unlink | `SearchFrom` | succ CAS marked+flagged before retire |
| `BAD.kind` | teleport | nowhere | unknown kinds are skipped |

## 10. Something else
| `FAKE.row` | x | `Relaxed` | outside section |
";

    #[test]
    fn parses_rows_with_ids_only() {
        let rows = parse_design(SAMPLE);
        let ids: Vec<&str> = rows.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["LIST.traverse", "LIST.insert-cas", "STAT.len"]);
    }

    #[test]
    fn ordering_column_is_respected() {
        let rows = parse_design(SAMPLE);
        assert_eq!(rows[0].orderings, ["Acquire"]);
        assert_eq!(rows[1].orderings, ["Acquire", "Release"]);
        assert_eq!(rows[2].orderings, ["Relaxed"]);
    }

    #[test]
    fn rationale_mentions_do_not_leak_into_orderings() {
        // Row 0's invariant cell mentions Release; only the Ordering
        // column counts.
        let rows = parse_design(SAMPLE);
        assert!(!rows[0].orderings.contains(&"Release".to_string()));
    }

    #[test]
    fn obligations_rows_do_not_leak_into_ordering_rows() {
        // §9.8 cells mention orderings-adjacent words and carry
        // invariant ids, but they are not ordering rows.
        let rows = parse_design(SAMPLE);
        assert!(rows.iter().all(|r| !r.id.starts_with("ESC.")
            && !r.id.starts_with("VAL.")
            && !r.id.starts_with("UNLINK.")));
    }

    #[test]
    fn parses_obligations_with_kinds() {
        let rows = parse_obligations(SAMPLE);
        let got: Vec<(&str, SmrKind)> = rows.iter().map(|r| (r.id.as_str(), r.kind)).collect();
        assert_eq!(
            got,
            [
                ("ESC.node-right", SmrKind::Escape),
                ("VAL.list-read", SmrKind::Validate),
                ("UNLINK.list-del", SmrKind::Unlink),
            ]
        );
    }

    #[test]
    fn id_grammar() {
        assert!(is_invariant_id("LIST.traverse"));
        assert!(is_invariant_id("EPOCH.pin"));
        assert!(is_invariant_id("MET.shard-owner"));
        assert!(!is_invariant_id("lowercase.id"));
        assert!(!is_invariant_id("NODOT"));
        assert!(!is_invariant_id("---"));
        assert!(!is_invariant_id("ID"));
    }
}
