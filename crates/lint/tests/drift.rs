//! End-to-end drift self-test: the audit must pass on the checked-in
//! workspace, and must FAIL when either side of the DESIGN.md §9
//! contract is perturbed — an `// ord:` annotation stripped from the
//! code, or a table row's ordering changed out from under it. This
//! proves the cross-check is live in both directions, not vacuous.

use std::path::PathBuf;

use lf_lint::{run_audit, WorkspaceFiles};

/// Workspace root, two levels above this crate's manifest.
fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(root().join(rel)).expect(rel)
}

#[test]
fn checked_in_workspace_is_clean() {
    let files = WorkspaceFiles::new(&root());
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit.findings.is_empty(),
        "checked-in workspace must audit clean, got: {:#?}",
        audit.findings
    );
    assert!(audit.sites_total > 100, "inventory looks implausibly small");
}

#[test]
fn stripping_an_ord_annotation_fails_the_audit() {
    let rel = "crates/core/src/list/node.rs";
    let src = read(rel);
    let line = "// ord: Acquire — LIST.traverse: loaded pointer is the next hop";
    assert!(src.contains(line), "expected annotation in {rel}");
    let perturbed = src.replacen(line, "// (annotation removed)", 1);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file(rel, perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "missing-annotation" && f.file == rel),
        "stripping the annotation must produce a missing-annotation \
         finding, got: {:#?}",
        audit.findings
    );
}

#[test]
fn perturbing_a_design_row_fails_the_audit() {
    let design = read("DESIGN.md");
    let row_fragment = "| `LIST.traverse` | `node.succ` |";
    assert!(design.contains(row_fragment), "expected §9 row");
    // Change the row's licensed ordering from Acquire to Relaxed: the
    // `// ord: Acquire — LIST.traverse` annotations in the code are no
    // longer covered by the table.
    let line_start = design.find(row_fragment).unwrap();
    let line_end = design[line_start..].find('\n').unwrap() + line_start;
    let row = &design[line_start..line_end];
    let new_row = row.replace("`Acquire`", "`Relaxed`");
    assert_ne!(row, new_row, "row must mention Acquire");
    let perturbed = design.replacen(row, &new_row, 1);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file("DESIGN.md", perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit.findings.iter().any(|f| f.check == "design-drift"),
        "perturbing the DESIGN.md row must produce a design-drift \
         finding, got: {:#?}",
        audit.findings
    );
}

#[test]
fn deleting_a_design_row_fails_the_audit() {
    let design = read("DESIGN.md");
    let row_fragment = "| `LIST.traverse` | `node.succ` |";
    let line_start = design.find(row_fragment).expect("expected §9 row");
    let line_end = design[line_start..].find('\n').unwrap() + line_start + 1;
    let mut perturbed = String::with_capacity(design.len());
    perturbed.push_str(&design[..line_start]);
    perturbed.push_str(&design[line_end..]);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file("DESIGN.md", perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit.findings.iter().any(|f| f.check == "design-drift"),
        "deleting the DESIGN.md row must orphan the code annotations \
         and produce a design-drift finding, got: {:#?}",
        audit.findings
    );
}
