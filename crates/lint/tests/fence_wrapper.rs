//! Regression tests for the fence and pointer-wrapper audits.
//!
//! Two blind spots the site-pattern check (`.load(Ordering::..)`)
//! cannot see: standalone `fence(..)` calls, and helpers that wrap an
//! atomic access and hand the raw pointer to their callers. Each test
//! seeds a violation into an otherwise-clean hot-crate file (via the
//! in-memory override, never touching the checkout) and asserts the
//! audit catches it — plus one test proving the call-site annotations
//! on the real `backlink()` wrapper are load-bearing.

use std::path::PathBuf;

use lf_lint::{run_audit, WorkspaceFiles};

/// Workspace root, two levels above this crate's manifest.
fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(root().join(rel)).expect(rel)
}

/// The hot-crate file violations are appended to.
const HOT_FILE: &str = "crates/core/src/list/node.rs";

#[test]
fn seeded_unannotated_fence_is_caught() {
    let src = read(HOT_FILE)
        + "\npub(crate) fn seeded() { std::sync::atomic::fence(Ordering::SeqCst); }\n";
    let mut files = WorkspaceFiles::new(&root());
    files.override_file(HOT_FILE, src);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "missing-annotation"
                && f.file == HOT_FILE
                && f.message.contains("fence")),
        "unannotated fence must be flagged, got: {:#?}",
        audit.findings
    );
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "seqcst" && f.file == HOT_FILE),
        "SeqCst fence outside the allowlist must be flagged, got: {:#?}",
        audit.findings
    );
}

#[test]
fn seeded_annotated_fence_passes() {
    // An annotated fence whose ordering and id match a DESIGN.md §9
    // row audits clean — the fence check is about visibility, not a
    // blanket ban.
    let src = read(HOT_FILE)
        + "\npub(crate) fn seeded() {\n\
           // ord: Acquire — LIST.traverse: loaded pointer is the next hop\n\
           std::sync::atomic::fence(Ordering::Acquire);\n\
           }\n";
    let mut files = WorkspaceFiles::new(&root());
    files.override_file(HOT_FILE, src);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit.findings.is_empty(),
        "annotated fence must audit clean, got: {:#?}",
        audit.findings
    );
}

#[test]
fn seeded_wrapper_with_unannotated_call_site_is_caught() {
    // A new pointer-returning wrapper plus a bare call site: the
    // wrapper's own load is annotated, but the call site (where the
    // returned pointer will be dereferenced) is not.
    let src = read(HOT_FILE)
        + "\npub(crate) fn seeded_peek<K: Ord, V>(n: &Node<K, V>) -> *mut Node<K, V> {\n\
           // ord: Acquire — LIST.backlink-walk: predecessor is dereferenced\n\
           n.backlink.load(Ordering::Acquire)\n\
           }\n\
           pub(crate) fn seeded_caller<K: Ord, V>(n: &Node<K, V>) -> bool {\n\
           seeded_peek(n).is_null()\n\
           }\n";
    let mut files = WorkspaceFiles::new(&root());
    files.override_file(HOT_FILE, src);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "wrapper-unannotated"
                && f.file == HOT_FILE
                && f.message.contains("seeded_peek")),
        "bare wrapper call must be flagged, got: {:#?}",
        audit.findings
    );
}

#[test]
fn seeded_wrapper_call_with_wrong_ordering_is_caught() {
    // The call site IS annotated, but claims an ordering weaker than
    // what the wrapper hides.
    let src = read(HOT_FILE)
        + "\npub(crate) fn seeded_peek<K: Ord, V>(n: &Node<K, V>) -> *mut Node<K, V> {\n\
           // ord: Acquire — LIST.backlink-walk: predecessor is dereferenced\n\
           n.backlink.load(Ordering::Acquire)\n\
           }\n\
           pub(crate) fn seeded_caller<K: Ord, V>(n: &Node<K, V>) -> bool {\n\
           // ord: Relaxed — STAT.len: pure statistic\n\
           seeded_peek(n).is_null()\n\
           }\n";
    let mut files = WorkspaceFiles::new(&root());
    files.override_file(HOT_FILE, src);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "annotation-mismatch"
                && f.file == HOT_FILE
                && f.message.contains("seeded_peek")),
        "under-claiming wrapper call must be flagged, got: {:#?}",
        audit.findings
    );
}

#[test]
fn seeded_two_level_delegation_is_caught() {
    // The multi-level case: `seeded_inner` is a direct wrapper (atomic
    // load, pointer out), `seeded_mid` merely *delegates* to it — no
    // atomic of its own — and `seeded_outer` calls the delegator bare.
    // The registry fixpoint must promote `seeded_mid` and flag the
    // outer call site.
    let src = read(HOT_FILE)
        + "\npub(crate) fn seeded_inner<K: Ord, V>(n: &Node<K, V>) -> *mut Node<K, V> {\n\
           // ord: Acquire — LIST.backlink-walk: predecessor is dereferenced\n\
           n.backlink.load(Ordering::Acquire)\n\
           }\n\
           pub(crate) fn seeded_mid<K: Ord, V>(n: &Node<K, V>) -> *mut Node<K, V> {\n\
           // ord: Acquire — LIST.backlink-walk: delegated walk (wrapped load)\n\
           seeded_inner(n)\n\
           }\n\
           pub(crate) fn seeded_outer<K: Ord, V>(n: &Node<K, V>) -> bool {\n\
           seeded_mid(n).is_null()\n\
           }\n";
    let mut files = WorkspaceFiles::new(&root());
    files.override_file(HOT_FILE, src);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "wrapper-unannotated"
                && f.file == HOT_FILE
                && f.message.contains("seeded_mid")),
        "bare call to a delegating wrapper must be flagged, got: {:#?}",
        audit.findings
    );
}

#[test]
fn seeded_two_level_delegation_with_annotations_passes() {
    // Same chain, every hop annotated with the ordering the innermost
    // wrapper hides: audits clean, proving the delegator inherits its
    // callee's orderings (an annotation claiming Acquire satisfies the
    // Acquire the chain bottoms out in). The pointer-returning hops
    // also carry `// escape:` annotations for the SMR pass — the same
    // obligation the real accessors discharge.
    let src = read(HOT_FILE)
        + "\n// escape: ESC.node-accessor: valid while `n` is protected by the caller's guard\n\
           pub(crate) fn seeded_inner<K: Ord, V>(n: &Node<K, V>) -> *mut Node<K, V> {\n\
           // ord: Acquire — LIST.backlink-walk: predecessor is dereferenced\n\
           n.backlink.load(Ordering::Acquire)\n\
           }\n\
           // escape: ESC.node-accessor: valid while `n` is protected by the caller's guard\n\
           pub(crate) fn seeded_mid<K: Ord, V>(n: &Node<K, V>) -> *mut Node<K, V> {\n\
           // ord: Acquire — LIST.backlink-walk: delegated walk (wrapped load)\n\
           seeded_inner(n)\n\
           }\n\
           pub(crate) fn seeded_outer<K: Ord, V>(n: &Node<K, V>) -> bool {\n\
           // ord: Acquire — LIST.backlink-walk: two-level delegated walk\n\
           seeded_mid(n).is_null()\n\
           }\n";
    let mut files = WorkspaceFiles::new(&root());
    files.override_file(HOT_FILE, src);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit.findings.is_empty(),
        "fully annotated delegation chain must audit clean, got: {:#?}",
        audit.findings
    );
}

#[test]
fn stripping_a_search_call_annotation_fails_the_audit() {
    // The delegation fixpoint is live on the checked-in tree: the
    // paper's `SearchToLevel_SL` delegates (via `search_right`) to the
    // flagging C&S wrapper, so its call sites carry annotations —
    // removing one fails the audit.
    let rel = "crates/core/src/skiplist/insert.rs";
    let src = read(rel);
    let line =
        "// ord: Release/Acquire/Relaxed — LIST.flag-cas: descent helps flagged deletions (wrapped C&S)";
    assert!(src.contains(line), "expected call-site annotation in {rel}");
    let perturbed = src.replacen(line, "// (annotation removed)", 1);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file(rel, perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "wrapper-unannotated"
                && f.file == rel
                && f.message.contains("search_to_level")),
        "stripping a delegated-search call annotation must produce a \
         wrapper-unannotated finding, got: {:#?}",
        audit.findings
    );
}

#[test]
fn stripping_a_backlink_call_annotation_fails_the_audit() {
    // The real wrapper check is live on the checked-in tree: the
    // recovery walks' `backlink()` calls carry annotations, and
    // removing one fails the audit.
    let rel = "crates/core/src/list/insert.rs";
    let src = read(rel);
    let line = "// ord: Acquire — LIST.backlink-walk: recovered pred is dereferenced";
    assert!(src.contains(line), "expected call-site annotation in {rel}");
    let perturbed = src.replacen(line, "// (annotation removed)", 1);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file(rel, perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "wrapper-unannotated" && f.file == rel),
        "stripping the call-site annotation must produce a \
         wrapper-unannotated finding, got: {:#?}",
        audit.findings
    );
}

#[test]
fn backlink_wrapper_is_in_the_registry() {
    let files = WorkspaceFiles::new(&root());
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit.wrapper_fns >= 1,
        "the `backlink()` helpers must register as wrappers"
    );
    assert!(
        audit.wrapper_calls >= 4,
        "the recovery walks' call sites must be collected, got {}",
        audit.wrapper_calls
    );
}
