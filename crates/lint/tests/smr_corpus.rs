//! Seeded known-bad corpus for the SMR dataflow pass: each test plants
//! a snippet embodying one violation class in a hot-crate file (via
//! `WorkspaceFiles::override_file` — the linter sees it, rustc never
//! does) and asserts the audit produces a finding naming the violated
//! rule and the originating guard binding. A final group perturbs the
//! DESIGN.md §9.8 obligations table to prove the cross-check is live
//! in both directions, mirroring `drift.rs` for the ordering tables.

use std::path::PathBuf;

use lf_lint::{run_audit, WorkspaceFiles};

/// Workspace root, two levels above this crate's manifest.
fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(root().join(rel)).expect(rel)
}

/// Host path for seeded snippets: an existing file in a hot crate with
/// the SMR pass enabled (the override replaces its whole content).
const HOST: &str = "crates/core/src/list/node.rs";

/// Audit the workspace with `HOST` replaced by `snippet`.
fn audit_snippet(snippet: &str) -> lf_lint::Audit {
    let mut files = WorkspaceFiles::new(&root());
    files.override_file(HOST, snippet.to_string());
    run_audit(&files).expect("audit runs")
}

#[test]
fn corpus_guard_scope_deref_outside_block() {
    let audit = audit_snippet(
        "fn stale(h: &H) {\n\
             let p;\n\
             {\n\
                 let g = h.pin();\n\
                 p = self.head.load(Ordering::Acquire);\n\
             }\n\
             unsafe { (*p).next() };\n\
         }\n",
    );
    assert!(
        audit.findings.iter().any(|f| f.check == "smr-guard-scope"
            && f.file == HOST
            && f.message.contains("`p`")
            && f.message.contains("`g`")),
        "seeded guard-scope violation must be found, got: {:#?}",
        audit.findings
    );
}

#[test]
fn corpus_deref_after_guard_drop() {
    let audit = audit_snippet(
        "fn stale(h: &H) {\n\
             let guard = h.pin();\n\
             let p = self.head.load(Ordering::Acquire);\n\
             drop(guard);\n\
             unsafe { (*p).next() };\n\
         }\n",
    );
    assert!(
        audit.findings.iter().any(|f| f.check == "smr-guard-scope"
            && f.file == HOST
            && f.message.contains("`guard`")),
        "deref after drop(guard) must be found, got: {:#?}",
        audit.findings
    );
}

#[test]
fn corpus_escaping_return_without_annotation() {
    let audit = audit_snippet(
        "fn leak(h: &H) -> *mut Node {\n\
             let g = h.pin();\n\
             let p = self.head.load(Ordering::Acquire);\n\
             p\n\
         }\n",
    );
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "smr-escape" && f.file == HOST && f.message.contains("`leak`")),
        "unannotated pointer-returning escape must be found, got: {:#?}",
        audit.findings
    );
}

#[test]
fn corpus_pin_across_await() {
    let audit = audit_snippet(
        "async fn submit_all(h: &H) {\n\
             let guard = h.pin();\n\
             submit().await;\n\
             let _ = &guard;\n\
         }\n",
    );
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "smr-pin-across-await"
                && f.file == HOST
                && f.message.contains("`guard`")),
        "pin held across .await must be found, got: {:#?}",
        audit.findings
    );
}

#[test]
fn corpus_unvalidated_optimistic_deref() {
    let audit = audit_snippet(
        "fn try_read(&self) -> u64 {\n\
             let curr = self.head.load(Ordering::Acquire);\n\
             unsafe { (*curr).value }\n\
         }\n",
    );
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "smr-unvalidated-deref"
                && f.file == HOST
                && f.message.contains("`curr`")),
        "unvalidated optimistic deref must be found, got: {:#?}",
        audit.findings
    );
}

#[test]
fn corpus_retire_without_unlink() {
    let audit = audit_snippet(
        "fn remove(&self, g: &Guard, node: *mut Node) {\n\
             let addr = node as usize;\n\
             unsafe { g.defer_unchecked(move || free(addr)) };\n\
         }\n",
    );
    assert!(
        audit.findings.iter().any(|f| f.check == "smr-retire-unlink"
            && f.file == HOST
            && f.message.contains("defer_unchecked")),
        "retire without // unlink: must be found, got: {:#?}",
        audit.findings
    );
}

#[test]
fn corpus_escape_id_missing_from_table_is_drift() {
    let audit = audit_snippet(
        "// escape: ESC.phantom-id: not a row of the obligations table\n\
         fn leak(h: &H) -> *mut Node {\n\
             let g = h.pin();\n\
             let p = self.head.load(Ordering::Acquire);\n\
             p\n\
         }\n",
    );
    assert!(
        audit.findings.iter().any(|f| f.check == "obligation-drift"
            && f.file == HOST
            && f.message.contains("ESC.phantom-id")),
        "annotation with unknown id must be obligation-drift, got: {:#?}",
        audit.findings
    );
}

// --- bidirectional drift against the checked-in workspace ---

#[test]
fn stripping_an_unlink_annotation_fails_the_audit() {
    let rel = "crates/core/src/list/search.rs";
    let src = read(rel);
    let line = "// unlink: UNLINK.list-del: the type-3 C&S above made `del`";
    assert!(src.contains(line), "expected annotation in {rel}");
    let perturbed = src.replacen(line, "// (annotation removed)", 1);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file(rel, perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "smr-retire-unlink" && f.file == rel),
        "stripping the unlink annotation must resurface the finding, \
         got: {:#?}",
        audit.findings
    );
}

#[test]
fn perturbing_an_obligation_row_kind_fails_the_audit() {
    let design = read("DESIGN.md");
    let row_fragment = "| `ESC.hp-protect` | escape |";
    assert!(design.contains(row_fragment), "expected §9.8 row");
    // Flip the row's kind out from under the code's `// escape:`
    // annotation: the annotation no longer matches its table row.
    let perturbed = design.replacen(row_fragment, "| `ESC.hp-protect` | validate |", 1);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file("DESIGN.md", perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "obligation-drift" && f.message.contains("ESC.hp-protect")),
        "kind mismatch must be obligation-drift, got: {:#?}",
        audit.findings
    );
}

#[test]
fn unwitnessed_obligation_row_fails_the_audit() {
    let design = read("DESIGN.md");
    let marker = "| `ESC.node-search` | escape |";
    assert!(design.contains(marker), "expected §9.8 table");
    // Prepend a row no annotation anywhere discharges.
    let ghost = "| `ESC.ghost-row` | escape | nowhere | nothing |\n";
    let at = design.find(marker).unwrap();
    let mut perturbed = design.clone();
    perturbed.insert_str(at, ghost);

    let mut files = WorkspaceFiles::new(&root());
    files.override_file("DESIGN.md", perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "obligation-drift" && f.message.contains("ESC.ghost-row")),
        "a table row with no witnessing annotation must be \
         obligation-drift, got: {:#?}",
        audit.findings
    );
}

#[test]
fn deleting_an_obligation_row_fails_the_audit() {
    let design = read("DESIGN.md");
    let row_start = design
        .find("| `VAL.ring-slot` | validate |")
        .expect("expected §9.8 row");
    let row_end = design[row_start..].find('\n').unwrap() + row_start + 1;
    let mut perturbed = design.clone();
    perturbed.replace_range(row_start..row_end, "");

    let mut files = WorkspaceFiles::new(&root());
    files.override_file("DESIGN.md", perturbed);
    let audit = run_audit(&files).expect("audit runs");
    assert!(
        audit
            .findings
            .iter()
            .any(|f| f.check == "obligation-drift" && f.message.contains("VAL.ring-slot")),
        "deleting the row out from under its annotations must be \
         obligation-drift, got: {:#?}",
        audit.findings
    );
}
