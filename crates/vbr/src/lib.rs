//! Version-based reclamation (VBR) behind the `lf_reclaim::Reclaim`
//! trait — the backend whose *read-only* operations skip the epoch pin
//! entirely ([`Reclaim::PIN_FREE_READS`]` = true`).
//!
//! Following the smr-benchmark VBR idiom (Sheffi, Morrison & Petrank's
//! scheme), objects live in type-stable pooled slots and every
//! allocation is stamped with a **birth epoch**; pointers embed the low
//! 16 bits of their target's birth (`lf_tagged`'s stamp bits), so an
//! optimistic reader can *validate* instead of *announce*:
//!
//! 1. load a stamped pointer from the structure;
//! 2. atomically word-copy whatever fields it needs
//!    (`lf_reclaim::atomic_read_copy`);
//! 3. `Acquire`-fence, then re-read the target's birth word — if it
//!    still matches the stamp (and no builder bit is set), the copy is
//!    untorn and belongs to the tenant the pointer named; otherwise
//!    **restart**.
//!
//! A stalled pin-free reader holds no announcement, so it cannot block
//! reclamation — the property E14's stalled-reader scenario measures
//! against EBR, where a stalled pin freezes the epoch and garbage grows
//! without bound.
//!
//! ## Division of labor
//!
//! This crate deliberately layers on the collector in `lf-reclaim`
//! rather than reimplementing epoch consensus:
//!
//! * **Writers** (and any pinned reader) pin exactly like EBR — insert
//!   and delete already dereference nodes they may unlink, and FR'04's
//!   helping protocol requires stable successors, so the pin stays the
//!   right tool off the read path. Epoch advance and the two-generation
//!   grace rule are the collector's, unchanged.
//! * **Birth/retire discipline** is what this crate adds:
//!   [`Vbr::birth_epoch`] stamps allocations with the global epoch, and
//!   because a retired slot can only be recycled after the epoch has
//!   advanced past `retire + GRACE`, a recycled slot's new birth is
//!   strictly greater than its previous tenant's — the inequality that
//!   makes step 3 above sound (DESIGN.md §13 gives the full argument).
//! * **Readers' safety against torn/stale data** lives in the seqlock
//!   publication protocol in `lf-core` (builder bit + fences) plus the
//!   `Pod` bound on pin-free-readable payloads: a discarded stale copy
//!   has no drop glue, and validation rejects any copy that overlapped
//!   a re-initialization.
//!
//! The residual risk of 16-bit stamps (reuse `2^16` epochs apart can
//! alias) is documented in DESIGN.md §13 with the DWCAS mitigation;
//! epochs advance only under quiescence of all pinned threads, so an
//! aliasing wrap during one bounded `try_read` attempt would require
//! the reader to straddle 65,536 full grace periods.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::Arc;

use lf_metrics::UnreclaimedGauge;
use lf_reclaim::{
    atomic_read_copy, atomic_write_copy, Collector, Guard, LocalHandle, Pod, Publish, Reclaim,
};

/// Version-based reclamation backend ([`Reclaim`] implementor).
pub struct Vbr;

/// A VBR domain: the shared epoch collector plus its retired/freed
/// gauge.
#[derive(Clone)]
pub struct VbrDomain {
    collector: Collector,
    gauge: Arc<UnreclaimedGauge>,
}

impl VbrDomain {
    /// The wrapped epoch collector.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }
}

impl fmt::Debug for VbrDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VbrDomain")
            .field("epoch", &self.collector.global_epoch())
            .finish_non_exhaustive()
    }
}

/// One thread's registration in a [`VbrDomain`]. Not `Send`.
pub struct VbrHandle {
    local: LocalHandle,
    collector: Collector,
    gauge: Arc<UnreclaimedGauge>,
}

impl VbrHandle {
    /// The wrapped concrete handle.
    pub fn local(&self) -> &LocalHandle {
        &self.local
    }
}

/// RAII pin for VBR's *writer* path (identical to EBR's guard —
/// pin-free reads never construct one).
pub struct VbrGuard<'h> {
    inner: Guard<'h>,
    handle: &'h VbrHandle,
}

impl<'h> VbrGuard<'h> {
    /// The wrapped concrete guard.
    pub fn inner(&self) -> &Guard<'h> {
        &self.inner
    }
}

/// Shadow storage for one pin-free-readable field: an unsynchronized
/// cell the backend copies into with per-word atomic stores at publish
/// time and out of with per-word atomic loads at snoop time. The cell
/// starts uninitialized ([`Default`] — nodes come out of the pool
/// before their first publication) and is only `assume_init`-ed by a
/// reader after birth-stamp validation proves the copy untorn.
pub struct VbrSlot<T> {
    cell: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Default for VbrSlot<T> {
    fn default() -> Self {
        VbrSlot {
            cell: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

// SAFETY: all access to the cell goes through the per-word atomic
// copies in `Publish for Vbr`; the type-level race window (torn or
// stale bytes) is resolved by the caller's seqlock validation, and
// `T: Pod` means a discarded copy carries no drop obligations.
unsafe impl<T: Send> Send for VbrSlot<T> {}
// SAFETY: as above — shared references only ever reach the cell via
// atomic word copies.
unsafe impl<T: Send> Sync for VbrSlot<T> {}

impl Reclaim for Vbr {
    type Domain = VbrDomain;
    type Handle = VbrHandle;
    type Guard<'h> = VbrGuard<'h>;
    type Slot<T> = VbrSlot<T>;

    const PIN_FREE_READS: bool = true;
    const NAME: &'static str = "vbr";

    fn new_domain() -> VbrDomain {
        VbrDomain {
            collector: Collector::new(),
            gauge: Arc::new(UnreclaimedGauge::new()),
        }
    }

    fn domain_eq(a: &VbrDomain, b: &VbrDomain) -> bool {
        a.collector.ptr_eq(&b.collector)
    }

    fn register(domain: &VbrDomain) -> VbrHandle {
        VbrHandle {
            local: domain.collector.register(),
            collector: domain.collector.clone(),
            gauge: Arc::clone(&domain.gauge),
        }
    }

    fn pin(handle: &VbrHandle) -> VbrGuard<'_> {
        VbrGuard {
            inner: handle.local.pin(),
            handle,
        }
    }

    // SAFETY: forwarded caller contract plus the Pod escape hatch
    // documented on the inner block: stale pin-free readers may copy
    // the slot's bytes after `f` runs, which is sound only because
    // pin-free-readable payloads have no drop glue.
    unsafe fn defer<F: FnOnce() + Send + 'static>(guard: &VbrGuard<'_>, _birth: u64, f: F) {
        guard.handle.gauge.record_retire(1);
        let gauge = Arc::clone(&guard.handle.gauge);
        // SAFETY: forwarded caller contract — object unreachable to new
        // operations, retired once. Stale *pin-free* readers may still
        // copy the slot's bytes after `f` runs; that is sound because
        // pin-free-readable payloads are `Pod` (no drop glue to
        // invalidate the bytes) and the slot memory is type-stable
        // pooled storage that stays allocated.
        unsafe {
            // unlink: UNLINK.backend-defer: backend shim — the caller's own
            // `// unlink:` site vouches for the unlink CAS
            guard.inner.defer_unchecked(move || {
                f();
                gauge.record_free(1);
            });
        }
    }

    fn birth_epoch(guard: &VbrGuard<'_>) -> u64 {
        // The caller is pinned (allocation happens inside an op), so
        // this epoch is at most one advance behind the true current
        // epoch — and, critically, at least `GRACE` ahead of the retire
        // epoch of the slot's previous tenant, because the pool only
        // recycles a slot after its retirement fired.
        guard.handle.collector.global_epoch()
    }

    fn read_epoch(domain: &VbrDomain) -> u64 {
        domain.collector.global_epoch()
    }

    fn gauge(domain: &VbrDomain) -> &UnreclaimedGauge {
        &domain.gauge
    }

    fn amortize_pins(handle: &VbrHandle, every: u32) {
        handle.local.amortize_pins(every);
    }

    fn quiesce(handle: &VbrHandle) {
        handle.local.quiesce();
    }

    fn flush(handle: &VbrHandle) {
        handle.local.flush();
    }

    fn queued(handle: &VbrHandle) -> usize {
        handle.local.queued()
    }
}

/// Genuine publication: only `Pod` payloads may sit behind a pin-free
/// read, and both directions are per-word atomic copies so a stale
/// snoop racing a re-publication is a *validated-away* value, never a
/// data race.
impl<T: Pod> Publish<T> for Vbr {
    // SAFETY: per the trait contract the caller is the initializing
    // thread and owns the slot's logical contents; see the inner block.
    unsafe fn publish(slot: &VbrSlot<T>, val: &T) {
        // SAFETY: the initializing thread owns the slot's contents
        // (caller contract); concurrent snoops touch the same bytes
        // only through atomic loads, which these atomic stores may
        // legally race with.
        unsafe { atomic_write_copy(slot.cell.get().cast::<T>(), *val) };
    }

    // SAFETY: per the trait contract the slot lives in type-stable
    // pooled storage; the copied bytes are only trusted after the
    // caller's birth-stamp validation.
    unsafe fn snoop(slot: &VbrSlot<T>) -> MaybeUninit<T> {
        // SAFETY: slot memory is type-stable pooled storage (caller
        // contract), so the allocation outlives the copy even if the
        // tenant is concurrently retired and recycled.
        unsafe { atomic_read_copy(slot.cell.get().cast::<T>().cast_const()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pin_free_reads_flag_is_set() {
        const { assert!(Vbr::PIN_FREE_READS) };
        assert_eq!(Vbr::NAME, "vbr");
    }

    #[test]
    fn birth_epochs_are_monotone_across_reclamation() {
        let domain = Vbr::new_domain();
        let handle = Vbr::register(&domain);
        let mut last = 0;
        for _ in 0..16 {
            let guard = Vbr::pin(&handle);
            let birth = Vbr::birth_epoch(&guard);
            assert!(birth >= last, "birth epoch went backwards");
            last = birth;
            // SAFETY: no-op retirement, retired once.
            unsafe { Vbr::defer(&guard, birth, || {}) };
            drop(guard);
            Vbr::flush(&handle);
        }
        assert!(last > 0, "epoch never advanced");
    }

    #[test]
    fn unpinned_stalled_reader_does_not_block_reclamation() {
        let domain = Vbr::new_domain();
        let writer = Vbr::register(&domain);
        // A VBR reader mid-`try_read` holds NO guard — simulate one by
        // simply registering and never pinning.
        let _stalled_reader = Vbr::register(&domain);

        let freed = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let guard = Vbr::pin(&writer);
            let f = Arc::clone(&freed);
            // SAFETY: counter bump, retired once.
            unsafe {
                Vbr::defer(&guard, Vbr::birth_epoch(&guard), move || {
                    f.fetch_add(1, Ordering::SeqCst);
                });
            }
            drop(guard);
            Vbr::flush(&writer);
        }
        assert!(
            freed.load(Ordering::SeqCst) > 0,
            "an unpinned reader must not hold back the epoch"
        );
        // Contrast: a *pinned* stall (EBR semantics) does block.
        let pinned = Vbr::register(&domain);
        let _hold = Vbr::pin(&pinned);
        for _ in 0..8 {
            let guard = Vbr::pin(&writer);
            let f = Arc::clone(&freed);
            // SAFETY: counter bump, retired once.
            unsafe {
                Vbr::defer(&guard, Vbr::birth_epoch(&guard), move || {
                    f.fetch_add(1, Ordering::SeqCst);
                });
            }
            drop(guard);
            Vbr::flush(&writer);
        }
        // Nothing retired after the pin may free (the epoch cannot
        // advance GRACE generations past the held announcement).
        let s = Vbr::gauge(&domain).snapshot();
        assert!(s.unreclaimed >= 8, "pinned stall failed to hold garbage");
        assert_eq!(s.retired, 72);
    }
}
