//! Lock-free per-thread event rings.
//!
//! Each recording thread owns one fixed-capacity ring of slots. The
//! owner is the only writer; the flight recorder reads every ring
//! *while writers may still be running* — that is the whole point of a
//! black box: when the watchdog trips because a worker is stuck, the
//! dump must not wait for the stuck worker to cooperate. Slots use a
//! per-slot sequence-lock (Boehm's atomic seqlock construction): the
//! writer flips the slot version odd, stores the payload words, and
//! publishes an even version with a release store; a reader that
//! observes an odd or changed version discards the slot instead of
//! reporting a half-written event. Every payload word is itself an
//! atomic, so a discarded read is merely stale — never undefined
//! behaviour.
//!
//! The ring keeps the newest `capacity` events per thread (oldest
//! overwritten), so a long run retains a bounded recent window — the
//! "recent event history" the flight recorder dumps.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::Event;

/// Default events retained per thread (`32 B` per slot → 128 KiB).
const DEFAULT_CAPACITY: usize = 4096;

/// Capacity hint applied to rings created after the store.
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// Dense trace thread-id allocator (first-record order).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// One event slot. `ver` is the slot's seqlock word: even = stable,
/// odd = mid-write. `seq == 0` means never written.
struct Slot {
    ver: AtomicU64,
    seq: AtomicU64,
    op: AtomicU64,
    meta: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            ver: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            op: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        }
    }
}

/// One thread's ring. Registered globally so [`snapshot_rings`] can
/// read it; only the owning thread writes.
pub(crate) struct ThreadRing {
    thread: u32,
    slots: Box<[Slot]>,
    /// Owner-only write cursor (next slot index, monotonically
    /// increasing; the slot is `head % capacity`).
    head: AtomicU64,
}

impl ThreadRing {
    fn new() -> Self {
        // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
        let thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) as u32;
        // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
        let cap = CAPACITY.load(Ordering::Relaxed).max(2);
        ThreadRing {
            thread,
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    pub(crate) fn thread_id(&self) -> u32 {
        self.thread
    }

    /// Owner-only append. The seqlock write protocol (see module docs)
    /// keeps concurrent snapshot readers from observing a half-written
    /// slot as a real event.
    pub(crate) fn push(&self, seq: u64, op: u64, meta: u64) {
        // ord: Relaxed — TRACE.head: owner-only cursor, snapshots never read it
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        // ord: Relaxed — TRACE.head: owner-only cursor, snapshots never read it
        self.head.store(h + 1, Ordering::Relaxed);
        // ord: Relaxed — TRACE.slot: seqlock writer side; the release fence below orders the odd store before the payload
        let v = slot.ver.load(Ordering::Relaxed);
        // ord: Relaxed — TRACE.slot: seqlock writer side; the release fence below orders the odd store before the payload
        slot.ver.store(v.wrapping_add(1), Ordering::Relaxed);
        // Release fence: any thread that observes a payload store below
        // also observes the odd version above, so a reader can never
        // pair new payload words with the old even version.
        // ord: Release — TRACE.slot: seqlock write-begin fence (odd version visible before payload)
        std::sync::atomic::fence(Ordering::Release);
        // ord: Relaxed — TRACE.slot: payload words, guarded by the version protocol
        slot.seq.store(seq, Ordering::Relaxed);
        // ord: Relaxed — TRACE.slot: payload words, guarded by the version protocol
        slot.op.store(op, Ordering::Relaxed);
        // ord: Relaxed — TRACE.slot: payload words, guarded by the version protocol
        slot.meta.store(meta, Ordering::Relaxed);
        // ord: Release — TRACE.slot: seqlock publish; pairs with the reader's acquire ver load
        slot.ver.store(v.wrapping_add(2), Ordering::Release);
    }

    /// Racy snapshot of every stable slot with `seq > floor`. Slots
    /// mid-write (odd version, or version changed across the payload
    /// reads) are skipped — stale beats torn.
    fn read_stable(&self, floor: u64, out: &mut Vec<Event>) {
        for slot in self.slots.iter() {
            // ord: Acquire — TRACE.slot: seqlock read-begin; pairs with the writer's release publish
            let v1 = slot.ver.load(Ordering::Acquire);
            if v1 == 0 || v1 & 1 == 1 {
                continue; // never written, or mid-write
            }
            // ord: Relaxed — TRACE.slot: payload words, guarded by the version protocol
            let seq = slot.seq.load(Ordering::Relaxed);
            // ord: Relaxed — TRACE.slot: payload words, guarded by the version protocol
            let op = slot.op.load(Ordering::Relaxed);
            // ord: Relaxed — TRACE.slot: payload words, guarded by the version protocol
            let meta = slot.meta.load(Ordering::Relaxed);
            // Acquire fence: orders the payload loads above before the
            // re-check below, so an unchanged version proves the
            // payload words all belong to one write.
            // ord: Acquire — TRACE.slot: seqlock read-validate fence before the version re-check
            std::sync::atomic::fence(Ordering::Acquire);
            // ord: Relaxed — TRACE.slot: version re-check; the fence above orders it after the payload loads
            let v2 = slot.ver.load(Ordering::Relaxed);
            if v1 != v2 || seq == 0 || seq <= floor {
                continue;
            }
            out.push(Event::unpack(seq, self.thread, op, meta));
        }
    }
}

/// Every live thread's ring (plus rings of exited threads, which stay
/// readable: the black box must survive its writers).
fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn rings() -> MutexGuard<'static, Vec<Arc<ThreadRing>>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static TL_RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing::new());
        rings().push(Arc::clone(&ring));
        ring
    };
}

/// Run `f` against the calling thread's ring (registering it on first
/// use). Best-effort during thread teardown, like the metrics shards.
#[inline]
pub(crate) fn with_local(f: impl FnOnce(&ThreadRing)) {
    let _ = TL_RING.try_with(|r| f(r));
}

/// Set the per-thread ring capacity (events kept per thread) for
/// threads that have not yet recorded their first event. Existing
/// rings keep their size.
pub fn set_ring_capacity(events: usize) {
    // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
    CAPACITY.store(events.max(2), Ordering::Relaxed);
}

/// The trace thread id the calling thread records under (registers the
/// ring if needed).
pub fn current_thread_id() -> u32 {
    TL_RING.with(|r| r.thread_id())
}

/// Merge every ring's stable events with `seq > floor` into one
/// seq-ordered timeline. Safe to call while writers are running (the
/// flight-recorder property); events from slots mid-overwrite are
/// dropped rather than torn.
pub(crate) fn snapshot_rings(floor: u64) -> Vec<Event> {
    let rs: Vec<Arc<ThreadRing>> = rings().clone();
    let mut out = Vec::new();
    for r in &rs {
        r.read_stable(floor, &mut out);
    }
    out.sort_unstable_by_key(|e| e.seq);
    out
}
