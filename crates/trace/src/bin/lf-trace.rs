//! `lf-trace` — query/report tool over flight-recorder dumps.
//!
//! ```text
//! lf-trace report <dump.jsonl>        reconstruct per-op critical paths,
//!                                     print retry-chain/helping stats
//! lf-trace check  <dump.jsonl>        validate JSON-lines framing and
//!                                     per-op phase well-formedness;
//!                                     exit 1 on any violation
//! lf-trace op <id> <dump.jsonl>       print one op's phase history
//! lf-trace json-check <file.json>     parse a single JSON document with
//!                                     the dump parser's JSON grammar;
//!                                     exit 1 if it does not parse
//! ```
//!
//! `json-check` exists for CI plumbing: other tools' machine reports
//! (e.g. `lf-lint --json`) are round-tripped through the same
//! dependency-free parser the dump reader uses, so a malformed emitter
//! fails the build instead of a downstream consumer.

use std::process::ExitCode;

use lf_trace::report::{parse_dump, Report};

fn usage() -> ExitCode {
    eprintln!("usage: lf-trace report <dump.jsonl>");
    eprintln!("       lf-trace check  <dump.jsonl>");
    eprintln!("       lf-trace op <id> <dump.jsonl>");
    eprintln!("       lf-trace json-check <file.json>");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<lf_trace::report::Dump, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_dump(&text)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match load(path) {
                Ok(dump) => {
                    println!(
                        "dump: {} (reason: {}, format v{})\n",
                        path, dump.reason, dump.version
                    );
                    print!("{}", Report::build(&dump.events).render());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("lf-trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match load(path).and_then(|d| {
                let r = Report::build(&d.events);
                r.check_all()?;
                Ok((d.events.len(), r.ops.len()))
            }) {
                Ok((events, ops)) => {
                    println!("ok: {events} events, {ops} ops, all sequences well-formed");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("lf-trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("op") => {
            let (Some(id), Some(path)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let Ok(id) = id.parse::<u64>() else {
                return usage();
            };
            match load(path) {
                Ok(dump) => {
                    let r = Report::build(&dump.events);
                    match r.ops.get(&id) {
                        Some(h) => {
                            for e in &h.events {
                                println!("{}", lf_trace::recorder::event_line(e));
                            }
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!("lf-trace: no events for op {id}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    eprintln!("lf-trace: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("json-check") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("lf-trace: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match lf_trace::json::parse(&text) {
                Ok(v) => {
                    let kind = match &v {
                        lf_trace::json::Value::Obj(fields) => {
                            format!("object with {} field(s)", fields.len())
                        }
                        lf_trace::json::Value::Arr(items) => {
                            format!("array with {} element(s)", items.len())
                        }
                        _ => "scalar".to_string(),
                    };
                    println!("ok: {path} parses ({kind})");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("lf-trace: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
