//! The black-box flight recorder.
//!
//! Dumps the merged, seq-ordered recent event history (every thread's
//! ring, torn slots skipped) as JSON-lines. Three triggers:
//!
//! * **watchdog trip** — [`crate::watchdog::Watchdog`] calls
//!   [`dump_to_path`] with the configured sink when it detects a stall;
//! * **`SIGUSR1`** — after [`install_sigusr1`], the signal handler
//!   raises a flag (nothing more: only async-signal-safe work happens
//!   in the handler) and the watchdog's monitor thread performs the
//!   dump on its next poll;
//! * **explicit call** — [`dump_to_string`] / [`dump_to_path`] from
//!   application code or tests.
//!
//! # Format
//!
//! One JSON object per line. The first line is a header:
//!
//! ```json
//! {"t":"header","version":1,"reason":"watchdog","events":123,"horizon":456}
//! ```
//!
//! then one line per event, seq-ascending:
//!
//! ```json
//! {"t":"event","seq":7,"thread":0,"op":3,"phase":"cas_fail","shard":1,"lane":0,"aux":2}
//! ```
//!
//! `shard`/`lane` are `null` when the event carried no tag. The format
//! is stable; `lf-trace report` and the CI smoke job parse it.

use std::io::Write as _;
use std::path::Path;

use crate::json::write_escaped;
use crate::{Event, NO_LANE, NO_SHARD};

/// Dump format version (bumped on incompatible changes).
pub const FORMAT_VERSION: u32 = 1;

/// Render one event as its JSON-lines object (no trailing newline).
pub fn event_line(e: &Event) -> String {
    let mut s = String::with_capacity(128);
    s.push_str("{\"t\":\"event\",\"seq\":");
    s.push_str(&e.seq.to_string());
    s.push_str(",\"thread\":");
    s.push_str(&e.thread.to_string());
    s.push_str(",\"op\":");
    s.push_str(&e.op.to_string());
    s.push_str(",\"phase\":\"");
    s.push_str(e.phase.label());
    s.push_str("\",\"shard\":");
    if e.shard == NO_SHARD {
        s.push_str("null");
    } else {
        s.push_str(&e.shard.to_string());
    }
    s.push_str(",\"lane\":");
    if e.lane == NO_LANE {
        s.push_str("null");
    } else {
        s.push_str(&e.lane.to_string());
    }
    s.push_str(",\"aux\":");
    s.push_str(&e.aux.to_string());
    s.push('}');
    s
}

/// Render a full dump (header + every currently stable event) as
/// JSON-lines. `reason` is recorded in the header (`"watchdog"`,
/// `"sigusr1"`, `"explicit"`, ...).
pub fn dump_to_string(reason: &str) -> String {
    render(reason, &crate::snapshot())
}

fn render(reason: &str, events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"t\":\"header\",\"version\":");
    out.push_str(&FORMAT_VERSION.to_string());
    out.push_str(",\"reason\":");
    write_escaped(&mut out, reason);
    out.push_str(",\"events\":");
    out.push_str(&events.len().to_string());
    out.push_str(",\"horizon\":");
    out.push_str(&crate::horizon().to_string());
    out.push_str("}\n");
    for e in events {
        out.push_str(&event_line(e));
        out.push('\n');
    }
    out
}

/// Dump to a file (created/truncated). Returns the number of events
/// written. Errors are returned, not panicked — the recorder is often
/// invoked while the process is already in trouble.
pub fn dump_to_path(path: &Path, reason: &str) -> std::io::Result<usize> {
    let events = crate::snapshot();
    let body = render(reason, &events);
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())?;
    f.flush()?;
    Ok(events.len())
}

/// The dump sink configured by the `LF_TRACE_DUMP` environment
/// variable, if set and non-empty. Experiments export it so a hung or
/// signalled run leaves its black box at a known path.
pub fn env_dump_path() -> Option<std::path::PathBuf> {
    match std::env::var("LF_TRACE_DUMP") {
        Ok(p) if !p.is_empty() => Some(p.into()),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// SIGUSR1 plumbing. The handler only sets an AtomicBool (the sole
// async-signal-safe action we need); the watchdog monitor polls and
// performs the actual dump on its own thread.

#[cfg(all(unix, not(miri)))]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the signal handler, consumed by the watchdog poll.
    static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

    // libc is not a dependency; bind the two symbols we need directly.
    // `signal` is in ISO C, present in every unix libc we target.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// `SIGUSR1` on every unix we target (linux, macOS, BSDs).
    const SIGUSR1: i32 = if cfg!(target_os = "linux") { 10 } else { 30 };

    extern "C" fn on_sigusr1(_sig: i32) {
        // ord: Relaxed — TRACE.sig: handler-to-monitor flag, polled; no data published through it
        DUMP_REQUESTED.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() {
        // SAFETY: installing a handler that only performs an atomic
        // store is async-signal-safe; `on_sigusr1` has the exact
        // `extern "C" fn(i32)` ABI `signal` expects.
        unsafe {
            signal(SIGUSR1, on_sigusr1 as *const () as usize);
        }
    }

    pub(super) fn take() -> bool {
        // ord: Relaxed — TRACE.sig: handler-to-monitor flag, polled; no data published through it
        DUMP_REQUESTED.swap(false, Ordering::Relaxed)
    }

    pub(super) fn request() {
        // ord: Relaxed — TRACE.sig: handler-to-monitor flag, polled; no data published through it
        DUMP_REQUESTED.store(true, Ordering::Relaxed);
    }
}

#[cfg(not(all(unix, not(miri))))]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

    pub(super) fn install() {}

    pub(super) fn take() -> bool {
        // ord: Relaxed — TRACE.sig: handler-to-monitor flag, polled; no data published through it
        DUMP_REQUESTED.swap(false, Ordering::Relaxed)
    }

    pub(super) fn request() {
        // ord: Relaxed — TRACE.sig: handler-to-monitor flag, polled; no data published through it
        DUMP_REQUESTED.store(true, Ordering::Relaxed);
    }
}

/// Install the `SIGUSR1` handler (idempotent; no-op on non-unix and
/// under Miri). After this, `kill -USR1 <pid>` requests a dump that
/// the watchdog monitor performs on its next poll.
pub fn install_sigusr1() {
    sig::install();
}

/// Consume a pending dump request (signal-raised or programmatic).
pub fn take_dump_request() -> bool {
    sig::take()
}

/// Programmatically raise the same flag the signal handler sets — lets
/// tests and embedders exercise the monitor's dump path without
/// process signals.
pub fn request_dump() {
    sig::request()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::Phase;

    #[test]
    fn dump_is_parseable_jsonl_with_header() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::clear();
        crate::enable();
        let scope = crate::op_scope();
        crate::emit_aux(Phase::CasFail, 3);
        scope.finish();
        drop(scope);
        crate::disable();
        let dump = dump_to_string("explicit");
        let mut lines = dump.lines();
        let header = json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("t").unwrap().as_str(), Some("header"));
        assert_eq!(header.get("reason").unwrap().as_str(), Some("explicit"));
        let n = header.get("events").unwrap().as_u64().unwrap() as usize;
        let events: Vec<_> = lines.map(|l| json::parse(l).unwrap()).collect();
        assert_eq!(events.len(), n);
        assert!(n >= 2);
        assert!(events
            .iter()
            .any(|e| e.get("phase").unwrap().as_str() == Some("cas_fail")));
        // Untagged events serialize shard/lane as null.
        assert!(events
            .iter()
            .all(|e| e.get("t").unwrap().as_str() == Some("event")));
    }

    #[test]
    fn dump_request_flag_roundtrips() {
        assert!(!take_dump_request());
        request_dump();
        assert!(take_dump_request());
        assert!(!take_dump_request());
    }

    #[test]
    fn dump_to_path_writes_file() {
        let _g = crate::tests::TEST_LOCK.lock().unwrap();
        crate::clear();
        crate::enable();
        crate::emit(Phase::Search);
        crate::disable();
        let path = std::env::temp_dir().join(format!(
            "lf-trace-test-{}-{}.jsonl",
            std::process::id(),
            crate::current_thread_id()
        ));
        let n = dump_to_path(&path, "test").unwrap();
        assert!(n >= 1);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), n + 1);
        for line in body.lines() {
            json::parse(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
