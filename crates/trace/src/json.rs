//! Minimal JSON support for the flight recorder and report tool.
//!
//! The workspace is dependency-free by policy (ROADMAP: no external
//! crates), so the recorder hand-writes its JSON-lines and the report
//! tool carries its own small recursive-descent parser. The parser
//! accepts the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) — enough to read recorder dumps
//! *and* the committed `BENCH_*.json` baselines in the overhead test.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Numbers are kept as `f64` (the dump format
/// only stores integers well inside the 2^53 exact range; `seq`/`op`
/// stamps from realistic runs fit comfortably).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved; keys sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing whitespace allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(arr));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // recorder; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

/// Append `s` to `out` as a JSON string literal (escaping quotes,
/// backslashes, and control characters).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse(r#""a\"b\nA""#).unwrap(), Value::Str("a\"b\nA".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            parse(r#"{"rows": [{"name": "fr-e4", "medians": [1, 2.5, 3]}], "ok": true}"#).unwrap();
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("fr-e4"));
        assert_eq!(
            rows[0].get("medians").unwrap().as_arr().unwrap()[1].as_num(),
            Some(2.5)
        );
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(parse(&s).unwrap(), Value::Str("a\"b\\c\nd\te\u{1}".into()));
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
