//! Trace query/report: reconstruct per-op critical paths and
//! retry/helping statistics from a flight-recorder dump (or a live
//! snapshot).
//!
//! Used by the `lf-trace` binary (`lf-trace report dump.jsonl`) and by
//! tests that assert a dump reconstructs a stalled op's phase history.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::{Event, Phase};

/// A parsed flight-recorder dump.
#[derive(Debug)]
pub struct Dump {
    /// Header `reason` field.
    pub reason: String,
    /// Dump format version.
    pub version: u32,
    /// All events, seq-ascending (re-sorted defensively on parse).
    pub events: Vec<Event>,
}

/// Parse the recorder's JSON-lines format (see [`crate::recorder`]).
pub fn parse_dump(text: &str) -> Result<Dump, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty dump")?;
    let header = json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("t").and_then(Value::as_str) != Some("header") {
        return Err("line 1: not a dump header".into());
    }
    let reason = header
        .get("reason")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let version = header
        .get("version")
        .and_then(Value::as_u64)
        .ok_or("header missing version")? as u32;
    let declared = header.get("events").and_then(Value::as_u64);

    let mut events = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if v.get("t").and_then(Value::as_str) != Some("event") {
            return Err(format!("line {}: not an event record", i + 1));
        }
        let phase_label = v
            .get("phase")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing phase", i + 1))?;
        let phase = Phase::from_label(phase_label)
            .ok_or_else(|| format!("line {}: unknown phase {phase_label:?}", i + 1))?;
        let num = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: missing {k}", i + 1))
        };
        events.push(Event {
            seq: num("seq")?,
            thread: num("thread")? as u32,
            op: num("op")?,
            phase,
            shard: v
                .get("shard")
                .and_then(Value::as_u64)
                .map_or(crate::NO_SHARD, |s| s as u16),
            lane: v
                .get("lane")
                .and_then(Value::as_u64)
                .map_or(crate::NO_LANE, |l| l as u8),
            aux: num("aux")? as u32,
        });
    }
    if let Some(n) = declared {
        if n as usize != events.len() {
            return Err(format!(
                "header declares {n} events, dump has {}",
                events.len()
            ));
        }
    }
    events.sort_unstable_by_key(|e| e.seq);
    Ok(Dump {
        reason,
        version,
        events,
    })
}

/// One op's reconstructed phase history.
#[derive(Debug)]
pub struct OpHistory {
    /// The op id.
    pub op: u64,
    /// Its events, seq-ascending (the causal path, minus overwritten
    /// prefix if the ring wrapped).
    pub events: Vec<Event>,
}

impl OpHistory {
    /// Phases in order, the op's "critical path" through the stack.
    pub fn phases(&self) -> Vec<Phase> {
        self.events.iter().map(|e| e.phase).collect()
    }

    /// Count of events with the given phase.
    pub fn count(&self, phase: Phase) -> usize {
        self.events.iter().filter(|e| e.phase == phase).count()
    }

    /// Whether the op recorded its `complete` event.
    pub fn completed(&self) -> bool {
        self.count(Phase::Complete) > 0
    }

    /// Check the well-formedness rules for one op's recorded sequence
    /// (used by the proptest satellite and by `report --check`):
    ///
    /// 1. events are strictly seq-ascending;
    /// 2. at most one `complete`, and if present it is last;
    /// 3. `dequeue` never precedes `enqueue` (when both present);
    /// 4. the first structure phase (`search`, `cas_fail`, ...) never
    ///    precedes `dequeue` when the op went through a lane.
    ///
    /// Ring wrap-around can truncate an op's *prefix* (oldest events
    /// overwritten), so rules 3–4 only apply when the earlier phase
    /// survived.
    pub fn check(&self) -> Result<(), String> {
        let seqs: Vec<u64> = self.events.iter().map(|e| e.seq).collect();
        if !seqs.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("op {}: events not strictly seq-ordered", self.op));
        }
        let completes: Vec<usize> = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.phase == Phase::Complete)
            .map(|(i, _)| i)
            .collect();
        if completes.len() > 1 {
            return Err(format!(
                "op {}: {} complete events",
                self.op,
                completes.len()
            ));
        }
        if let Some(&i) = completes.first() {
            if i != self.events.len() - 1 {
                return Err(format!("op {}: events after complete", self.op));
            }
        }
        let first_pos = |p: Phase| self.events.iter().position(|e| e.phase == p);
        if let (Some(enq), Some(deq)) = (first_pos(Phase::Enqueue), first_pos(Phase::Dequeue)) {
            if deq < enq {
                return Err(format!("op {}: dequeue before enqueue", self.op));
            }
        }
        if let (Some(deq), Some(search)) = (first_pos(Phase::Dequeue), first_pos(Phase::Search)) {
            if search < deq {
                return Err(format!("op {}: search before dequeue", self.op));
            }
        }
        Ok(())
    }
}

/// Aggregated view over a set of events.
#[derive(Debug)]
pub struct Report {
    /// Per-op histories, keyed by op id (op 0 — unattributed events —
    /// excluded; see [`Report::unattributed`]).
    pub ops: BTreeMap<u64, OpHistory>,
    /// Events carrying no op id.
    pub unattributed: usize,
    /// Total events per phase.
    pub phase_totals: BTreeMap<Phase, usize>,
}

impl Report {
    /// Group `events` (seq-ascending or not) by op.
    pub fn build(events: &[Event]) -> Report {
        let mut ops: BTreeMap<u64, OpHistory> = BTreeMap::new();
        let mut unattributed = 0usize;
        let mut phase_totals: BTreeMap<Phase, usize> = BTreeMap::new();
        let mut sorted: Vec<Event> = events.to_vec();
        sorted.sort_unstable_by_key(|e| e.seq);
        for e in sorted {
            *phase_totals.entry(e.phase).or_insert(0) += 1;
            if e.op == 0 {
                unattributed += 1;
                continue;
            }
            ops.entry(e.op)
                .or_insert_with(|| OpHistory {
                    op: e.op,
                    events: Vec::new(),
                })
                .events
                .push(e);
        }
        Report {
            ops,
            unattributed,
            phase_totals,
        }
    }

    /// Ops that never recorded `complete` — the suspects in a stall.
    pub fn incomplete(&self) -> Vec<&OpHistory> {
        self.ops.values().filter(|h| !h.completed()).collect()
    }

    /// Check every op's phase sequence; first violation wins.
    pub fn check_all(&self) -> Result<(), String> {
        self.ops.values().try_for_each(OpHistory::check)
    }

    /// Render the human-readable report: phase totals, retry/helping
    /// statistics, worst retry chains, and incomplete ops.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total: usize = self.phase_totals.values().sum();
        let _ = writeln!(
            out,
            "events: {total}  ops: {}  unattributed: {}",
            self.ops.len(),
            self.unattributed
        );
        let _ = writeln!(out, "\nphase totals:");
        for p in Phase::ALL {
            if let Some(n) = self.phase_totals.get(&p) {
                let _ = writeln!(out, "  {:<14} {n}", p.label());
            }
        }

        let attempts: usize = self.phase_totals.get(&Phase::CasFail).copied().unwrap_or(0);
        let walks = self
            .phase_totals
            .get(&Phase::BacklinkWalk)
            .copied()
            .unwrap_or(0);
        let helps = self.phase_totals.get(&Phase::Help).copied().unwrap_or(0);
        let completes = self
            .phase_totals
            .get(&Phase::Complete)
            .copied()
            .unwrap_or(0);
        let _ = writeln!(out, "\nretry/helping:");
        let per = |n: usize| {
            if completes == 0 {
                "n/a".to_string()
            } else {
                format!("{:.3}", n as f64 / completes as f64)
            }
        };
        let _ = writeln!(
            out,
            "  cas-fails: {attempts} ({} per completed op)",
            per(attempts)
        );
        let _ = writeln!(
            out,
            "  backlink-walks: {walks} ({} per completed op)",
            per(walks)
        );
        let _ = writeln!(out, "  helps: {helps} ({} per completed op)", per(helps));

        let mut chains: Vec<(&u64, usize)> = self
            .ops
            .iter()
            .map(|(op, h)| (op, h.count(Phase::CasFail) + h.count(Phase::BacklinkWalk)))
            .filter(|(_, n)| *n > 0)
            .collect();
        chains.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        if !chains.is_empty() {
            let _ = writeln!(out, "\nworst retry chains:");
            for (op, n) in chains.iter().take(5) {
                let h = &self.ops[op];
                let _ = writeln!(
                    out,
                    "  op {op}: {n} retries over {} events{}",
                    h.events.len(),
                    if h.completed() { "" } else { "  [INCOMPLETE]" }
                );
            }
        }

        let incomplete = self.incomplete();
        if incomplete.is_empty() {
            let _ = writeln!(out, "\nincomplete ops: none");
        } else {
            let _ = writeln!(out, "\nincomplete ops ({}):", incomplete.len());
            for h in incomplete.iter().take(10) {
                let path: Vec<&str> = h.phases().iter().map(|p| p.label()).collect();
                let where_at = h
                    .events
                    .iter()
                    .find(|e| e.shard != crate::NO_SHARD || e.lane != crate::NO_LANE);
                let tag = match where_at {
                    Some(e) if e.shard != crate::NO_SHARD && e.lane != crate::NO_LANE => {
                        format!(" (shard {}, lane {})", e.shard, e.lane)
                    }
                    Some(e) if e.shard != crate::NO_SHARD => format!(" (shard {})", e.shard),
                    Some(e) => format!(" (lane {})", e.lane),
                    None => String::new(),
                };
                let _ = writeln!(out, "  op {}{}: {}", h.op, tag, path.join(" -> "));
            }
            if incomplete.len() > 10 {
                let _ = writeln!(out, "  ... and {} more", incomplete.len() - 10);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NO_LANE, NO_SHARD};

    fn ev(seq: u64, op: u64, phase: Phase) -> Event {
        Event {
            seq,
            thread: 0,
            op,
            phase,
            shard: NO_SHARD,
            lane: NO_LANE,
            aux: 0,
        }
    }

    #[test]
    fn dump_roundtrips_through_parse() {
        let events = [
            ev(1, 1, Phase::Enqueue),
            ev(2, 1, Phase::Dequeue),
            ev(3, 1, Phase::Search),
            ev(4, 1, Phase::Complete),
            ev(5, 0, Phase::EpochAdvance),
        ];
        let mut text = String::from(
            "{\"t\":\"header\",\"version\":1,\"reason\":\"test\",\"events\":5,\"horizon\":5}\n",
        );
        for e in &events {
            text.push_str(&crate::recorder::event_line(e));
            text.push('\n');
        }
        let dump = parse_dump(&text).unwrap();
        assert_eq!(dump.reason, "test");
        assert_eq!(dump.events, events);
    }

    #[test]
    fn parse_rejects_event_count_mismatch() {
        let text = "{\"t\":\"header\",\"version\":1,\"reason\":\"x\",\"events\":2,\"horizon\":9}\n";
        assert!(parse_dump(text).unwrap_err().contains("declares 2"));
    }

    #[test]
    fn report_groups_and_flags_incomplete() {
        let events = vec![
            ev(1, 1, Phase::Search),
            ev(2, 2, Phase::Search),
            ev(3, 1, Phase::CasFail),
            ev(4, 1, Phase::Complete),
            ev(5, 2, Phase::CasFail),
            ev(6, 2, Phase::BacklinkWalk),
            ev(7, 0, Phase::Retire),
        ];
        let r = Report::build(&events);
        assert_eq!(r.ops.len(), 2);
        assert_eq!(r.unattributed, 1);
        assert!(r.ops[&1].completed());
        assert!(!r.ops[&2].completed());
        assert_eq!(r.incomplete().len(), 1);
        r.check_all().unwrap();
        let text = r.render();
        assert!(text.contains("incomplete ops (1)"));
        assert!(text.contains("search -> cas_fail -> backlink_walk"));
    }

    #[test]
    fn check_rejects_malformed_sequences() {
        let double_complete = OpHistory {
            op: 9,
            events: vec![ev(1, 9, Phase::Complete), ev(2, 9, Phase::Complete)],
        };
        assert!(double_complete.check().is_err());

        let after_complete = OpHistory {
            op: 9,
            events: vec![ev(1, 9, Phase::Complete), ev(2, 9, Phase::Search)],
        };
        assert!(after_complete.check().is_err());

        let deq_before_enq = OpHistory {
            op: 9,
            events: vec![ev(1, 9, Phase::Dequeue), ev(2, 9, Phase::Enqueue)],
        };
        assert!(deq_before_enq.check().is_err());

        let ok = OpHistory {
            op: 9,
            events: vec![
                ev(1, 9, Phase::Enqueue),
                ev(2, 9, Phase::Dequeue),
                ev(3, 9, Phase::Search),
                ev(4, 9, Phase::CasFail),
                ev(5, 9, Phase::Search),
                ev(6, 9, Phase::Complete),
            ],
        };
        ok.check().unwrap();
    }
}
