//! Cross-layer **causal** op tracing for the lock-free stack.
//!
//! `lf-metrics` (PR 1) answers *how much*: counters and histograms of
//! essential steps. This crate answers *which op, where, blocked by
//! what*: every logical operation gets a 64-bit [`OpId`] minted at the
//! front door (the `lf-async` submission path, or the sync API boundary
//! via `lf_metrics::op_begin`), carried by thread-local context through
//! `lf-shard` routing into the `lf-core` hot paths, with [`Phase`]
//! events recorded into lock-free per-thread ring buffers
//! (generalizing the feature-gated tracer `lf-metrics` shipped in
//! PR 1 — these rings are always compiled, runtime-toggled, and
//! readable mid-flight).
//!
//! Three consumers sit on top:
//!
//! * the **stall watchdog** ([`watchdog`]) — per-lane heartbeats plus
//!   an epoch-advance monitor that detects stuck workers, runaway
//!   retry loops, and reclamation stalls;
//! * the **black-box flight recorder** ([`recorder`]) — on watchdog
//!   trip, `SIGUSR1`, or explicit call, dump the merged, seq-ordered
//!   recent event history as JSON lines, so a hang is diagnosable from
//!   the artifact alone;
//! * the **report tool** ([`report`], `lf-trace` binary) — reconstruct
//!   per-op phase histories and print retry-chain / helping
//!   statistics from a dump.
//!
//! # Cost contract
//!
//! With tracing **disabled** (the default) every hook is one relaxed
//! load and a predictable branch — the same shape as the
//! `lf-metrics` kill-switches, budgeted at ≤ 1 % by
//! `crates/bench/tests/trace_overhead.rs`. **Enabled**, each recorded
//! event is one relaxed global `fetch_add` (the seq stamp) plus an
//! owner-only seqlock write into the thread's ring (≤ 10 % budget,
//! same test). Events are *per phase transition*, not per pointer hop:
//! the high-frequency `curr`/`next` traversal steps stay counters-only
//! in `lf-metrics`.
//!
//! # OpId propagation rules (normative, DESIGN.md §12)
//!
//! * The id is minted once per logical op, at the outermost boundary
//!   that sees it: [`mint_op`] on the async submission path, or
//!   [`op_scope`] (called by `lf_metrics::op_begin`) for bare sync
//!   calls. An inner boundary that finds a current id **inherits** it.
//! * The id travels in an [`OpCell`-style carrier across threads and
//!   in thread-local context within a thread; it never rides in an
//!   `.await`-crossing closure without its carrier ([`enter_op`] on
//!   the worker re-establishes it before any structure access).
//! * Whoever minted the id emits its [`Phase::Complete`].
//!
//! [`OpCell`-style carrier across threads and
//! in thread-local context within a thread; it never rides in an
//! `.await`-crossing closure without its carrier ([`enter_op`] on
//! the worker re-establishes it before any structure access).]: crate::enter_op

mod ring;

pub mod json;
pub mod recorder;
pub mod report;
pub mod watchdog;

pub use ring::{current_thread_id, set_ring_capacity};

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A logical operation's identity: nonzero once minted, `0` meaning
/// "no op context" (events recorded outside any op, or before tracing
/// was enabled).
pub type OpId = u64;

/// Sentinel shard tag: event not attributed to a shard.
pub const NO_SHARD: u16 = u16::MAX;
/// Sentinel lane tag: event not attributed to a submission lane.
pub const NO_LANE: u8 = u8::MAX;

/// What happened, at one point of one logical operation's life.
///
/// The taxonomy follows the op's causal path through the stack:
/// `Enqueue`/`Dequeue` at the async front door, `Pin` when the worker
/// (re-)announces an epoch, `Search` when the structure op starts its
/// traversal, then the contention phases (`CasFail`, `BacklinkWalk`,
/// `Flag`, `Mark`, `Help`), the reclamation phases (`Retire`,
/// `EpochAdvance`), and `Complete`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Phase {
    /// Request enqueued onto a submission lane (`aux` = lane depth).
    Enqueue = 0,
    /// Request popped by a lane worker (`aux` = batch size).
    Dequeue = 1,
    /// Epoch announcement (re-)published by the executing thread.
    Pin = 2,
    /// Structure op began its search/traversal.
    Search = 3,
    /// A C&S attempt failed (`aux` = CAS type, Def. 4 discriminant).
    CasFail = 4,
    /// Backlink recovery walk step (op was pushed back by a deletion).
    BacklinkWalk = 5,
    /// Flag CAS succeeded (deletion step 1).
    Flag = 6,
    /// Mark CAS succeeded (deletion step 2).
    Mark = 7,
    /// Helped another op's deletion to completion (physical unlink).
    Help = 8,
    /// A node was retired to the epoch collector.
    Retire = 9,
    /// The global epoch advanced (reclamation is making progress).
    EpochAdvance = 10,
    /// The logical op finished (`aux` = completion code: 0 ok,
    /// 1 shed, 2 shutdown, 3 rejected, 4 resubmitted — the op bounced
    /// off a full lane under `Block` and retries under a fresh id).
    Complete = 11,
}

impl Phase {
    /// All phases, in discriminant order.
    pub const ALL: [Phase; 12] = [
        Phase::Enqueue,
        Phase::Dequeue,
        Phase::Pin,
        Phase::Search,
        Phase::CasFail,
        Phase::BacklinkWalk,
        Phase::Flag,
        Phase::Mark,
        Phase::Help,
        Phase::Retire,
        Phase::EpochAdvance,
        Phase::Complete,
    ];

    /// Snake-case label (stable: the flight-recorder dump format).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Enqueue => "enqueue",
            Phase::Dequeue => "dequeue",
            Phase::Pin => "pin",
            Phase::Search => "search",
            Phase::CasFail => "cas_fail",
            Phase::BacklinkWalk => "backlink_walk",
            Phase::Flag => "flag",
            Phase::Mark => "mark",
            Phase::Help => "help",
            Phase::Retire => "retire",
            Phase::EpochAdvance => "epoch_advance",
            Phase::Complete => "complete",
        }
    }

    /// Inverse of [`Phase::label`].
    pub fn from_label(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == s)
    }

    fn from_u8(v: u8) -> Option<Phase> {
        Phase::ALL.get(v as usize).copied()
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded event, unpacked from its ring slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Globally unique, allocation-ordered stamp (starts at 1).
    pub seq: u64,
    /// Dense id of the recording thread (first-record order).
    pub thread: u32,
    /// The logical op this event belongs to (0 = unattributed).
    pub op: OpId,
    /// What happened.
    pub phase: Phase,
    /// Shard the op was routed to ([`NO_SHARD`] if none).
    pub shard: u16,
    /// Submission lane serving the op ([`NO_LANE`] if none).
    pub lane: u8,
    /// Phase-specific argument (see [`Phase`] docs).
    pub aux: u32,
}

impl Event {
    /// Pack phase/lane/shard/aux into one ring-slot word.
    fn pack_meta(phase: Phase, shard: u16, lane: u8, aux: u32) -> u64 {
        ((phase as u64) << 56) | ((lane as u64) << 48) | ((shard as u64) << 32) | aux as u64
    }

    pub(crate) fn unpack(seq: u64, thread: u32, op: u64, meta: u64) -> Event {
        Event {
            seq,
            thread,
            op,
            phase: Phase::from_u8((meta >> 56) as u8).unwrap_or(Phase::Complete),
            shard: (meta >> 32) as u16,
            lane: (meta >> 48) as u8,
            aux: meta as u32,
        }
    }
}

/// Runtime kill-switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Global event-sequence stamp allocator (0 reserved for "empty slot").
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Global [`OpId`] allocator (0 reserved for "no op").
static NEXT_OP: AtomicU64 = AtomicU64::new(0);
/// Snapshot floor: events with `seq <=` this are logically cleared.
static FLOOR: AtomicU64 = AtomicU64::new(0);

/// Turn event recording on.
pub fn enable() {
    // ord: Relaxed — TRACE.toggle: advisory kill-switch, no data guarded
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn event recording off (rings keep their contents).
pub fn disable() {
    // ord: Relaxed — TRACE.toggle: advisory kill-switch, no data guarded
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether events are currently being recorded.
#[inline]
pub fn is_enabled() -> bool {
    // ord: Relaxed — TRACE.toggle: advisory kill-switch, no data guarded
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// The op the calling thread is currently executing on behalf of.
    static CUR_OP: Cell<OpId> = const { Cell::new(0) };
    /// The shard the current op was routed to.
    static CUR_SHARD: Cell<u16> = const { Cell::new(NO_SHARD) };
    /// The submission lane this thread serves (workers set it once).
    static CUR_LANE: Cell<u8> = const { Cell::new(NO_LANE) };
}

/// Mint a fresh [`OpId`] (returns 0 when tracing is disabled, which
/// every downstream hook treats as "unattributed"). The async front
/// door calls this once per submitted request.
#[inline]
pub fn mint_op() -> OpId {
    if !is_enabled() {
        return 0;
    }
    // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
    NEXT_OP.fetch_add(1, Ordering::Relaxed) + 1
}

/// The [`OpId`] the calling thread is currently attributed to (0 when
/// none).
#[inline]
pub fn current_op() -> OpId {
    CUR_OP.with(Cell::get)
}

/// RAII scope establishing the current op at a **sync API boundary**:
/// mints a fresh id if the thread has none (bare sync call), inherits
/// the existing one otherwise (op minted upstream, e.g. by the async
/// front door). Dropping the scope restores the previous state.
///
/// Created by `lf_metrics::op_begin` for every structure op, so sync
/// callers get causal attribution without touching this crate.
#[derive(Debug)]
pub struct OpScope {
    /// Whether this scope minted the id (and thus owns its Complete).
    minted: bool,
    /// Whether the scope is live at all (tracing was enabled).
    active: bool,
}

impl OpScope {
    /// Emit [`Phase::Complete`] if this scope minted the op id. Call
    /// at the op's end (e.g. from `lf_metrics::op_end`); the id the
    /// scope set is cleared on drop either way.
    pub fn finish(&self) {
        if self.active && self.minted {
            emit_aux(Phase::Complete, 0);
        }
    }
}

impl Drop for OpScope {
    fn drop(&mut self) {
        if self.active && self.minted {
            CUR_OP.with(|c| c.set(0));
        }
    }
}

/// Open an [`OpScope`] at a sync API boundary (see its docs).
#[inline]
#[must_use = "the scope clears the op context on drop"]
pub fn op_scope() -> OpScope {
    if !is_enabled() {
        return OpScope {
            minted: false,
            active: false,
        };
    }
    let minted = CUR_OP.with(|c| {
        if c.get() != 0 {
            false
        } else {
            // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
            c.set(NEXT_OP.fetch_add(1, Ordering::Relaxed) + 1);
            true
        }
    });
    OpScope {
        minted,
        active: true,
    }
}

/// RAII guard adopting an externally minted [`OpId`] on the calling
/// thread — the worker-side half of the propagation rule: a lane
/// worker that dequeues a request re-establishes the request's id
/// *before* any structure access, so the `lf-core` hooks attribute
/// their events to the submitting task's op, not to the worker.
#[derive(Debug)]
pub struct OpGuard {
    prev: OpId,
    active: bool,
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if self.active {
            CUR_OP.with(|c| c.set(self.prev));
        }
    }
}

/// Adopt `op` as the calling thread's current op (no-op for `op == 0`).
#[inline]
#[must_use = "the guard restores the previous op context on drop"]
pub fn enter_op(op: OpId) -> OpGuard {
    if op == 0 {
        return OpGuard {
            prev: 0,
            active: false,
        };
    }
    let prev = CUR_OP.with(|c| c.replace(op));
    OpGuard { prev, active: true }
}

/// RAII guard tagging events with the shard an op was routed to.
#[derive(Debug)]
pub struct ShardGuard {
    prev: u16,
    active: bool,
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        if self.active {
            CUR_SHARD.with(|c| c.set(self.prev));
        }
    }
}

/// Tag subsequent events on this thread with `shard` (cheap: two
/// thread-local cell writes; skipped entirely while tracing is
/// disabled).
#[inline]
#[must_use = "the guard restores the previous shard tag on drop"]
pub fn shard_scope(shard: u16) -> ShardGuard {
    if !is_enabled() {
        return ShardGuard {
            prev: NO_SHARD,
            active: false,
        };
    }
    let prev = CUR_SHARD.with(|c| c.replace(shard));
    ShardGuard { prev, active: true }
}

/// Declare the calling thread a submission-lane worker: every event it
/// records is tagged with `lane`. Sticky for the thread's lifetime
/// (workers are long-lived and serve exactly one lane).
pub fn set_thread_lane(lane: u8) {
    CUR_LANE.with(|c| c.set(lane));
}

/// Record `phase` for the current thread context (op/shard/lane from
/// TLS). One relaxed load and a branch when tracing is disabled.
#[inline]
pub fn emit(phase: Phase) {
    emit_aux(phase, 0);
}

/// [`emit`] with a phase-specific argument.
#[inline]
pub fn emit_aux(phase: Phase, aux: u32) {
    if !is_enabled() {
        return;
    }
    record_current(phase, aux);
}

/// Record `phase` for an explicit op (the async submit/complete path,
/// where the op id lives in the cell rather than in TLS).
#[inline]
pub fn emit_for(op: OpId, phase: Phase, aux: u32) {
    if !is_enabled() {
        return;
    }
    let (shard, lane) = (CUR_SHARD.with(Cell::get), CUR_LANE.with(Cell::get));
    record(op, phase, shard, lane, aux);
}

#[cold]
fn record_current(phase: Phase, aux: u32) {
    let op = CUR_OP.with(Cell::get);
    let (shard, lane) = (CUR_SHARD.with(Cell::get), CUR_LANE.with(Cell::get));
    record(op, phase, shard, lane, aux);
}

fn record(op: OpId, phase: Phase, shard: u16, lane: u8, aux: u32) {
    // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let meta = Event::pack_meta(phase, shard, lane, aux);
    ring::with_local(|r| r.push(seq, op, meta));
}

/// Merge every thread's ring into one seq-ordered timeline of the
/// events since the last [`clear`]. Safe to call while writers run
/// (events mid-overwrite are skipped, never torn); per thread the
/// result is program order, across threads it is stamp-allocation
/// order.
pub fn snapshot() -> Vec<Event> {
    // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
    ring::snapshot_rings(FLOOR.load(Ordering::Relaxed))
}

/// Logically discard all recorded events: later [`snapshot`]s only see
/// events recorded after this call. (The rings are not touched — a
/// concurrent writer cannot be raced safely — the floor just moves.)
pub fn clear() {
    // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
    FLOOR.store(SEQ.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The current global sequence stamp — a horizon marker: events
/// recorded after this call have `seq >` the returned value.
pub fn horizon() -> u64 {
    // ord: Relaxed — TRACE.seq: id tickets / capacity hint need only RMW atomicity
    SEQ.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Progress counters (fed by lf-reclaim; sampled by the watchdog).
// Unconditional — the watchdog must see reclamation progress even with
// event tracing disabled — but retire/advance are off the per-op hot
// path (once per freed node / once per epoch), so a relaxed fetch_add
// is immaterial.

/// Global count of epoch advances (reclamation progress signal).
static EPOCH_ADVANCES: AtomicU64 = AtomicU64::new(0);
/// Global count of retired nodes (reclamation *pressure* signal).
static RETIRES: AtomicU64 = AtomicU64::new(0);

/// Note one global epoch advance (called by `lf-reclaim`); also emits
/// [`Phase::EpochAdvance`] when tracing is enabled.
#[inline]
pub fn note_epoch_advance() {
    // ord: Relaxed — TRACE.epoch: monotone progress counters, watchdog samples racy-fresh
    EPOCH_ADVANCES.fetch_add(1, Ordering::Relaxed);
    emit(Phase::EpochAdvance);
}

/// Note one retired node (called by `lf-reclaim`); also emits
/// [`Phase::Retire`] when tracing is enabled.
#[inline]
pub fn note_retire() {
    // ord: Relaxed — TRACE.epoch: monotone progress counters, watchdog samples racy-fresh
    RETIRES.fetch_add(1, Ordering::Relaxed);
    emit(Phase::Retire);
}

/// Cumulative epoch advances (watchdog sampling).
pub fn epoch_advances() -> u64 {
    // ord: Relaxed — TRACE.epoch: monotone progress counters, watchdog samples racy-fresh
    EPOCH_ADVANCES.load(Ordering::Relaxed)
}

/// Cumulative retired nodes (watchdog sampling).
pub fn retires() -> u64 {
    // ord: Relaxed — TRACE.epoch: monotone progress counters, watchdog samples racy-fresh
    RETIRES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Trace state is process-global; serialize tests touching it.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_emits_nothing_and_mints_zero() {
        let _g = TEST_LOCK.lock().unwrap();
        disable();
        clear();
        assert_eq!(mint_op(), 0);
        emit(Phase::Search);
        let s = op_scope();
        s.finish();
        drop(s);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn sync_scope_mints_attributes_and_completes() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        enable();
        let scope = op_scope();
        let id = current_op();
        assert_ne!(id, 0);
        emit(Phase::Search);
        emit_aux(Phase::CasFail, 1);
        scope.finish();
        drop(scope);
        assert_eq!(current_op(), 0);
        disable();
        let tid = current_thread_id();
        let evs: Vec<Event> = snapshot()
            .into_iter()
            .filter(|e| e.thread == tid && e.op == id)
            .collect();
        let phases: Vec<Phase> = evs.iter().map(|e| e.phase).collect();
        assert_eq!(phases, [Phase::Search, Phase::CasFail, Phase::Complete]);
        assert_eq!(evs[1].aux, 1);
    }

    #[test]
    fn inner_scope_inherits_outer_op() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        enable();
        let outer = op_scope();
        let id = current_op();
        {
            let inner = op_scope();
            assert_eq!(current_op(), id, "inner boundary must inherit");
            inner.finish(); // not minted: must NOT emit Complete
        }
        outer.finish();
        drop(outer);
        disable();
        let completes = snapshot()
            .iter()
            .filter(|e| e.op == id && e.phase == Phase::Complete)
            .count();
        assert_eq!(completes, 1, "only the minting scope completes");
    }

    #[test]
    fn enter_op_adopts_and_restores() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        enable();
        let id = mint_op();
        {
            let _g2 = enter_op(id);
            assert_eq!(current_op(), id);
            emit(Phase::Dequeue);
        }
        assert_eq!(current_op(), 0);
        disable();
        let evs = snapshot();
        assert!(evs.iter().any(|e| e.op == id && e.phase == Phase::Dequeue));
    }

    #[test]
    fn shard_and_lane_tags_ride_on_events() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        enable();
        let done: u64 = std::thread::spawn(|| {
            set_thread_lane(3);
            let _s = shard_scope(7);
            let _o = enter_op(mint_op());
            emit_aux(Phase::Enqueue, 42);
            current_op()
        })
        .join()
        .unwrap();
        disable();
        let ev = snapshot()
            .into_iter()
            .find(|e| e.op == done)
            .expect("event recorded");
        assert_eq!(ev.shard, 7);
        assert_eq!(ev.lane, 3);
        assert_eq!(ev.aux, 42);
        assert_eq!(ev.phase, Phase::Enqueue);
    }

    #[test]
    fn snapshot_is_seq_sorted_and_clear_moves_floor() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        enable();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..50 {
                        emit(Phase::Search);
                    }
                });
            }
        });
        let evs = snapshot();
        assert!(evs.len() >= 150);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        clear();
        assert!(snapshot().is_empty());
        emit(Phase::Help);
        disable();
        assert_eq!(snapshot().len(), 1);
    }

    #[test]
    fn ring_keeps_newest_events() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        set_ring_capacity(8);
        enable();
        let tid = std::thread::spawn(|| {
            for i in 0..20 {
                emit_aux(Phase::CasFail, i);
            }
            current_thread_id()
        })
        .join()
        .unwrap();
        disable();
        set_ring_capacity(4096);
        let evs: Vec<Event> = snapshot().into_iter().filter(|e| e.thread == tid).collect();
        assert_eq!(evs.len(), 8, "ring caps retained events");
        let auxs: Vec<u32> = evs.iter().map(|e| e.aux).collect();
        assert_eq!(auxs, [12, 13, 14, 15, 16, 17, 18, 19], "newest survive");
    }

    #[test]
    fn phase_labels_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("nonsense"), None);
    }

    #[test]
    fn progress_counters_are_monotone() {
        let before = (epoch_advances(), retires());
        note_epoch_advance();
        note_retire();
        assert!(epoch_advances() > before.0);
        assert!(retires() > before.1);
    }
}
