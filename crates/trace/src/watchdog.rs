//! The stall watchdog: heartbeats, an epoch-advance monitor, and a
//! monitor thread that trips the flight recorder.
//!
//! Lock-freedom guarantees *some* thread progresses, not *every*
//! thread: an individual op can be starved through an unbounded
//! CAS-fail/backlink cascade, a worker can be wedged by a bug or a
//! blocked callback, and reclamation can stall if a pinned thread
//! never quiesces (memory then grows without bound — the e6 failure
//! mode). The watchdog detects all three *from the outside*:
//!
//! * **stuck worker / runaway retry loop** — each worker owns a
//!   [`Heartbeat`] and bumps it whenever it makes observable progress
//!   (batch drained, op applied). A heartbeat that is `busy` but has
//!   not beaten for the configured deadline trips the watchdog. A
//!   runaway retry loop that never completes its op keeps `busy`
//!   without beating, so it is caught by the same rule.
//! * **reclamation stall** — nodes keep being retired while the global
//!   epoch stays put (sampled from [`crate::retires`] /
//!   [`crate::epoch_advances`], which advance regardless of the event
//!   tracing toggle).
//!
//! On a trip the monitor writes a flight-recorder dump (see
//! [`crate::recorder`]) to the configured path and invokes the
//! `on_trip` callback with a [`StallReport`]. The monitor thread also
//! services `SIGUSR1` dump requests, so one thread owns all black-box
//! I/O.
//!
//! The monitor paces itself with `Condvar::wait_timeout` (never
//! `thread::sleep`) so [`Watchdog::stop`] takes effect immediately.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, Weak};
use std::time::{Duration, Instant};

/// A worker's progress pulse. Cheap enough to bump per batch item:
/// two relaxed atomic ops.
#[derive(Debug)]
pub struct Heartbeat {
    /// What to call this worker in stall reports (e.g. `"lane-0"`).
    label: String,
    /// Progress counter; any bump proves liveness.
    beats: AtomicU64,
    /// Whether the worker is between `busy()` and `idle()`. Only busy
    /// workers are expected to beat — a parked worker is silent and
    /// healthy.
    busy: AtomicBool,
}

impl Heartbeat {
    fn new(label: String) -> Self {
        Heartbeat {
            label,
            beats: AtomicU64::new(0),
            busy: AtomicBool::new(false),
        }
    }

    /// The label supplied at registration.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Mark the worker busy (about to process work). Busy workers must
    /// [`beat`](Heartbeat::beat) within the deadline or the watchdog
    /// trips.
    #[inline]
    pub fn busy(&self) {
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        self.busy.store(true, Ordering::Relaxed);
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one unit of observable progress.
    #[inline]
    pub fn beat(&self) {
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark the worker idle (parked / between batches): silence is now
    /// healthy.
    #[inline]
    pub fn idle(&self) {
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        self.busy.store(false, Ordering::Relaxed);
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        self.beats.fetch_add(1, Ordering::Relaxed);
    }

    fn sample(&self) -> (u64, bool) {
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        let beats = self.beats.load(Ordering::Relaxed);
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        let busy = self.busy.load(Ordering::Relaxed);
        (beats, busy)
    }
}

/// Which liveness property was violated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallKind {
    /// A busy worker stopped beating for the whole deadline.
    Heartbeat,
    /// Retires kept accumulating while the global epoch stayed put.
    Reclamation,
}

/// What the watchdog saw when it tripped.
#[derive(Clone, Debug)]
pub struct StallReport {
    /// Violated property.
    pub kind: StallKind,
    /// Offending worker's label ([`StallKind::Heartbeat`]) or
    /// `"epoch"` ([`StallKind::Reclamation`]).
    pub label: String,
    /// How long the property had been violated when detected.
    pub stalled_for: Duration,
    /// Where the flight-recorder dump went, if a sink was configured
    /// and the write succeeded.
    pub dump: Option<PathBuf>,
    /// Events in the dump (0 when no sink or tracing never enabled).
    pub dump_events: usize,
}

/// Watchdog tuning. `Default` is production-shaped: 1 s deadline,
/// dump sink from `LF_TRACE_DUMP`.
pub struct Config {
    /// How long a busy worker may go without beating (and the epoch
    /// without advancing under retire pressure) before tripping.
    pub deadline: Duration,
    /// Monitor poll cadence. Detection latency is `deadline + poll` in
    /// the worst case. Defaults to `deadline / 4` (min 10 ms).
    pub poll: Option<Duration>,
    /// Flight-recorder sink; `None` falls back to the `LF_TRACE_DUMP`
    /// environment variable, and if that is unset too, trips are
    /// reported (callback + counters) without writing a dump.
    pub dump_path: Option<PathBuf>,
    /// Invoked on the monitor thread for every trip.
    #[allow(clippy::type_complexity)]
    pub on_trip: Option<Box<dyn Fn(&StallReport) + Send>>,
    /// Also install the `SIGUSR1` handler so operators can demand a
    /// dump from a live process.
    pub install_sigusr1: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            deadline: Duration::from_secs(1),
            poll: None,
            dump_path: None,
            on_trip: None,
            install_sigusr1: false,
        }
    }
}

/// State shared between handles and the monitor thread.
struct Shared {
    hearts: Mutex<Vec<Weak<Heartbeat>>>,
    stop: Mutex<bool>,
    wake: Condvar,
    /// Total trips since start (monotone; tests poll it).
    trips: AtomicU64,
    last: Mutex<Option<StallReport>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The stall watchdog: owns the monitor thread.
///
/// Dropping (or [`stop`](Watchdog::stop)ping) the watchdog shuts the
/// monitor down promptly; registered [`Heartbeat`]s outlive it
/// harmlessly (they become unobserved counters).
pub struct Watchdog {
    shared: Arc<Shared>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Start a monitor thread with the given tuning.
    pub fn start(cfg: Config) -> Watchdog {
        if cfg.install_sigusr1 {
            crate::recorder::install_sigusr1();
        }
        let shared = Arc::new(Shared {
            hearts: Mutex::new(Vec::new()),
            stop: Mutex::new(false),
            wake: Condvar::new(),
            trips: AtomicU64::new(0),
            last: Mutex::new(None),
        });
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lf-trace-watchdog".into())
                .spawn(move || monitor_loop(&shared, cfg))
                .expect("spawn watchdog monitor")
        };
        Watchdog {
            shared,
            monitor: Some(monitor),
        }
    }

    /// Register a worker under `label`; the worker keeps the returned
    /// [`Heartbeat`] and drives `busy`/`beat`/`idle`. The watchdog
    /// holds only a weak reference, so dropping the heartbeat
    /// unregisters the worker.
    pub fn register(&self, label: &str) -> Arc<Heartbeat> {
        let hb = Arc::new(Heartbeat::new(label.to_string()));
        lock(&self.shared.hearts).push(Arc::downgrade(&hb));
        hb
    }

    /// Trips observed so far.
    pub fn trips(&self) -> u64 {
        // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
        self.shared.trips.load(Ordering::Relaxed)
    }

    /// The most recent stall report, if any.
    pub fn last_report(&self) -> Option<StallReport> {
        lock(&self.shared.last).clone()
    }

    /// Stop the monitor thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        *lock(&self.shared.stop) = true;
        self.shared.wake.notify_all();
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-heartbeat tracking the monitor keeps between polls.
struct Watched {
    hb: Weak<Heartbeat>,
    last_beats: u64,
    /// When `beats` last changed (or the worker was last idle).
    since: Instant,
    /// Suppress duplicate trips until the worker beats again.
    reported: bool,
}

fn monitor_loop(shared: &Shared, cfg: Config) {
    let poll = cfg
        .poll
        .unwrap_or_else(|| (cfg.deadline / 4).max(Duration::from_millis(10)));
    let mut watched: Vec<Watched> = Vec::new();
    // Epoch-advance tracking: `since` is when `epoch_advances()` last
    // changed; `retires_then` is the retire count at that moment.
    let mut epoch_seen = crate::epoch_advances();
    let mut epoch_since = Instant::now();
    let mut retires_then = crate::retires();
    let mut epoch_reported = false;

    loop {
        {
            let stopped = lock(&shared.stop);
            if *stopped {
                return;
            }
            let (stopped, _) = shared
                .wake
                .wait_timeout(stopped, poll)
                .unwrap_or_else(PoisonError::into_inner);
            if *stopped {
                return;
            }
        }
        let now = Instant::now();

        // Operator-requested dump (SIGUSR1 or recorder::request_dump).
        if crate::recorder::take_dump_request() {
            let sink = cfg
                .dump_path
                .clone()
                .or_else(crate::recorder::env_dump_path);
            if let Some(path) = sink {
                let _ = crate::recorder::dump_to_path(&path, "sigusr1");
            }
        }

        // Sync the watch list with the registry (new registrations
        // appended; dropped heartbeats pruned on both sides).
        {
            let mut hearts = lock(&shared.hearts);
            hearts.retain(|w| w.strong_count() > 0);
            for w in hearts.iter() {
                let fresh = !watched.iter().any(|x| Weak::ptr_eq(&x.hb, w));
                if fresh {
                    let last_beats = w.upgrade().map(|h| h.sample().0).unwrap_or(0);
                    watched.push(Watched {
                        hb: w.clone(),
                        last_beats,
                        since: now,
                        reported: false,
                    });
                }
            }
        }
        watched.retain(|x| x.hb.strong_count() > 0);

        for w in watched.iter_mut() {
            let Some(hb) = w.hb.upgrade() else { continue };
            let (beats, busy) = hb.sample();
            if beats != w.last_beats || !busy {
                w.last_beats = beats;
                w.since = now;
                w.reported = false;
                continue;
            }
            let stalled_for = now.duration_since(w.since);
            if !w.reported && stalled_for >= cfg.deadline {
                w.reported = true;
                trip(shared, &cfg, StallKind::Heartbeat, hb.label(), stalled_for);
            }
        }

        // Reclamation stall: the epoch is static while retire pressure
        // keeps building.
        let advances = crate::epoch_advances();
        let retires = crate::retires();
        if advances != epoch_seen {
            epoch_seen = advances;
            epoch_since = now;
            retires_then = retires;
            epoch_reported = false;
        } else if !epoch_reported
            && retires > retires_then
            && now.duration_since(epoch_since) >= cfg.deadline
        {
            epoch_reported = true;
            trip(
                shared,
                &cfg,
                StallKind::Reclamation,
                "epoch",
                now.duration_since(epoch_since),
            );
        }
    }
}

fn trip(shared: &Shared, cfg: &Config, kind: StallKind, label: &str, stalled_for: Duration) {
    let sink = cfg
        .dump_path
        .clone()
        .or_else(crate::recorder::env_dump_path);
    let mut report = StallReport {
        kind,
        label: label.to_string(),
        stalled_for,
        dump: None,
        dump_events: 0,
    };
    if let Some(path) = sink {
        if let Ok(n) = crate::recorder::dump_to_path(&path, "watchdog") {
            report.dump_events = n;
            report.dump = Some(path);
        }
    }
    // ord: Relaxed — TRACE.hb: liveness pulse; the monitor samples racy-fresh values
    shared.trips.fetch_add(1, Ordering::Relaxed);
    if let Some(cb) = &cfg.on_trip {
        cb(&report);
    }
    *lock(&shared.last) = Some(report);
}
