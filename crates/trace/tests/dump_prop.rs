//! Property tests for the merged dump: events are time-ordered (the
//! global seq stamp is strictly ascending across the merge) and every
//! per-OpId phase sequence is well-formed, for arbitrary op mixes
//! executed on multiple real threads.

use lf_trace::report::Report;
use lf_trace::Phase;
use proptest::prelude::*;

/// One simulated op: which shard serves it, how many retry events it
/// records, and whether it completes. (The lane tag comes from the
/// worker thread the op lands on, as in the real async stack.)
#[derive(Clone, Copy, Debug)]
struct SimOp {
    shard: u16,
    retries: u8,
    completes: bool,
}

/// Drive one op through the real emit paths, the way the async stack
/// does: mint at the front door, adopt on the worker, emit phases.
fn run_op(op: &SimOp) -> u64 {
    let id = lf_trace::mint_op();
    lf_trace::emit_for(id, Phase::Enqueue, 0);
    let _g = lf_trace::enter_op(id);
    let _s = lf_trace::shard_scope(op.shard);
    lf_trace::emit_aux(Phase::Dequeue, 1);
    lf_trace::emit(Phase::Search);
    for i in 0..op.retries {
        if i % 2 == 0 {
            lf_trace::emit_aux(Phase::CasFail, u32::from(i));
        } else {
            lf_trace::emit(Phase::BacklinkWalk);
        }
    }
    if op.completes {
        lf_trace::emit_aux(Phase::Complete, 0);
    }
    id
}

const CASES: u32 = if cfg!(miri) { 4 } else { 64 };
const MAX_OPS: usize = if cfg!(miri) { 12 } else { 120 };
const THREADS: usize = if cfg!(miri) { 2 } else { 4 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]
    #[test]
    fn merged_dump_is_ordered_and_per_op_well_formed(
        raw in proptest::collection::vec(
            (0u16..8, 0u8..6, any::<bool>()),
            1..MAX_OPS,
        ),
    ) {
        let ops: Vec<SimOp> = raw
            .iter()
            .map(|&(shard, retries, completes)| SimOp { shard, retries, completes })
            .collect();

        lf_trace::enable();
        let horizon = lf_trace::horizon();
        // Chunk the ops over real worker threads so the merge actually
        // interleaves rings.
        let chunk = ops.len().div_ceil(THREADS);
        let ids: Vec<(u64, SimOp)> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (w, slice) in ops.chunks(chunk).enumerate() {
                handles.push(s.spawn(move || {
                    lf_trace::set_thread_lane(w as u8);
                    slice.iter().map(|op| (run_op(op), *op)).collect::<Vec<_>>()
                }));
            }
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        lf_trace::disable();

        // Only this case's events (the trace state is process-global
        // and proptest reruns the body many times).
        let events: Vec<lf_trace::Event> = lf_trace::snapshot()
            .into_iter()
            .filter(|e| e.seq > horizon)
            .collect();

        // Time-ordered: the merge is strictly seq-ascending.
        prop_assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));

        let report = Report::build(&events);
        // Well-formed per-OpId sequences (ordering, single terminal
        // complete, enqueue-before-dequeue-before-search).
        let check = report.check_all();
        prop_assert!(check.is_ok(), "malformed sequence: {:?}", check);

        // And the reconstruction matches what each op actually did.
        for (id, op) in &ids {
            let hist = report.ops.get(id).expect("op history present");
            prop_assert_eq!(hist.completed(), op.completes);
            prop_assert_eq!(
                hist.count(Phase::CasFail) + hist.count(Phase::BacklinkWalk),
                usize::from(op.retries)
            );
            prop_assert_eq!(hist.events[0].phase, Phase::Enqueue);
            prop_assert!(hist
                .events
                .iter()
                .skip(1)
                .all(|e| e.shard == op.shard));
        }
        prop_assert_eq!(report.ops.len(), ids.len());
    }
}
