//! Watchdog end-to-end: a deliberately-stalled worker must trip the
//! heartbeat monitor within its deadline and leave a non-empty,
//! parseable flight-recorder dump that reconstructs the stalled op's
//! phase history by `OpId`; healthy workers must not trip it; a static
//! epoch under retire pressure must register as a reclamation stall.
//!
//! Trace state is process-global, so every test serializes on one
//! lock and tags its events with freshly minted op ids.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lf_trace::report::{parse_dump, Report};
use lf_trace::watchdog::{Config, StallKind, Watchdog};
use lf_trace::Phase;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lf-trace-wd-{}-{tag}.jsonl", std::process::id()))
}

/// Spin until `cond` holds or `limit` elapses; returns success.
fn wait_for(limit: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < limit {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

const DEADLINE: Duration = Duration::from_millis(if cfg!(miri) { 400 } else { 200 });
const TRIP_LIMIT: Duration = Duration::from_secs(if cfg!(miri) { 120 } else { 10 });

#[test]
fn stalled_worker_trips_watchdog_and_dump_reconstructs_op() {
    let _g = lock();
    lf_trace::clear();
    lf_trace::enable();
    let dump = tmp_path("stall");
    let _ = std::fs::remove_file(&dump);

    let wd = Watchdog::start(Config {
        deadline: DEADLINE,
        poll: Some(Duration::from_millis(25)),
        dump_path: Some(dump.clone()),
        ..Config::default()
    });
    let hb = wd.register("lane-0");

    let done = AtomicBool::new(false);
    let stalled_op = std::thread::scope(|s| {
        let worker = s.spawn(|| {
            lf_trace::set_thread_lane(0);
            // The op's life up to the hang: minted at the front door,
            // dequeued by this worker, searching, then a retry loop
            // that stops making progress (the injected stall).
            let op = lf_trace::mint_op();
            lf_trace::emit_for(op, Phase::Enqueue, 1);
            let _guard = lf_trace::enter_op(op);
            let _shard = lf_trace::shard_scope(2);
            hb.busy();
            lf_trace::emit_aux(Phase::Dequeue, 1);
            lf_trace::emit(Phase::Search);
            lf_trace::emit_aux(Phase::CasFail, 0);
            lf_trace::emit(Phase::BacklinkWalk);
            // Wedge: busy, never beating, never completing.
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(20));
            }
            op
        });

        assert!(
            wait_for(TRIP_LIMIT, || wd.trips() >= 1),
            "watchdog did not trip within {TRIP_LIMIT:?}"
        );
        done.store(true, Ordering::Relaxed);
        worker.join().unwrap()
    });
    lf_trace::disable();

    let report = wd.last_report().expect("trip recorded a report");
    assert_eq!(report.kind, StallKind::Heartbeat);
    assert_eq!(report.label, "lane-0");
    assert!(report.stalled_for >= DEADLINE);
    assert_eq!(report.dump.as_deref(), Some(dump.as_path()));
    assert!(report.dump_events > 0, "flight-recorder dump is empty");
    wd.stop();

    // The dump must parse and reconstruct the stalled op's phase
    // history by OpId, tagged with its lane and shard.
    let text = std::fs::read_to_string(&dump).unwrap();
    let parsed = parse_dump(&text).expect("dump is valid JSON-lines");
    assert_eq!(parsed.reason, "watchdog");
    let r = Report::build(&parsed.events);
    r.check_all().unwrap();
    let hist = r.ops.get(&stalled_op).expect("stalled op in dump");
    assert_eq!(
        hist.phases(),
        [
            Phase::Enqueue,
            Phase::Dequeue,
            Phase::Search,
            Phase::CasFail,
            Phase::BacklinkWalk
        ]
    );
    assert!(!hist.completed());
    assert!(r.incomplete().iter().any(|h| h.op == stalled_op));
    assert!(hist
        .events
        .iter()
        .skip(1)
        .all(|e| e.lane == 0 && e.shard == 2));
    let _ = std::fs::remove_file(&dump);
}

#[test]
fn healthy_workers_do_not_trip() {
    let _g = lock();
    let wd = Watchdog::start(Config {
        deadline: Duration::from_millis(150),
        poll: Some(Duration::from_millis(25)),
        ..Config::default()
    });
    let beating = wd.register("beating");
    let idle = wd.register("idle");
    let _ = &idle; // registered but never busy: silence is healthy

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            beating.busy();
            while !stop.load(Ordering::Relaxed) {
                beating.beat();
                std::thread::sleep(Duration::from_millis(20));
            }
            beating.idle();
        });
        std::thread::sleep(Duration::from_millis(if cfg!(miri) { 400 } else { 600 }));
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(wd.trips(), 0, "healthy workers tripped the watchdog");
    wd.stop();
}

#[test]
fn reclamation_stall_is_detected() {
    let _g = lock();
    let wd = Watchdog::start(Config {
        deadline: DEADLINE,
        poll: Some(Duration::from_millis(25)),
        ..Config::default()
    });
    // Retire pressure with a static epoch: the e6 failure shape.
    for _ in 0..32 {
        lf_trace::note_retire();
    }
    assert!(
        wait_for(TRIP_LIMIT, || wd.trips() >= 1),
        "reclamation stall not detected"
    );
    let report = wd.last_report().unwrap();
    assert_eq!(report.kind, StallKind::Reclamation);
    assert_eq!(report.label, "epoch");
    let trips_after_first = wd.trips();

    // Epoch progress resets the monitor: no further trips while the
    // epoch keeps advancing.
    lf_trace::note_epoch_advance();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(wd.trips(), trips_after_first);
    wd.stop();
}

#[test]
fn dump_request_is_serviced_by_monitor() {
    let _g = lock();
    lf_trace::clear();
    lf_trace::enable();
    lf_trace::emit(Phase::Search);
    lf_trace::disable();
    let dump = tmp_path("sigusr1");
    let _ = std::fs::remove_file(&dump);

    let wd = Watchdog::start(Config {
        deadline: Duration::from_secs(60),
        poll: Some(Duration::from_millis(25)),
        dump_path: Some(dump.clone()),
        ..Config::default()
    });
    // Same flag SIGUSR1 raises, minus the process signal (portable
    // under Miri and on non-unix).
    lf_trace::recorder::request_dump();
    assert!(
        wait_for(TRIP_LIMIT, || dump.exists()),
        "monitor never serviced the dump request"
    );
    wd.stop();
    let parsed = parse_dump(&std::fs::read_to_string(&dump).unwrap()).unwrap();
    assert_eq!(parsed.reason, "sigusr1");
    assert!(!parsed.events.is_empty());
    let _ = std::fs::remove_file(&dump);
}
