//! Pugh's skip list under a global `RwLock` — the lock-based skip list
//! comparator (readers run in parallel; any writer excludes everyone).

use std::fmt;

use parking_lot::RwLock;

use crate::SeqSkipList;

/// A reader-writer-locked skip list.
///
/// # Examples
///
/// ```
/// use lf_baselines::LockSkipList;
///
/// let sl = LockSkipList::new();
/// assert!(sl.insert(1, "one"));
/// assert_eq!(sl.get(&1), Some("one"));
/// assert_eq!(sl.remove(&1), Some("one"));
/// ```
pub struct LockSkipList<K, V> {
    inner: RwLock<SeqSkipList<K, V>>,
}

impl<K, V> fmt::Debug for LockSkipList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockSkipList")
            .field("len", &self.inner.read().len())
            .finish()
    }
}

impl<K: Ord + Send + Sync, V: Send + Sync> Default for LockSkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Send + Sync, V: Send + Sync> LockSkipList<K, V> {
    /// Create an empty skip list.
    pub fn new() -> Self {
        LockSkipList {
            inner: RwLock::new(SeqSkipList::new()),
        }
    }

    /// Create with a deterministic coin-flip seed.
    pub fn with_seed(seed: u64) -> Self {
        LockSkipList {
            inner: RwLock::new(SeqSkipList::with_seed(seed)),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the skip list is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Insert `key → value`; returns `false` on duplicate.
    pub fn insert(&self, key: K, value: V) -> bool {
        let op = lf_metrics::op_begin();
        let r = self.inner.write().insert(key, value);
        lf_metrics::op_end(op);
        r
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let op = lf_metrics::op_begin();
        let r = self.inner.write().remove(key);
        lf_metrics::op_end(op);
        r
    }

    /// Look up `key`, cloning its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        let r = self.inner.read().get(key).cloned();
        lf_metrics::op_end(op);
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let op = lf_metrics::op_begin();
        let r = self.inner.read().contains(key);
        lf_metrics::op_end(op);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_roundtrip() {
        let sl = LockSkipList::with_seed(5);
        for k in 0..100u32 {
            assert!(sl.insert(k, k));
        }
        assert!(!sl.insert(50, 0));
        assert_eq!(sl.len(), 100);
        assert_eq!(sl.get(&99), Some(99));
        assert_eq!(sl.remove(&99), Some(99));
        assert!(!sl.contains(&99));
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let sl = Arc::new(LockSkipList::with_seed(9));
        for k in 0..64u32 {
            sl.insert(k, k);
        }
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let sl = sl.clone();
                s.spawn(move || {
                    for r in 0..300u32 {
                        let k = (r * (t + 1)) % 64;
                        match t {
                            0 => {
                                let _ = sl.insert(k + 64, r);
                            }
                            1 => {
                                let _ = sl.remove(&(k + 64));
                            }
                            _ => {
                                let _ = sl.contains(&k);
                            }
                        }
                    }
                });
            }
        });
        for k in 0..64u32 {
            assert!(sl.contains(&k));
        }
    }
}
