//! Comparator implementations for the Fomitchev–Ruppert reproduction.
//!
//! Every baseline the paper measures against (or that its related-work
//! section names) is implemented here, from scratch:
//!
//! * [`HarrisList`] — Harris's lock-free list (the paper's \[3\]):
//!   two-step deletion with mark bits only; **restarts from the head**
//!   whenever a C&S fails. The §3.1 adversarial schedule drives its
//!   average cost to `Ω(n̄·c̄)`.
//! * [`NoFlagList`] — the "Valois-style" ablation: backlinks *without*
//!   flag bits, so backlinks can point at marked nodes and chains of
//!   backlinks can grow rightwards (the pathology the paper's flag bits
//!   eliminate). Used for experiment E8.
//! * [`CoarseLockList`] — a sorted singly-linked list under one global
//!   mutex.
//! * [`HohLockList`] — a sorted list with hand-over-hand (lock
//!   coupling) per-node locking.
//! * [`SeqSkipList`] — Pugh's sequential skip list (the substrate for
//!   the lock-based comparator).
//! * [`LockSkipList`] — [`SeqSkipList`] under a global `RwLock`
//!   (parallel readers, exclusive writers).
//! * [`RestartSkipList`] — a Fraser/Harris-style lock-free skip list:
//!   per-level Harris lists, no backlinks, restart-on-interference.
//! * [`MichaelList`] — Michael's list-based set (the paper's \[8\]):
//!   Harris-style marking with single-node unlinks, managed end-to-end
//!   by hazard pointers (the paper's \[9\], in `lf-hazard`).
//! * [`LockedHeap`] — a mutex-protected binary heap, the comparator for
//!   the skip-list priority queue.
//!
//! All lock-free baselines use the same epoch reclamation and
//! essential-step metering as the core crate, so step-count and
//! throughput comparisons are apples-to-apples.

mod coarse_list;
mod harris;
mod hoh_list;
mod lock_skiplist;
mod locked_heap;
mod michael;
mod noflag;
mod restart_skiplist;
mod seq_skiplist;

pub use coarse_list::CoarseLockList;
pub use harris::{HarrisHandle, HarrisList};
pub use hoh_list::HohLockList;
pub use lock_skiplist::LockSkipList;
pub use locked_heap::LockedHeap;
pub use michael::{MichaelHandle, MichaelList};
pub use noflag::{NoFlagHandle, NoFlagList};
pub use restart_skiplist::{RestartHandle, RestartSkipList};
pub use seq_skiplist::SeqSkipList;

/// A key extended with `-∞`/`+∞` sentinels, shared by the baseline
/// lists (mirrors the core crate's `Bound`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Bound<K> {
    /// `-∞`: head sentinel key.
    NegInf,
    /// A user key.
    Key(K),
    /// `+∞`: tail sentinel key.
    PosInf,
}

impl<K> Bound<K> {
    /// The user key, if this is not a sentinel.
    pub fn as_key(&self) -> Option<&K> {
        match self {
            Bound::Key(k) => Some(k),
            _ => None,
        }
    }
}
