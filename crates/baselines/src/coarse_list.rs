//! Sorted singly-linked list under one global mutex.
//!
//! The simplest correct comparator: every operation takes the same
//! lock, so there is no parallelism at all and a delayed lock holder
//! delays everyone — the failure mode lock-free structures exist to
//! avoid.

use std::fmt;

use parking_lot::Mutex;

struct Node<K, V> {
    key: K,
    value: V,
    next: Option<Box<Node<K, V>>>,
}

/// A coarse-grained locked sorted list.
///
/// # Examples
///
/// ```
/// use lf_baselines::CoarseLockList;
///
/// let list = CoarseLockList::new();
/// assert!(list.insert(2, "two"));
/// assert!(list.insert(1, "one"));
/// assert!(!list.insert(1, "dup"));
/// assert_eq!(list.get(&1), Some("one"));
/// assert_eq!(list.remove(&2), Some("two"));
/// ```
pub struct CoarseLockList<K, V> {
    inner: Mutex<ListInner<K, V>>,
}

struct ListInner<K, V> {
    head: Option<Box<Node<K, V>>>,
    len: usize,
}

impl<K, V> fmt::Debug for CoarseLockList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseLockList")
            .field("len", &self.len())
            .finish()
    }
}

impl<K: Ord, V> Default for CoarseLockList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> CoarseLockList<K, V> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord, V> CoarseLockList<K, V> {
    /// Create an empty list.
    pub fn new() -> Self {
        CoarseLockList {
            inner: Mutex::new(ListInner { head: None, len: 0 }),
        }
    }

    /// Insert `key → value`; returns `false` on duplicate.
    ///
    /// Exactly one op is counted per call, at this boundary — the
    /// multi-return body below stays free of metric bookkeeping.
    pub fn insert(&self, key: K, value: V) -> bool {
        let op = lf_metrics::op_begin();
        let r = self.insert_inner(key, value);
        lf_metrics::op_end(op);
        r
    }

    fn insert_inner(&self, key: K, value: V) -> bool {
        let mut inner = self.inner.lock();
        let mut slot = &mut inner.head;
        loop {
            match slot {
                Some(node) if node.key < key => {
                    lf_metrics::record_curr_update();
                    slot = &mut slot.as_mut().unwrap().next;
                }
                Some(node) if node.key == key => return false,
                _ => break,
            }
        }
        let next = slot.take();
        *slot = Some(Box::new(Node { key, value, next }));
        inner.len += 1;
        true
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let op = lf_metrics::op_begin();
        let r = self.remove_inner(key);
        lf_metrics::op_end(op);
        r
    }

    fn remove_inner(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        let mut slot = &mut inner.head;
        loop {
            match slot {
                Some(node) if node.key < *key => {
                    lf_metrics::record_curr_update();
                    slot = &mut slot.as_mut().unwrap().next;
                }
                Some(node) if node.key == *key => {
                    let removed = slot.take().unwrap();
                    *slot = removed.next;
                    inner.len -= 1;
                    return Some(removed.value);
                }
                _ => return None,
            }
        }
    }

    /// Look up `key`, cloning its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        let r = self.get_inner(key);
        lf_metrics::op_end(op);
        r
    }

    fn get_inner(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let inner = self.inner.lock();
        let mut cur = inner.head.as_deref();
        while let Some(node) = cur {
            if node.key == *key {
                return Some(node.value.clone());
            }
            if node.key > *key {
                return None;
            }
            lf_metrics::record_curr_update();
            cur = node.next.as_deref();
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let op = lf_metrics::op_begin();
        let r = self.contains_inner(key);
        lf_metrics::op_end(op);
        r
    }

    fn contains_inner(&self, key: &K) -> bool {
        let inner = self.inner.lock();
        let mut cur = inner.head.as_deref();
        while let Some(node) = cur {
            if node.key == *key {
                return true;
            }
            if node.key > *key {
                return false;
            }
            lf_metrics::record_curr_update();
            cur = node.next.as_deref();
        }
        false
    }
}

impl<K, V> Drop for CoarseLockList<K, V> {
    fn drop(&mut self) {
        // Iterative teardown: the default recursive drop of a long
        // `Option<Box<Node>>` chain can overflow the stack.
        let mut cur = self.inner.get_mut().head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_roundtrip() {
        let list = CoarseLockList::new();
        for k in [5, 3, 8, 1, 9] {
            assert!(list.insert(k, k * 2));
        }
        assert!(!list.insert(3, 0));
        assert_eq!(list.len(), 5);
        assert_eq!(list.get(&8), Some(16));
        assert_eq!(list.remove(&8), Some(16));
        assert_eq!(list.remove(&8), None);
        assert!(!list.contains(&8));
        assert!(list.contains(&9));
    }

    #[test]
    fn long_list_drop_does_not_overflow() {
        let list = CoarseLockList::new();
        // Descending inserts keep each insert O(1) while still
        // building a 100k-node chain for the drop to tear down.
        for k in (0..100_000u32).rev() {
            list.insert(k, ());
        }
        drop(list); // must not blow the stack
    }

    #[test]
    fn concurrent_exclusive_counts() {
        let list = Arc::new(CoarseLockList::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let list = list.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        list.insert(t * 200 + i, ());
                    }
                });
            }
        });
        assert_eq!(list.len(), 800);
    }
}
