//! Pugh's sequential skip list (*Skip lists: a probabilistic
//! alternative to balanced trees*, CACM 1990) — the substrate under the
//! lock-based comparator, implemented with the original
//! array-of-forward-pointers node layout.
//!
//! Deliberately records **no** `lf_metrics` ops: it is not a benchmark
//! adapter itself but the structure inside
//! [`LockSkipList`](crate::LockSkipList), whose public methods own the
//! `op_begin`/`op_end` boundary. Counting here too would double-count
//! every lock-skiplist operation.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const MAX_LEVEL: usize = 32;

struct Node<K, V> {
    key: K,
    value: V,
    /// `forward[i]` is the next node at level `i + 1`.
    forward: Vec<*mut Node<K, V>>,
}

/// A single-threaded skip list (Pugh 1990).
///
/// Deterministic when built with [`SeqSkipList::with_seed`]; used under
/// a `RwLock` by [`LockSkipList`](crate::LockSkipList).
///
/// # Examples
///
/// ```
/// use lf_baselines::SeqSkipList;
///
/// let mut sl = SeqSkipList::new();
/// assert!(sl.insert(3, "three"));
/// assert!(!sl.insert(3, "dup"));
/// assert_eq!(sl.get(&3), Some(&"three"));
/// assert_eq!(sl.remove(&3), Some("three"));
/// ```
pub struct SeqSkipList<K, V> {
    /// `head[i]` is the first node at level `i + 1` (null if none).
    head: Vec<*mut Node<K, V>>,
    level: usize,
    len: usize,
    rng: SmallRng,
}

// SAFETY: `&mut self` on all mutators; raw pointers are owned solely by
// this structure.
unsafe impl<K: Send, V: Send> Send for SeqSkipList<K, V> {}
// SAFETY: same argument as `Send` above; `&self` methods only read.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SeqSkipList<K, V> {}

impl<K, V> fmt::Debug for SeqSkipList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqSkipList")
            .field("len", &self.len)
            .field("level", &self.level)
            .finish()
    }
}

impl<K: Ord, V> Default for SeqSkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> SeqSkipList<K, V> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the skip list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<K: Ord, V> SeqSkipList<K, V> {
    /// Create an empty skip list seeded from the OS.
    pub fn new() -> Self {
        Self::with_seed(rand::random())
    }

    /// Create an empty skip list with a deterministic coin-flip seed.
    pub fn with_seed(seed: u64) -> Self {
        SeqSkipList {
            head: vec![std::ptr::null_mut(); MAX_LEVEL],
            level: 1,
            len: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn random_level(&mut self) -> usize {
        let mut lvl = 1;
        while lvl < MAX_LEVEL && self.rng.gen::<bool>() {
            lvl += 1;
        }
        lvl
    }

    /// Per-level predecessors of `key`: `update[i]` is the last node at
    /// level `i + 1` whose key is `< key` (null = level head).
    fn predecessors(&self, key: &K) -> Vec<*mut Node<K, V>> {
        let mut update: Vec<*mut Node<K, V>> = vec![std::ptr::null_mut(); self.level];
        for i in (0..self.level).rev() {
            let mut cur = if i + 1 < self.level && !update[i + 1].is_null() {
                update[i + 1]
            } else {
                std::ptr::null_mut()
            };
            // SAFETY: every non-null pointer in the structure is a live
            // Box-allocated node owned exclusively by this list.
            let mut next = if cur.is_null() {
                self.head[i]
            } else {
                // SAFETY: as above.
                unsafe { (&(*cur).forward)[i] }
            };
            // SAFETY: as above.
            while !next.is_null() && unsafe { &(*next).key } < key {
                lf_metrics::record_curr_update();
                cur = next;
                // SAFETY: as above.
                next = unsafe { (&(*next).forward)[i] };
            }
            update[i] = cur;
        }
        update
    }

    fn next_at(&self, pred: *mut Node<K, V>, level: usize) -> *mut Node<K, V> {
        if pred.is_null() {
            self.head[level]
        } else {
            // SAFETY: non-null pointers in the structure are live nodes
            // owned exclusively by this list.
            unsafe { (&(*pred).forward)[level] }
        }
    }

    /// Insert `key → value`; returns `false` on duplicate.
    #[allow(clippy::needless_range_loop)] // indices mirror Pugh's pseudocode
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let update = self.predecessors(&key);
        let at_bottom = self.next_at(update[0], 0);
        // SAFETY: non-null pointers in the structure are live nodes.
        if !at_bottom.is_null() && unsafe { &(*at_bottom).key } == &key {
            return false;
        }
        let lvl = self.random_level();
        let node = Box::into_raw(Box::new(Node {
            key,
            value,
            forward: vec![std::ptr::null_mut(); lvl],
        }));
        for i in 0..lvl.min(self.level) {
            let pred = update[i];
            // SAFETY: `node` was just allocated; `&mut self` gives
            // exclusive access.
            unsafe {
                (&mut (*node).forward)[i] = self.next_at(pred, i);
            }
            if pred.is_null() {
                self.head[i] = node;
            } else {
                // SAFETY: `pred` is a live node; `&mut self` gives
                // exclusive access.
                unsafe { (&mut (*pred).forward)[i] = node };
            }
        }
        // New levels above the current height hang directly off the head.
        for i in self.level..lvl {
            self.head[i] = node;
        }
        self.level = self.level.max(lvl);
        self.len += 1;
        true
    }

    /// Remove `key`, returning its value.
    #[allow(clippy::manual_range_contains)]
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let update = self.predecessors(key);
        let target = self.next_at(update[0], 0);
        // SAFETY: non-null pointers in the structure are live nodes.
        if target.is_null() || unsafe { &(*target).key } != key {
            return None;
        }
        // SAFETY: as above.
        let height = unsafe { (*target).forward.len() };
        for i in 0..height.min(self.level) {
            let pred = update.get(i).copied().unwrap_or(std::ptr::null_mut());
            if self.next_at(pred, i) == target {
                // SAFETY: `target` is a live node (checked above).
                let next = unsafe { (&(*target).forward)[i] };
                if pred.is_null() {
                    self.head[i] = next;
                } else {
                    // SAFETY: `pred` is a live node; `&mut self` gives
                    // exclusive access.
                    unsafe { (&mut (*pred).forward)[i] = next };
                }
            }
        }
        while self.level > 1 && self.head[self.level - 1].is_null() {
            self.level -= 1;
        }
        self.len -= 1;
        // SAFETY: `target` is unlinked from every level above, so this
        // is the sole remaining owner of the Box allocation.
        let boxed = unsafe { Box::from_raw(target) };
        Some(boxed.value)
    }

    /// Borrow the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let update = self.predecessors(key);
        let target = self.next_at(update[0], 0);
        // SAFETY: non-null pointers in the structure are live nodes.
        if target.is_null() || unsafe { &(*target).key } != key {
            None
        } else {
            // SAFETY: as above; the borrow is tied to `&self`.
            Some(unsafe { &(*target).value })
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterate in key order.
    pub fn iter(&self) -> SeqIter<'_, K, V> {
        SeqIter {
            cur: self.head[0],
            _marker: std::marker::PhantomData,
        }
    }
}

/// Borrowing in-order iterator over a [`SeqSkipList`].
pub struct SeqIter<'a, K, V> {
    cur: *mut Node<K, V>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a, K: 'a, V: 'a> Iterator for SeqIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur.is_null() {
            return None;
        }
        // SAFETY: `cur` is non-null (checked) and borrowed from a live
        // list, which keeps its nodes alive for 'a.
        let node = unsafe { &*self.cur };
        self.cur = node.forward[0];
        Some((&node.key, &node.value))
    }
}

impl<K, V> Drop for SeqSkipList<K, V> {
    fn drop(&mut self) {
        let mut cur = self.head[0];
        while !cur.is_null() {
            // SAFETY: &mut self — exclusive access; every node appears
            // on level 0, so this walk frees each node exactly once.
            let next = unsafe { (&(*cur).forward)[0] };
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_against_btreemap() {
        let mut sl = SeqSkipList::with_seed(42);
        let mut oracle = BTreeMap::new();
        // Deterministic pseudo-random op sequence.
        let mut x: u64 = 12345;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33) % 200;
            match x % 3 {
                0 => {
                    assert_eq!(sl.insert(k, k * 2), oracle.insert(k, k * 2).is_none());
                }
                1 => {
                    assert_eq!(sl.remove(&k), oracle.remove(&k));
                }
                _ => {
                    assert_eq!(sl.get(&k), oracle.get(&k));
                }
            }
            assert_eq!(sl.len(), oracle.len());
        }
        let ours: Vec<u64> = sl.iter().map(|(k, _)| *k).collect();
        let theirs: Vec<u64> = oracle.keys().copied().collect();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn empty_edge_cases() {
        let mut sl: SeqSkipList<u32, ()> = SeqSkipList::with_seed(1);
        assert!(sl.is_empty());
        assert_eq!(sl.remove(&1), None);
        assert_eq!(sl.get(&1), None);
        assert_eq!(sl.iter().count(), 0);
    }

    #[test]
    fn duplicate_rejected() {
        let mut sl = SeqSkipList::with_seed(7);
        assert!(sl.insert(1, "a"));
        assert!(!sl.insert(1, "b"));
        assert_eq!(sl.get(&1), Some(&"a"));
    }

    #[test]
    fn level_shrinks_after_removals() {
        let mut sl = SeqSkipList::with_seed(3);
        for k in 0..1000u32 {
            sl.insert(k, ());
        }
        let high = sl.level;
        for k in 0..1000u32 {
            sl.remove(&k);
        }
        assert!(sl.is_empty());
        assert!(sl.level <= high);
        assert_eq!(sl.level, 1);
    }
}
