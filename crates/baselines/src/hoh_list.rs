//! Sorted list with hand-over-hand (lock-coupling) per-node locking.
//!
//! Traversal holds at most two node locks at a time, acquiring the next
//! node's lock before releasing the current one, so disjoint operations
//! on different parts of the list can proceed in parallel — but every
//! traversal still serializes behind any operation ahead of it, and a
//! stalled lock holder blocks everyone behind it.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Bound;

/// A held lock on some node's `next` pointer.
type NextGuard<'a, K, V> = parking_lot::MutexGuard<'a, Option<Arc<Node<K, V>>>>;

struct Node<K, V> {
    key: Bound<K>,
    value: Option<V>,
    next: Mutex<Option<Arc<Node<K, V>>>>,
}

/// A hand-over-hand locked sorted list.
///
/// # Examples
///
/// ```
/// use lf_baselines::HohLockList;
///
/// let list = HohLockList::new();
/// assert!(list.insert(1, "one"));
/// assert!(list.contains(&1));
/// assert_eq!(list.remove(&1), Some("one"));
/// assert!(list.is_empty());
/// ```
pub struct HohLockList<K, V> {
    head: Arc<Node<K, V>>,
    len: std::sync::atomic::AtomicUsize,
}

impl<K, V> fmt::Debug for HohLockList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HohLockList")
            .field("len", &self.len())
            .finish()
    }
}

impl<K: Ord, V> Default for HohLockList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> HohLockList<K, V> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord, V> HohLockList<K, V> {
    /// Create an empty list.
    pub fn new() -> Self {
        let tail = Arc::new(Node {
            key: Bound::PosInf,
            value: None,
            next: Mutex::new(None),
        });
        let head = Arc::new(Node {
            key: Bound::NegInf,
            value: None,
            next: Mutex::new(Some(tail)),
        });
        HohLockList {
            head,
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Lock-couple to the node pair `(pred, curr)` with `pred.key < k
    /// <= curr.key`, returning `pred` and its held next-guard.
    ///
    /// The returned guard locks `pred.next`; `curr` is the node behind
    /// it.
    fn find<'a>(&'a self, key: &K) -> (Arc<Node<K, V>>, NextGuard<'a, K, V>) {
        // Hand-over-hand: hold pred's next-lock, peek curr; to advance,
        // lock curr's next, then release pred's.
        let mut pred = self.head.clone();
        // SAFETY of lifetimes: guards are re-created per node; we use a
        // raw-pointer-free approach by transmuting lifetimes via Arc
        // ownership — the guard borrows the node, which the Arc keeps
        // alive for the duration.
        // SAFETY: lifetime-only transmute — the guard borrows the
        // node, which the `Arc` keeps alive for 'a (see comment above).
        let mut guard = unsafe {
            std::mem::transmute::<NextGuard<'_, K, V>, NextGuard<'a, K, V>>(pred.next.lock())
        };
        loop {
            let advance = {
                let curr = guard.as_ref().expect("interior node always has next");
                match &curr.key {
                    Bound::PosInf => false,
                    Bound::NegInf => unreachable!("head is never a successor"),
                    Bound::Key(ck) => ck < key,
                }
            };
            if !advance {
                return (pred, guard);
            }
            let curr = guard.as_ref().unwrap().clone();
            lf_metrics::record_curr_update();
            // SAFETY: as above — lifetime-only transmute, node kept
            // alive by the `Arc` chain.
            let next_guard = unsafe {
                std::mem::transmute::<NextGuard<'_, K, V>, NextGuard<'a, K, V>>(curr.next.lock())
            };
            drop(guard); // release pred only after curr is locked
            pred = curr;
            guard = next_guard;
        }
    }

    /// Insert `key → value`; returns `false` on duplicate.
    ///
    /// Exactly one op is counted per call, at this boundary — the
    /// multi-return body below stays free of metric bookkeeping.
    pub fn insert(&self, key: K, value: V) -> bool {
        let op = lf_metrics::op_begin();
        let r = self.insert_inner(key, value);
        lf_metrics::op_end(op);
        r
    }

    fn insert_inner(&self, key: K, value: V) -> bool {
        let (_pred, mut guard) = self.find(&key);
        let curr = guard.as_ref().unwrap().clone();
        if curr.key.as_key() == Some(&key) {
            return false;
        }
        let node = Arc::new(Node {
            key: Bound::Key(key),
            value: Some(value),
            next: Mutex::new(Some(curr)),
        });
        *guard = Some(node);
        self.len.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        true
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        let r = self.remove_inner(key);
        lf_metrics::op_end(op);
        r
    }

    fn remove_inner(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let (_pred, mut guard) = self.find(key);
        let curr = guard.as_ref().unwrap().clone();
        if curr.key.as_key() != Some(key) {
            return None;
        }
        let next = curr.next.lock().clone();
        *guard = next;
        self.len.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        curr.value.clone()
    }

    /// Look up `key`, cloning its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        let (_pred, guard) = self.find(key);
        let curr = guard.as_ref().unwrap();
        let r = (curr.key.as_key() == Some(key)).then(|| curr.value.clone().unwrap());
        drop(guard);
        lf_metrics::op_end(op);
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let op = lf_metrics::op_begin();
        let (_pred, guard) = self.find(key);
        let r = guard.as_ref().unwrap().key.as_key() == Some(key);
        drop(guard);
        lf_metrics::op_end(op);
        r
    }
}

impl<K, V> Drop for HohLockList<K, V> {
    fn drop(&mut self) {
        // Iterative teardown to avoid recursive Arc drops on long lists.
        let mut cur = self.head.next.lock().take();
        while let Some(node) = cur {
            cur = node.next.lock().take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_roundtrip() {
        let list = HohLockList::new();
        for k in [4, 2, 7, 1] {
            assert!(list.insert(k, k * 10));
        }
        assert!(!list.insert(2, 0));
        assert_eq!(list.len(), 4);
        assert_eq!(list.get(&7), Some(70));
        assert_eq!(list.remove(&7), Some(70));
        assert_eq!(list.remove(&7), None);
        assert!(list.contains(&4));
        assert!(!list.contains(&7));
    }

    #[test]
    fn long_list_drop_does_not_overflow() {
        let list = HohLockList::new();
        for k in (0..50_000u32).rev() {
            list.insert(k, ());
        }
        drop(list);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let list = std::sync::Arc::new(HohLockList::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let list = list.clone();
                s.spawn(move || {
                    for i in 0..150u32 {
                        assert!(list.insert(t * 150 + i, ()));
                    }
                });
            }
        });
        assert_eq!(list.len(), 600);
    }

    #[test]
    fn concurrent_mixed_ops() {
        let list = std::sync::Arc::new(HohLockList::new());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let list = list.clone();
                s.spawn(move || {
                    for r in 0..200u32 {
                        let k = (r * (t + 2)) % 32;
                        match t % 2 {
                            0 => {
                                let _ = list.insert(k, r);
                            }
                            _ => {
                                let _ = list.remove(&k);
                            }
                        }
                    }
                });
            }
        });
        for k in 0..32u32 {
            let _ = list.contains(&k);
        }
    }
}
