//! A mutex-protected binary heap — the conventional comparator for the
//! skip-list priority queue (the paper's §2 application).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use parking_lot::Mutex;

/// A min-priority queue behind one global mutex.
///
/// FIFO among equal priorities, like the core crate's
/// `PriorityQueue`, via an internal sequence number.
///
/// # Examples
///
/// ```
/// use lf_baselines::LockedHeap;
///
/// let q = LockedHeap::new();
/// q.push(2, "b");
/// q.push(1, "a");
/// assert_eq!(q.pop(), Some((1, "a")));
/// assert_eq!(q.pop(), Some((2, "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct LockedHeap<P, T> {
    inner: Mutex<HeapInner<P, T>>,
}

struct HeapInner<P, T> {
    heap: BinaryHeap<Reverse<(P, u64, ValueCell<T>)>>,
    seq: u64,
}

/// Wrapper that opts the payload out of the ordering.
struct ValueCell<T>(T);

impl<T> PartialEq for ValueCell<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for ValueCell<T> {}
impl<T> PartialOrd for ValueCell<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ValueCell<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<P, T> fmt::Debug for LockedHeap<P, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedHeap")
            .field("len", &self.len())
            .finish()
    }
}

impl<P: Ord, T> Default for LockedHeap<P, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P, T> LockedHeap<P, T> {
    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<P: Ord, T> LockedHeap<P, T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        LockedHeap {
            inner: Mutex::new(HeapInner {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
        }
    }

    /// Enqueue `item` with `priority` (lower pops first).
    pub fn push(&self, priority: P, item: T) {
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Reverse((priority, seq, ValueCell(item))));
    }

    /// Dequeue the minimum-priority item.
    pub fn pop(&self) -> Option<(P, T)> {
        self.inner
            .lock()
            .heap
            .pop()
            .map(|Reverse((p, _, ValueCell(t)))| (p, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn priority_and_fifo_order() {
        let q = LockedHeap::new();
        q.push(3, "c");
        q.push(1, "a1");
        q.push(1, "a2");
        q.push(2, "b");
        assert_eq!(q.pop(), Some((1, "a1")));
        assert_eq!(q.pop(), Some((1, "a2")));
        assert_eq!(q.pop(), Some((2, "b")));
        assert_eq!(q.pop(), Some((3, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_push_pop_accounting() {
        let q = Arc::new(LockedHeap::new());
        let popped = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        q.push((t * 500 + i) % 16, i);
                    }
                });
            }
            for _ in 0..2 {
                let q = q.clone();
                let popped = popped.clone();
                s.spawn(move || {
                    let mut idle = 0;
                    while idle < 500 {
                        if q.pop().is_some() {
                            popped.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            idle = 0;
                        } else {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(
            popped.load(std::sync::atomic::Ordering::SeqCst) + q.len(),
            1000
        );
    }
}
