//! Harris's lock-free linked list (T. Harris, *A pragmatic
//! implementation of non-blocking linked-lists*, DISC 2001) — the
//! paper's reference \[3\] and its main comparator.
//!
//! Two-step deletion: mark the victim's successor field (logical
//! deletion), then unlink it. A search snips out whole chains of marked
//! nodes with one C&S. The crucial difference from the
//! Fomitchev–Ruppert list: **any failed C&S restarts the operation from
//! the head of the list** — there are no backlinks to recover through,
//! which is what lets an adversary force `Ω(n̄·c̄)` average cost (§3.1).

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use lf_metrics::CasType;
use lf_reclaim::{Collector, Guard, LocalHandle};
use lf_tagged::{AtomicTaggedPtr, TaggedPtr};

use crate::Bound;

#[repr(align(8))]
struct Node<K, V> {
    key: Bound<K>,
    element: Option<V>,
    /// Composite field: right pointer + mark bit (flag bit unused).
    succ: AtomicTaggedPtr<Node<K, V>>,
    /// Claimed by the single thread that retires this node. Two snips
    /// can overlap (a later snip walks *through* an already-unlinked
    /// frozen region), so retirement must be idempotent.
    retired: AtomicBool,
}

impl<K, V> Node<K, V> {
    fn alloc(key: Bound<K>, element: Option<V>, right: *mut Node<K, V>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            key,
            element,
            succ: AtomicTaggedPtr::new(TaggedPtr::unmarked(right)),
            retired: AtomicBool::new(false),
        }))
    }
}

/// Harris's lock-free sorted linked list.
///
/// API mirrors the core crate's `FrList`: duplicate keys rejected, per-thread
/// handles, epoch reclamation.
///
/// # Examples
///
/// ```
/// use lf_baselines::HarrisList;
///
/// let list = HarrisList::new();
/// let h = list.handle();
/// assert!(h.insert(1, "one"));
/// assert!(!h.insert(1, "dup"));
/// assert!(h.contains(&1));
/// assert_eq!(h.remove(&1), Some("one"));
/// ```
pub struct HarrisList<K, V> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    collector: Collector,
    len: AtomicUsize,
}

// SAFETY: all shared mutation goes through atomics; reclamation is
// epoch-protected, so cross-thread frees are deferred past all pins.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for HarrisList<K, V> {}
// SAFETY: same argument as `Send` above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for HarrisList<K, V> {}

impl<K, V> fmt::Debug for HarrisList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HarrisList")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K, V> Default for HarrisList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> HarrisList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Create an empty list.
    pub fn new() -> Self {
        let tail = Node::alloc(Bound::PosInf, None, std::ptr::null_mut());
        let head = Node::alloc(Bound::NegInf, None, tail);
        HarrisList {
            head,
            tail,
            collector: Collector::new(),
            len: AtomicUsize::new(0),
        }
    }

    /// Register the calling thread and return an operation handle.
    pub fn handle(&self) -> HarrisHandle<'_, K, V> {
        HarrisHandle {
            list: self,
            reclaim: self.collector.register(),
        }
    }

    /// Number of elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Harris's `search`: returns `(left, right)` with `left.key < k <=
    /// right.key`, both unmarked at some point during the search, and
    /// `left.succ == right` (after snipping any marked chain between
    /// them). Restarts from the head whenever the snip C&S fails.
    ///
    /// # Safety
    ///
    /// `guard` must pin this list's collector; returned pointers are
    /// valid while it lives.
    unsafe fn search(&self, k: &K, guard: &Guard<'_>) -> (*mut Node<K, V>, *mut Node<K, V>) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            'retry: loop {
                let mut left = self.head;
                let mut left_succ = (*left).succ.load(Ordering::SeqCst);
                let right;

                // Phase 1: locate left (last unmarked node with key < k) and
                // right (first unmarked node with key >= k).
                {
                    let mut t = self.head;
                    let mut t_succ = (*t).succ.load(Ordering::SeqCst);
                    loop {
                        if !t_succ.is_marked() {
                            left = t;
                            left_succ = t_succ;
                        }
                        t = t_succ.ptr();
                        if t.is_null() {
                            // Walked off the tail; can only happen transiently.
                            continue 'retry;
                        }
                        lf_metrics::record_curr_update();
                        t_succ = (*t).succ.load(Ordering::SeqCst);
                        let key_lt = match &(*t).key {
                            Bound::NegInf => true,
                            Bound::PosInf => false,
                            Bound::Key(nk) => nk < k,
                        };
                        if !(t_succ.is_marked() || key_lt) {
                            right = t;
                            break;
                        }
                    }
                }

                // Phase 2: already adjacent?
                if left_succ.ptr() == right {
                    if !right.is_null() && (*right).succ.load(Ordering::SeqCst).is_marked() {
                        continue 'retry;
                    }
                    return (left, right);
                }

                // Phase 3: snip the marked chain between left and right.
                let res = (*left).succ.compare_exchange(
                    left_succ,
                    TaggedPtr::unmarked(right),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Unlink, res.is_ok());
                if res.is_ok() {
                    // Retire the snipped chain. Chains from different snips
                    // can overlap (a later snip may walk through a region an
                    // earlier snip already removed, since marked successor
                    // pointers stay frozen), so each node is claimed with a
                    // CAS and retired exactly once.
                    let mut cur = left_succ.ptr();
                    while cur != right {
                        let next = (*cur).succ.load(Ordering::SeqCst).ptr();
                        if (*cur)
                            .retired
                            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            let addr = cur as usize;
                            guard.defer_unchecked(move || {
                                drop(Box::from_raw(addr as *mut Node<K, V>))
                            });
                        }
                        cur = next;
                    }
                    if !(*right).succ.load(Ordering::SeqCst).is_marked() {
                        return (left, right);
                    }
                }
                // Failed C&S (or right got marked): restart from the head.
            }
        }
    }

    /// # Safety
    ///
    /// `guard` must pin this list's collector.
    unsafe fn insert_impl(&self, key: K, value: V, guard: &Guard<'_>) -> bool {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let new_node = Node::alloc(Bound::Key(key), Some(value), std::ptr::null_mut());
            loop {
                let key_ref = (*new_node).key.as_key().expect("user key");
                let (left, right) = self.search(key_ref, guard);
                if (*right).key.as_key() == Some(key_ref) {
                    drop(Box::from_raw(new_node));
                    return false;
                }
                (*new_node)
                    .succ
                    .store(TaggedPtr::unmarked(right), Ordering::SeqCst);
                let res = (*left).succ.compare_exchange(
                    TaggedPtr::unmarked(right),
                    TaggedPtr::unmarked(new_node),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Insert, res.is_ok());
                if res.is_ok() {
                    self.len.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                // Failure: restart (search starts from the head again).
            }
        }
    }

    /// # Safety
    ///
    /// `guard` must pin this list's collector.
    unsafe fn delete_impl(&self, k: &K, guard: &Guard<'_>) -> Option<V>
    where
        V: Clone,
    {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            loop {
                let (_left, right) = self.search(k, guard);
                if (*right).key.as_key() != Some(k) {
                    return None;
                }
                let right_succ = (*right).succ.load(Ordering::SeqCst);
                if right_succ.is_marked() {
                    // Another deleter got here first; restart to confirm.
                    continue;
                }
                let res = (*right).succ.compare_exchange(
                    right_succ,
                    right_succ.with_mark(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Mark, res.is_ok());
                if res.is_ok() {
                    self.len.fetch_sub(1, Ordering::SeqCst);
                    let value = (*right).element.clone().expect("user node has element");
                    // Physical deletion: one more search snips it out.
                    let _ = self.search(k, guard);
                    return Some(value);
                }
                // Mark failed: restart from the head.
            }
        }
    }

    /// # Safety
    ///
    /// `guard` must pin this list's collector; the returned pointer is
    /// valid while it lives.
    unsafe fn search_value(&self, k: &K, guard: &Guard<'_>) -> Option<*mut Node<K, V>> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let (_left, right) = self.search(k, guard);
            ((*right).key.as_key() == Some(k)).then_some(right)
        }
    }
}

impl<K, V> Drop for HarrisList<K, V> {
    fn drop(&mut self) {
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: unique access (`&mut self`); nodes still linked
            // from the head were Box-allocated and are freed once here.
            let next = unsafe { (*cur).succ.load(Ordering::SeqCst).ptr() };
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
        let _ = self.tail;
    }
}

/// Per-thread handle to a [`HarrisList`]. Not `Send`.
pub struct HarrisHandle<'l, K, V> {
    list: &'l HarrisList<K, V>,
    reclaim: LocalHandle,
}

impl<K, V> fmt::Debug for HarrisHandle<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("HarrisHandle")
    }
}

impl<K, V> HarrisHandle<'_, K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Insert `key → value`; returns `false` on duplicate.
    pub fn insert(&self, key: K, value: V) -> bool {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: the guard pins this list's collector.
        let r = unsafe { self.list.insert_impl(key, value, &guard) };
        lf_metrics::op_end(op);
        r
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: the guard pins this list's collector.
        let r = unsafe { self.list.delete_impl(key, &guard) };
        lf_metrics::op_end(op);
        r
    }

    /// Look up `key`, cloning its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: the guard pins this list's collector; the returned
        // node stays valid while the guard lives.
        let r = unsafe {
            self.list
                .search_value(key, &guard)
                .map(|n| (*n).element.clone().expect("user node has element"))
        };
        lf_metrics::op_end(op);
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: the guard pins this list's collector.
        let r = unsafe { self.list.search_value(key, &guard).is_some() };
        lf_metrics::op_end(op);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_roundtrip() {
        let list = HarrisList::new();
        let h = list.handle();
        for k in [3, 1, 4, 1, 5, 9, 2, 6] {
            let _ = h.insert(k, k * 10);
        }
        assert_eq!(list.len(), 7); // one duplicate
        for k in [1, 2, 3, 4, 5, 6, 9] {
            assert!(h.contains(&k));
            assert_eq!(h.get(&k), Some(k * 10));
        }
        assert!(!h.contains(&7));
        assert_eq!(h.remove(&4), Some(40));
        assert_eq!(h.remove(&4), None);
        assert_eq!(list.len(), 6);
    }

    #[test]
    fn empty_and_sentinel_edges() {
        let list: HarrisList<i64, ()> = HarrisList::new();
        let h = list.handle();
        assert!(!h.contains(&0));
        assert_eq!(h.remove(&0), None);
        assert!(h.insert(i64::MIN, ()));
        assert!(h.insert(i64::MAX, ()));
        assert!(h.contains(&i64::MIN) && h.contains(&i64::MAX));
    }

    #[test]
    fn concurrent_mixed_churn() {
        let list = Arc::new(HarrisList::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let h = list.handle();
                    for r in 0..300u64 {
                        let k = (r * (t + 3)) % 32;
                        if t % 2 == 0 {
                            let _ = h.insert(k, r);
                        } else {
                            let _ = h.remove(&k);
                        }
                    }
                });
            }
        });
        // Quiesced sanity: every contained key readable exactly once.
        let h = list.handle();
        for k in 0..32u64 {
            if h.contains(&k) {
                assert!(h.get(&k).is_some());
            }
        }
        list.validate_quiescent();
    }

    #[test]
    fn concurrent_unique_winners() {
        let list = Arc::new(HarrisList::new());
        let wins = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let list = list.clone();
                let wins = wins.clone();
                s.spawn(move || {
                    let h = list.handle();
                    for k in 0..100u32 {
                        if h.insert(k, ()) {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 100);
        assert_eq!(list.len(), 100);
    }
}

#[allow(clippy::items_after_test_module)]
impl<K, V> HarrisList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Check structural invariants on a **quiescent** list: strictly
    /// sorted keys, no marked nodes, chain reaches the tail, count
    /// matches [`len`](Self::len).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate_quiescent(&self) {
        let mut count = 0usize;
        // SAFETY: quiescent-only walk — the caller guarantees no
        // concurrent operations, so every reachable node stays valid.
        unsafe {
            let mut cur = self.head;
            loop {
                let succ = (*cur).succ.load(Ordering::SeqCst);
                assert!(!succ.is_marked(), "quiescent list has a marked node");
                let next = succ.ptr();
                if next.is_null() {
                    assert_eq!(cur, self.tail, "chain ends before the tail");
                    break;
                }
                assert!((*cur).key < (*next).key, "keys not strictly sorted");
                if (*next).key.as_key().is_some() {
                    count += 1;
                }
                cur = next;
            }
        }
        assert_eq!(count, self.len(), "len counter disagrees with chain");
    }
}
