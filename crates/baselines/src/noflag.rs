//! The flag-bit ablation ("Valois-style" recovery): backlinks
//! **without** flag bits.
//!
//! Deletion is two-step (mark, then unlink), as in Harris/Michael, but
//! before marking, the deleter stores a backlink to its *last known*
//! predecessor — which, without the paper's flag bits, may itself
//! already be marked. Operations recover from C&S failures by walking
//! backlinks instead of restarting, exactly like the
//! Fomitchev–Ruppert list, but because backlinks can point at marked
//! nodes, chains of backlinks can **grow rightwards** and be traversed
//! repeatedly — the §3.1 pathology that flag bits exist to eliminate.
//! Experiment E8 measures exactly this difference.
//!
//! # Memory
//!
//! Because a backlink may target a node that was unlinked arbitrarily
//! long ago, epoch reclamation cannot prove those targets alive.
//! Unlinked nodes therefore go to a *graveyard* freed only when the
//! list is dropped. This ablation trades memory for fidelity to the
//! recovery behaviour being measured; the paper treats memory
//! management as orthogonal (§5).

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

use lf_metrics::CasType;
use lf_tagged::{AtomicTaggedPtr, TaggedPtr};

use crate::Bound;

#[repr(align(8))]
struct Node<K, V> {
    key: Bound<K>,
    element: Option<V>,
    succ: AtomicTaggedPtr<Node<K, V>>,
    backlink: AtomicPtr<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn alloc(key: Bound<K>, element: Option<V>, right: *mut Node<K, V>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            key,
            element,
            succ: AtomicTaggedPtr::new(TaggedPtr::unmarked(right)),
            backlink: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }

    #[inline]
    fn succ(&self) -> TaggedPtr<Node<K, V>> {
        self.succ.load(Ordering::SeqCst)
    }

    #[inline]
    fn right(&self) -> *mut Node<K, V> {
        self.succ().ptr()
    }

    #[inline]
    fn is_marked(&self) -> bool {
        self.succ().is_marked()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Le,
    Lt,
}

#[inline]
fn key_before<K: Ord>(node_key: &Bound<K>, k: &K, mode: Mode) -> bool {
    match node_key {
        Bound::NegInf => true,
        Bound::PosInf => false,
        Bound::Key(nk) => match mode {
            Mode::Le => nk <= k,
            Mode::Lt => nk < k,
        },
    }
}

/// Backlinks-without-flags list (ablation baseline for experiment E8).
///
/// # Examples
///
/// ```
/// use lf_baselines::NoFlagList;
///
/// let list = NoFlagList::new();
/// let h = list.handle();
/// assert!(h.insert(7, "seven"));
/// assert_eq!(h.remove(&7), Some("seven"));
/// assert!(!h.contains(&7));
/// ```
pub struct NoFlagList<K, V> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    len: AtomicUsize,
    /// Unlinked nodes, freed on drop (see module docs).
    graveyard: Mutex<Vec<usize>>,
}

// SAFETY: all shared mutation goes through atomics; unlinked nodes are
// parked in the graveyard (never freed while the list lives), so raw
// pointers stay valid for the list's lifetime.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for NoFlagList<K, V> {}
// SAFETY: same argument as `Send` above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for NoFlagList<K, V> {}

impl<K, V> fmt::Debug for NoFlagList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NoFlagList")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K, V> Default for NoFlagList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> NoFlagList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Create an empty list.
    pub fn new() -> Self {
        let tail = Node::alloc(Bound::PosInf, None, std::ptr::null_mut());
        let head = Node::alloc(Bound::NegInf, None, tail);
        NoFlagList {
            head,
            tail,
            len: AtomicUsize::new(0),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Per-thread handle (API symmetry with the other lists; this
    /// structure has no per-thread reclamation state).
    pub fn handle(&self) -> NoFlagHandle<'_, K, V> {
        NoFlagHandle { list: self }
    }

    /// Number of elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physically unlink the marked `del` from `prev` (both-clean CAS).
    ///
    /// # Safety
    ///
    /// `prev` and `del` must be nodes of this list (unlinked nodes stay
    /// valid via the graveyard).
    unsafe fn help_marked(&self, prev: *mut Node<K, V>, del: *mut Node<K, V>) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let next = (*del).right();
            let res = (*prev).succ.compare_exchange(
                TaggedPtr::unmarked(del),
                TaggedPtr::unmarked(next),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            lf_metrics::record_cas(CasType::Unlink, res.is_ok());
            if res.is_ok() {
                self.graveyard.lock().unwrap().push(del as usize);
            }
        }
    }

    /// FR-style `SearchFrom` without the flag machinery.
    ///
    /// # Safety
    ///
    /// `curr` must be a node of this list with `curr.key <= k`.
    unsafe fn search_from(
        &self,
        k: &K,
        mut curr: *mut Node<K, V>,
        mode: Mode,
    ) -> (*mut Node<K, V>, *mut Node<K, V>) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let mut next = (*curr).right();
            while key_before(&(*next).key, k, mode) {
                loop {
                    let next_succ = (*next).succ();
                    if !next_succ.is_marked() {
                        break;
                    }
                    let curr_succ = (*curr).succ();
                    if curr_succ.is_marked() && curr_succ.ptr() == next {
                        break;
                    }
                    if (*curr).right() == next {
                        self.help_marked(curr, next);
                    }
                    next = (*curr).right();
                    lf_metrics::record_next_update();
                }
                if key_before(&(*next).key, k, mode) {
                    curr = next;
                    lf_metrics::record_curr_update();
                    next = (*curr).right();
                }
            }
            (curr, next)
        }
    }

    /// Walk backlinks from a marked node to the first unmarked one.
    /// Without flags this chain can be long and can revisit nodes.
    ///
    /// # Safety
    ///
    /// `prev` must be a node of this list.
    unsafe fn recover(&self, mut prev: *mut Node<K, V>) -> *mut Node<K, V> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            while (*prev).is_marked() {
                let back = (*prev).backlink.load(Ordering::SeqCst);
                if back.is_null() {
                    // Marked before any deleter stored a backlink is
                    // impossible (store precedes mark), but be defensive:
                    // restart from the head.
                    return self.head;
                }
                prev = back;
                lf_metrics::record_backlink();
            }
            prev
        }
    }

    /// # Safety
    ///
    /// Must only be called while the list is live; node pointers stay
    /// valid via the graveyard.
    unsafe fn insert_impl(&self, key: K, value: V) -> bool {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let (mut prev, mut next) = self.search_from(&key, self.head, Mode::Le);
            if (*prev).key.as_key() == Some(&key) {
                return false;
            }
            let new_node = Node::alloc(Bound::Key(key), Some(value), std::ptr::null_mut());
            loop {
                (*new_node)
                    .succ
                    .store(TaggedPtr::unmarked(next), Ordering::SeqCst);
                let res = (*prev).succ.compare_exchange(
                    TaggedPtr::unmarked(next),
                    TaggedPtr::unmarked(new_node),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Insert, res.is_ok());
                if res.is_ok() {
                    self.len.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                prev = self.recover(prev);
                let key_ref = (*new_node).key.as_key().expect("user key");
                let (p, n) = self.search_from(key_ref, prev, Mode::Le);
                prev = p;
                next = n;
                if (*prev).key == (*new_node).key {
                    drop(Box::from_raw(new_node));
                    return false;
                }
            }
        }
    }

    /// # Safety
    ///
    /// Must only be called while the list is live; node pointers stay
    /// valid via the graveyard.
    unsafe fn delete_impl(&self, k: &K) -> Option<V>
    where
        V: Clone,
    {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let (mut prev, del) = self.search_from(k, self.head, Mode::Lt);
            if (*del).key.as_key() != Some(k) {
                return None;
            }
            loop {
                // Store the backlink to the last-known predecessor *before*
                // marking — without a flag, `prev` may already be marked.
                (*del).backlink.store(prev, Ordering::SeqCst);
                let del_succ = (*del).succ();
                if del_succ.is_marked() {
                    // Another operation's deletion wins.
                    return None;
                }
                let res = (*del).succ.compare_exchange(
                    del_succ,
                    del_succ.with_mark(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Mark, res.is_ok());
                if res.is_ok() {
                    self.len.fetch_sub(1, Ordering::SeqCst);
                    let value = (*del).element.clone().expect("user node has element");
                    self.help_marked(prev, del);
                    return Some(value);
                }
                // `del.succ` changed: either someone marked it (next loop
                // iteration returns None) or a node was inserted after it.
                // Keep `prev` fresh enough by re-searching from a recovered
                // position.
                prev = self.recover(prev);
                let (p, d) = self.search_from(k, prev, Mode::Lt);
                prev = p;
                if d != del {
                    // `del` was unlinked by someone else after being marked.
                    return None;
                }
            }
        }
    }

    /// # Safety
    ///
    /// Must only be called while the list is live; node pointers stay
    /// valid via the graveyard.
    unsafe fn find(&self, k: &K) -> Option<*mut Node<K, V>> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let (curr, _) = self.search_from(k, self.head, Mode::Le);
            ((*curr).key.as_key() == Some(k)).then_some(curr)
        }
    }
}

impl<K, V> Drop for NoFlagList<K, V> {
    fn drop(&mut self) {
        for &addr in self.graveyard.lock().unwrap().iter() {
            // SAFETY: graveyard entries are unlinked Box-allocated nodes,
            // recorded exactly once by the winning unlink CAS.
            drop(unsafe { Box::from_raw(addr as *mut Node<K, V>) });
        }
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: &mut self — no concurrent access; the remaining
            // chain holds only live Box-allocated nodes.
            let next = unsafe { (*cur).right() };
            // SAFETY: as above; each chained node is freed exactly once.
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
        let _ = self.tail;
    }
}

/// Per-thread handle to a [`NoFlagList`].
pub struct NoFlagHandle<'l, K, V> {
    list: &'l NoFlagList<K, V>,
}

impl<K, V> fmt::Debug for NoFlagHandle<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("NoFlagHandle")
    }
}

impl<K, V> NoFlagHandle<'_, K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Insert `key → value`; returns `false` on duplicate.
    pub fn insert(&self, key: K, value: V) -> bool {
        let op = lf_metrics::op_begin();
        // SAFETY: the borrowed list is live; graveyard keeps pointers valid.
        let r = unsafe { self.list.insert_impl(key, value) };
        lf_metrics::op_end(op);
        r
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        // SAFETY: as for `insert`.
        let r = unsafe { self.list.delete_impl(key) };
        lf_metrics::op_end(op);
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let op = lf_metrics::op_begin();
        // SAFETY: as for `insert`.
        let r = unsafe { self.list.find(key).is_some() };
        lf_metrics::op_end(op);
        r
    }

    /// Look up `key`, cloning its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        // SAFETY: as for `insert`; the found node is a live user node.
        let r = unsafe {
            self.list
                .find(key)
                .map(|n| (*n).element.clone().expect("user node has element"))
        };
        lf_metrics::op_end(op);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_roundtrip() {
        let list = NoFlagList::new();
        let h = list.handle();
        for k in 0..50u32 {
            assert!(h.insert(k, k));
        }
        assert!(!h.insert(25, 99));
        assert_eq!(list.len(), 50);
        for k in (0..50u32).step_by(2) {
            assert_eq!(h.remove(&k), Some(k));
        }
        for k in 0..50u32 {
            assert_eq!(h.contains(&k), k % 2 == 1);
        }
    }

    #[test]
    fn delete_missing() {
        let list: NoFlagList<u32, u32> = NoFlagList::new();
        assert_eq!(list.handle().remove(&1), None);
    }

    #[test]
    fn concurrent_churn_sound() {
        let list = Arc::new(NoFlagList::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let h = list.handle();
                    for r in 0..300u64 {
                        let k = (r * (t + 3)) % 24;
                        if t % 2 == 0 {
                            let _ = h.insert(k, r);
                        } else {
                            let _ = h.remove(&k);
                        }
                    }
                });
            }
        });
        let h = list.handle();
        for k in 0..24u64 {
            let _ = h.contains(&k);
        }
    }

    #[test]
    fn concurrent_unique_remove_winners() {
        let list = Arc::new(NoFlagList::new());
        {
            let h = list.handle();
            for k in 0..100u32 {
                h.insert(k, k);
            }
        }
        let wins = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let list = list.clone();
                let wins = wins.clone();
                s.spawn(move || {
                    let h = list.handle();
                    for k in 0..100u32 {
                        if h.remove(&k).is_some() {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 100);
        assert_eq!(list.len(), 0);
    }
}
