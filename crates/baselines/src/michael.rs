//! Michael's lock-free list-based set (M. Michael, *High Performance
//! Dynamic Lock-Free Hash Tables and List-Based Sets*, SPAA 2002) —
//! the paper's reference \[8\].
//!
//! Michael kept Harris's mark-bit design but made it compatible with
//! **hazard-pointer** safe memory reclamation: a traversal publishes
//! each node in a hazard slot and re-validates its source before
//! dereferencing, and marked nodes are unlinked **one at a time** (no
//! chain snips — a chain's interior nodes couldn't all be protected).
//! Like Harris's list, any C&S failure restarts the operation from the
//! head; the Fomitchev–Ruppert backlinks are exactly what removes that
//! restart.
//!
//! Memory is managed end-to-end by [`lf_hazard`], so the workspace
//! exercises both reclamation schemes named in the paper's related
//! work (epochs in the core crate, hazard pointers here).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use lf_hazard::{Domain, HazardHandle};
use lf_metrics::CasType;
use lf_tagged::{AtomicTaggedPtr, TaggedPtr};

use crate::Bound;

#[repr(align(8))]
struct Node<K, V> {
    key: Bound<K>,
    element: Option<V>,
    /// Right pointer + mark bit (mark = this node is deleted).
    succ: AtomicTaggedPtr<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    fn alloc(key: Bound<K>, element: Option<V>, right: *mut Node<K, V>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            key,
            element,
            succ: AtomicTaggedPtr::new(TaggedPtr::unmarked(right)),
        }))
    }
}

/// Michael's hazard-pointer list-based set/map.
///
/// # Examples
///
/// ```
/// use lf_baselines::MichaelList;
///
/// let list = MichaelList::new();
/// let h = list.handle();
/// assert!(h.insert(1, "one"));
/// assert!(!h.insert(1, "dup"));
/// assert_eq!(h.get(&1), Some("one"));
/// assert_eq!(h.remove(&1), Some("one"));
/// assert!(!h.contains(&1));
/// ```
pub struct MichaelList<K, V> {
    head: *mut Node<K, V>,
    tail: *mut Node<K, V>,
    domain: Domain,
    len: AtomicUsize,
}

// SAFETY: all shared mutation goes through atomics; reclamation is
// hazard-pointer-protected, so cross-thread frees wait for readers.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for MichaelList<K, V> {}
// SAFETY: same argument as `Send` above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for MichaelList<K, V> {}

impl<K, V> fmt::Debug for MichaelList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MichaelList")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K, V> Default for MichaelList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

/// What `find` hands back: the predecessor's successor **field**, the
/// found node, and that node's successor snapshot. Hazard slots 0 and 1
/// protect the predecessor and found node respectively for as long as
/// the caller keeps them.
struct FindResult<K, V> {
    prev_field: *const AtomicTaggedPtr<Node<K, V>>,
    cur: *mut Node<K, V>,
    cur_succ: TaggedPtr<Node<K, V>>,
    found: bool,
}

impl<K, V> MichaelList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Create an empty list.
    pub fn new() -> Self {
        let tail = Node::alloc(Bound::PosInf, None, std::ptr::null_mut());
        let head = Node::alloc(Bound::NegInf, None, tail);
        MichaelList {
            head,
            tail,
            domain: Domain::new(),
            len: AtomicUsize::new(0),
        }
    }

    /// Register the calling thread and return an operation handle.
    pub fn handle(&self) -> MichaelHandle<'_, K, V> {
        MichaelHandle {
            list: self,
            hazard: self.domain.register(),
        }
    }

    /// Number of elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Michael's `find`: position on the first node with `key >= k`,
    /// unlinking (and retiring) marked nodes one at a time. On any C&S
    /// failure or validation failure, restarts from the head.
    ///
    /// # Safety
    ///
    /// `hazard` must belong to this list's domain. On return, hazard
    /// slots 0/1 protect the predecessor/current node.
    unsafe fn find(&self, k: &K, hazard: &HazardHandle) -> FindResult<K, V> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            'retry: loop {
                // The head is never retired; no hazard needed for it.
                hazard.clear(0);
                let mut prev_field: *const AtomicTaggedPtr<Node<K, V>> = &(*self.head).succ;
                let mut cur = (*prev_field).load(Ordering::SeqCst).ptr();
                loop {
                    // Publish cur, then validate prev still points at it
                    // cleanly (Michael's ⟨0, cur⟩ check).
                    hazard.publish(1, cur);
                    let check = (*prev_field).load(Ordering::SeqCst);
                    if check.ptr() != cur || check.is_marked() {
                        continue 'retry;
                    }
                    let cur_succ = (*cur).succ.load(Ordering::SeqCst);
                    if cur_succ.is_marked() {
                        // cur is logically deleted: unlink this single node.
                        let res = (*prev_field).compare_exchange(
                            TaggedPtr::unmarked(cur),
                            TaggedPtr::unmarked(cur_succ.ptr()),
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                        lf_metrics::record_cas(CasType::Unlink, res.is_ok());
                        if res.is_err() {
                            continue 'retry;
                        }
                        hazard.retire(cur);
                        cur = cur_succ.ptr();
                        lf_metrics::record_next_update();
                        continue;
                    }
                    let key_ge = match &(*cur).key {
                        Bound::NegInf => false,
                        Bound::PosInf => true,
                        Bound::Key(ck) => ck >= k,
                    };
                    if key_ge {
                        return FindResult {
                            prev_field,
                            cur,
                            cur_succ,
                            found: (*cur).key.as_key() == Some(k),
                        };
                    }
                    // Advance: cur becomes the predecessor (rotate hazards).
                    hazard.publish(0, cur);
                    prev_field = &(*cur).succ;
                    cur = cur_succ.ptr();
                    lf_metrics::record_curr_update();
                }
            }
        }
    }
}

impl<K, V> Drop for MichaelList<K, V> {
    fn drop(&mut self) {
        let mut cur = self.head;
        while !cur.is_null() {
            // SAFETY: unique access (`&mut self`); nodes still linked
            // from the head were Box-allocated and are freed once here.
            let next = unsafe { (*cur).succ.load(Ordering::SeqCst).ptr() };
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
        let _ = self.tail;
    }
}

/// Per-thread handle to a [`MichaelList`]. Not `Send`.
pub struct MichaelHandle<'l, K, V> {
    list: &'l MichaelList<K, V>,
    hazard: HazardHandle,
}

impl<K, V> fmt::Debug for MichaelHandle<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MichaelHandle")
    }
}

impl<K, V> MichaelHandle<'_, K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn release(&self) {
        self.hazard.clear(0);
        self.hazard.clear(1);
    }

    /// Insert `key → value`; returns `false` on duplicate.
    pub fn insert(&self, key: K, value: V) -> bool {
        let new_node = Node::alloc(Bound::Key(key), Some(value), std::ptr::null_mut());
        let op = lf_metrics::op_begin();
        // SAFETY: `find` publishes hazard pointers for every node it
        // returns, so the dereferenced nodes cannot be freed until
        // `release`; retirement goes through the hazard domain.
        let r = unsafe {
            loop {
                let key_ref = (*new_node).key.as_key().expect("user key");
                let f = self.list.find(key_ref, &self.hazard);
                if f.found {
                    drop(Box::from_raw(new_node));
                    break false;
                }
                (*new_node)
                    .succ
                    .store(TaggedPtr::unmarked(f.cur), Ordering::SeqCst);
                let res = (*f.prev_field).compare_exchange(
                    TaggedPtr::unmarked(f.cur),
                    TaggedPtr::unmarked(new_node),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Insert, res.is_ok());
                if res.is_ok() {
                    self.list.len.fetch_add(1, Ordering::SeqCst);
                    break true;
                }
                // Restart from the head.
            }
        };
        self.release();
        lf_metrics::op_end(op);
        r
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        // SAFETY: `find` publishes hazard pointers for every node it
        // returns, so the dereferenced nodes cannot be freed until
        // `release`; retirement goes through the hazard domain.
        let r = unsafe {
            loop {
                let f = self.list.find(key, &self.hazard);
                if !f.found {
                    break None;
                }
                // Logical deletion: mark cur's successor field.
                let res = (*f.cur).succ.compare_exchange(
                    f.cur_succ,
                    f.cur_succ.with_mark(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Mark, res.is_ok());
                if res.is_err() {
                    continue; // restart from the head
                }
                self.list.len.fetch_sub(1, Ordering::SeqCst);
                let value = (*f.cur).element.clone().expect("user node has element");
                // Physical deletion: try the single unlink; on failure
                // a later find will do it.
                let unlinked = (*f.prev_field)
                    .compare_exchange(
                        TaggedPtr::unmarked(f.cur),
                        TaggedPtr::unmarked(f.cur_succ.ptr()),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok();
                lf_metrics::record_cas(CasType::Unlink, unlinked);
                if unlinked {
                    self.hazard.retire(f.cur);
                }
                break Some(value);
            }
        };
        self.release();
        lf_metrics::op_end(op);
        r
    }

    /// Look up `key`, cloning its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let op = lf_metrics::op_begin();
        // SAFETY: `find` publishes hazard pointers for every node it
        // returns, so the dereferenced nodes cannot be freed until
        // `release`; retirement goes through the hazard domain.
        let r = unsafe {
            let f = self.list.find(key, &self.hazard);
            f.found
                .then(|| (*f.cur).element.clone().expect("user node has element"))
        };
        self.release();
        lf_metrics::op_end(op);
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let op = lf_metrics::op_begin();
        // SAFETY: as for `get` — hazards protect the traversal.
        let r = unsafe { self.list.find(key, &self.hazard).found };
        self.release();
        lf_metrics::op_end(op);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_roundtrip() {
        let list = MichaelList::new();
        let h = list.handle();
        for k in [5, 1, 9, 3, 7] {
            assert!(h.insert(k, k * 10));
        }
        assert!(!h.insert(3, 0));
        assert_eq!(list.len(), 5);
        for k in [1, 3, 5, 7, 9] {
            assert_eq!(h.get(&k), Some(k * 10));
        }
        assert_eq!(h.remove(&5), Some(50));
        assert_eq!(h.remove(&5), None);
        assert!(!h.contains(&5));
        assert_eq!(list.len(), 4);
    }

    #[test]
    fn reinsert_after_remove() {
        let list = MichaelList::new();
        let h = list.handle();
        for round in 0..50 {
            assert!(h.insert(7, round));
            assert_eq!(h.remove(&7), Some(round));
        }
        assert!(list.is_empty());
    }

    #[test]
    fn concurrent_unique_winners() {
        let list = Arc::new(MichaelList::new());
        let wins = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let list = list.clone();
                let wins = wins.clone();
                s.spawn(move || {
                    let h = list.handle();
                    for k in 0..100u32 {
                        if h.insert(k, ()) {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 100);
        assert_eq!(list.len(), 100);
    }

    #[test]
    fn concurrent_churn_sound() {
        let list = Arc::new(MichaelList::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let h = list.handle();
                    for r in 0..400u64 {
                        let k = (r * (t + 3)) % 32;
                        if t % 2 == 0 {
                            let _ = h.insert(k, r);
                        } else {
                            let _ = h.remove(&k);
                        }
                    }
                });
            }
        });
        let h = list.handle();
        for k in 0..32u64 {
            if h.contains(&k) {
                assert!(h.get(&k).is_some());
            }
        }
        drop(h);
        list.validate_quiescent();
    }

    /// Values are freed through hazard-pointer scans, not just at drop.
    #[test]
    fn hazard_reclamation_frees_before_drop() {
        #[derive(Clone, Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let list = MichaelList::new();
        let h = list.handle();
        const N: u32 = 300;
        for k in 0..N {
            assert!(h.insert(k, Counted(drops.clone())));
        }
        for k in 0..N {
            drop(h.remove(&k)); // drops the clone immediately
        }
        // Clones account for N; originals free via scans.
        let freed_originals = drops.load(Ordering::SeqCst).saturating_sub(N as usize);
        assert!(
            freed_originals >= (N as usize) / 2,
            "hazard scans freed only {freed_originals}/{N}"
        );
    }
}

#[allow(clippy::items_after_test_module)]
impl<K, V> MichaelList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Check structural invariants on a **quiescent** list (see
    /// `HarrisList::validate_quiescent`).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate_quiescent(&self) {
        let mut count = 0usize;
        // SAFETY: quiescent-only walk — the caller guarantees no
        // concurrent operations, so every reachable node stays valid.
        unsafe {
            let mut cur = self.head;
            loop {
                let succ = (*cur).succ.load(Ordering::SeqCst);
                assert!(!succ.is_marked(), "quiescent list has a marked node");
                let next = succ.ptr();
                if next.is_null() {
                    assert_eq!(cur, self.tail, "chain ends before the tail");
                    break;
                }
                assert!((*cur).key < (*next).key, "keys not strictly sorted");
                if (*next).key.as_key().is_some() {
                    count += 1;
                }
                cur = next;
            }
        }
        assert_eq!(count, self.len(), "len counter disagrees with chain");
    }
}
