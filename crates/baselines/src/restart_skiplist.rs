//! A Fraser/Harris-style lock-free skip list: per-level Harris lists,
//! no backlinks, no flag bits — an operation that detects interference
//! **restarts its descent from the top of the skip list**.
//!
//! This is the design style of Fraser (2003) and, per the paper's §2,
//! of the lock-free skip lists developed concurrently with
//! Fomitchev–Ruppert. It shares this workspace's tower architecture
//! (one node per level, `down`/`tower_root` pointers, tower-scoped
//! reclamation), so benchmark comparisons against [`lf_core::SkipList`]
//! isolate exactly the recovery strategy: restart-from-top versus
//! backlink recovery with flag bits.
//!
//! Interrupted constructions are handled the way the paper notes is
//! possible for Harris-style designs (§4): when an inserter discovers
//! its root got marked, it *marks the node it just linked*, making the
//! whole tower uniformly marked so searches snip it out.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

use lf_metrics::CasType;
use lf_reclaim::{Collector, Guard, LocalHandle};
use lf_tagged::{AtomicTaggedPtr, TaggedPtr};
use rand::Rng;

use crate::Bound;

const MAX_LEVEL: usize = 32;

/// Per-level `(left, right)` bracketing pairs from a descent.
type LevelPairs<K, V> = Vec<(*mut Node<K, V>, *mut Node<K, V>)>;

#[repr(align(8))]
struct Node<K, V> {
    key: Bound<K>,
    element: Option<V>,
    /// Right pointer + mark bit (no flag bit in this design).
    succ: AtomicTaggedPtr<Node<K, V>>,
    down: *mut Node<K, V>,
    tower_root: *mut Node<K, V>,
    /// Root only: linked-node count + construction reference.
    remaining: AtomicUsize,
    /// Root only: topmost node (written only by the inserter).
    top: AtomicPtr<Node<K, V>>,
    /// Claimed by the single snip that releases this node's tower
    /// reference (snipped chains can overlap; see `search_level`).
    released: AtomicBool,
}

impl<K, V> Node<K, V> {
    fn alloc_root(key: K, element: V) -> *mut Self {
        let node = Box::into_raw(Box::new(Node {
            key: Bound::Key(key),
            element: Some(element),
            succ: AtomicTaggedPtr::new(TaggedPtr::null()),
            down: std::ptr::null_mut(),
            tower_root: std::ptr::null_mut(),
            remaining: AtomicUsize::new(2),
            top: AtomicPtr::new(std::ptr::null_mut()),
            released: AtomicBool::new(false),
        }));
        // SAFETY: `node` was just allocated and is not yet shared.
        unsafe {
            (*node).tower_root = node;
            (*node).top.store(node, Ordering::SeqCst);
        }
        node
    }

    fn alloc_upper(down: *mut Node<K, V>, tower_root: *mut Node<K, V>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            key: Bound::NegInf, // placeholder; read through tower_root
            element: None,
            succ: AtomicTaggedPtr::new(TaggedPtr::null()),
            down,
            tower_root,
            remaining: AtomicUsize::new(0),
            top: AtomicPtr::new(std::ptr::null_mut()),
            released: AtomicBool::new(false),
        }))
    }

    fn alloc_sentinel(key: Bound<K>, down: *mut Node<K, V>) -> *mut Self {
        let node = Box::into_raw(Box::new(Node {
            key,
            element: None,
            succ: AtomicTaggedPtr::new(TaggedPtr::null()),
            down,
            tower_root: std::ptr::null_mut(),
            remaining: AtomicUsize::new(1),
            top: AtomicPtr::new(std::ptr::null_mut()),
            released: AtomicBool::new(false),
        }));
        // SAFETY: `node` was just allocated and is not yet shared.
        unsafe {
            (*node).tower_root = node;
            (*node).top.store(node, Ordering::SeqCst);
        }
        node
    }

    /// # Safety
    ///
    /// `tower_root` must point at a live root node (true for any node
    /// reached through the list under a guard).
    unsafe fn key_ref(&self) -> &Bound<K> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe { &(*self.tower_root).key }
    }

    fn succ(&self) -> TaggedPtr<Node<K, V>> {
        self.succ.load(Ordering::SeqCst)
    }

    fn is_marked(&self) -> bool {
        self.succ().is_marked()
    }
}

/// A restart-on-interference lock-free skip list (Fraser/Harris style).
///
/// # Examples
///
/// ```
/// use lf_baselines::RestartSkipList;
///
/// let sl = RestartSkipList::new();
/// let h = sl.handle();
/// assert!(h.insert(1, "one"));
/// assert!(!h.insert(1, "dup"));
/// assert_eq!(h.remove(&1), Some("one"));
/// assert!(!h.contains(&1));
/// ```
pub struct RestartSkipList<K, V> {
    heads: Vec<*mut Node<K, V>>,
    tails: Vec<*mut Node<K, V>>,
    collector: Collector,
    len: AtomicUsize,
}

// SAFETY: all shared mutation goes through atomics; node reclamation is
// epoch-protected, so raw pointers reached under a guard stay valid.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for RestartSkipList<K, V> {}
// SAFETY: same argument as `Send` above.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for RestartSkipList<K, V> {}

impl<K, V> fmt::Debug for RestartSkipList<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RestartSkipList")
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K, V> Default for RestartSkipList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> RestartSkipList<K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Create an empty skip list.
    pub fn new() -> Self {
        let mut heads = Vec::with_capacity(MAX_LEVEL);
        let mut tails = Vec::with_capacity(MAX_LEVEL);
        let mut below: (*mut Node<K, V>, *mut Node<K, V>) =
            (std::ptr::null_mut(), std::ptr::null_mut());
        for _ in 0..MAX_LEVEL {
            let tail = Node::alloc_sentinel(Bound::PosInf, below.1);
            let head = Node::alloc_sentinel(Bound::NegInf, below.0);
            // SAFETY: `head` was just allocated and is not yet shared.
            unsafe {
                (*head)
                    .succ
                    .store(TaggedPtr::unmarked(tail), Ordering::SeqCst);
            }
            heads.push(head);
            tails.push(tail);
            below = (head, tail);
        }
        RestartSkipList {
            heads,
            tails,
            collector: Collector::new(),
            len: AtomicUsize::new(0),
        }
    }

    /// Register the calling thread and return an operation handle.
    pub fn handle(&self) -> RestartHandle<'_, K, V> {
        RestartHandle {
            list: self,
            reclaim: self.collector.register(),
        }
    }

    /// Number of elements (exact when quiescent).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether the skip list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn random_height(&self) -> usize {
        let mut rng = rand::thread_rng();
        let mut h = 1;
        while h < MAX_LEVEL - 1 && rng.gen::<bool>() {
            h += 1;
        }
        h
    }

    fn start_level(&self) -> usize {
        let mut level = MAX_LEVEL - 1;
        while level > 1 {
            // SAFETY: head sentinels live as long as the list.
            if unsafe { (*self.heads[level - 1]).right_clean() } != self.tails[level - 1] {
                break;
            }
            level -= 1;
        }
        level
    }

    /// # Safety
    ///
    /// `root` must be a tower root of this list protected by `guard`;
    /// the caller must own one reference on `root.remaining`.
    unsafe fn release_tower_ref(&self, root: *mut Node<K, V>, guard: &Guard<'_>) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            if (*root).remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                let mut cur = (*root).top.load(Ordering::SeqCst);
                while !cur.is_null() {
                    let down = (*cur).down;
                    let addr = cur as usize;
                    guard.defer_unchecked(move || drop(Box::from_raw(addr as *mut Node<K, V>)));
                    cur = down;
                }
            }
        }
    }

    /// One full descent: Harris-style search at every level from the
    /// start level down to level 1, snipping marked chains. Returns the
    /// per-level `(left, right)` pairs indexed `[level - 1]` for levels
    /// `1..=start` (with `start >= min_start`, so inserters get pairs
    /// for every level they will link), or `None` if any snip C&S
    /// failed (the caller must restart from the top — the defining cost
    /// of this design).
    ///
    /// # Safety
    ///
    /// `guard` must pin this list's collector; returned pointers are
    /// valid while it lives.
    unsafe fn descend(
        &self,
        k: &K,
        min_start: usize,
        guard: &Guard<'_>,
    ) -> Option<LevelPairs<K, V>> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let start = self.start_level().max(min_start);
            let mut out = vec![(std::ptr::null_mut(), std::ptr::null_mut()); start];
            let mut curr = self.heads[start - 1];
            for level in (1..=start).rev() {
                let (left, right) = self.search_level(k, curr, guard)?;
                out[level - 1] = (left, right);
                if level > 1 {
                    curr = (*left).down;
                }
            }
            Some(out)
        }
    }

    /// Harris search on one level starting at `curr` (`curr.key < k`):
    /// returns `(left, right)` with `left.key < k <= right.key`,
    /// snipping marked chains. `None` = snip C&S failed.
    ///
    /// # Safety
    ///
    /// `curr` must be a node of this list protected by `guard`, with
    /// `curr.key < k`.
    #[allow(clippy::type_complexity)]
    unsafe fn search_level(
        &self,
        k: &K,
        curr: *mut Node<K, V>,
        guard: &Guard<'_>,
    ) -> Option<(*mut Node<K, V>, *mut Node<K, V>)> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let mut left = curr;
            let mut left_succ = (*left).succ();
            let right;
            let mut t = curr;
            let mut t_succ = (*t).succ();
            loop {
                if !t_succ.is_marked() {
                    left = t;
                    left_succ = t_succ;
                }
                t = t_succ.ptr();
                if t.is_null() {
                    return None; // walked off a frozen edge; restart
                }
                lf_metrics::record_curr_update();
                t_succ = (*t).succ();
                let key_lt = match (*t).key_ref() {
                    Bound::NegInf => true,
                    Bound::PosInf => false,
                    Bound::Key(nk) => nk < k,
                };
                if !(t_succ.is_marked() || key_lt) {
                    right = t;
                    break;
                }
            }
            if left_succ.ptr() == right {
                if (*right).is_marked() {
                    return None;
                }
                return Some((left, right));
            }
            let res = (*left).succ.compare_exchange(
                left_succ,
                TaggedPtr::unmarked(right),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            lf_metrics::record_cas(CasType::Unlink, res.is_ok());
            match res {
                Ok(_) => {
                    // Release each snipped node's tower reference. Chains
                    // from different snips can overlap (frozen marked
                    // pointers still lead through regions an earlier snip
                    // removed), so each node's release is claimed with a
                    // CAS and happens exactly once.
                    let mut cur = left_succ.ptr();
                    while cur != right {
                        let next = (*cur).succ().ptr();
                        if (*cur)
                            .released
                            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            self.release_tower_ref((*cur).tower_root, guard);
                        }
                        cur = next;
                    }
                    if (*right).is_marked() {
                        return None;
                    }
                    Some((left, right))
                }
                Err(_) => None,
            }
        }
    }

    /// Keep descending until a full descent succeeds without any snip
    /// failure (each failure restarts from the top — this is where the
    /// restart penalty accrues).
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::descend`].
    unsafe fn descend_retry(&self, k: &K, min_start: usize, guard: &Guard<'_>) -> LevelPairs<K, V> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let mut restarts: u32 = 0;
            loop {
                if let Some(v) = self.descend(k, min_start, guard) {
                    return v;
                }
                restarts += 1;
                // Every restart is triggered by another thread's C&S
                // landing mid-descent, so a long burst of consecutive
                // restarts means this thread keeps losing to (and keeps
                // invalidating) its peers. On an oversubscribed or
                // single-core machine that mutual invalidation can persist
                // across whole scheduling quanta; yielding occasionally
                // lets the operation that would unblock the rest actually
                // finish. Scheduling aid only — the algorithm is unchanged.
                if restarts.is_multiple_of(32) {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Mark `node` (loop until marked by someone).
    ///
    /// # Safety
    ///
    /// `node` must be a node of this list protected by the caller's
    /// guard.
    unsafe fn mark_node(&self, node: *mut Node<K, V>) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            loop {
                let succ = (*node).succ();
                if succ.is_marked() {
                    return;
                }
                let res = (*node).succ.compare_exchange(
                    succ,
                    succ.with_mark(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Mark, res.is_ok());
                if res.is_ok() {
                    return;
                }
            }
        }
    }

    /// # Safety
    ///
    /// `guard` must pin this list's collector.
    unsafe fn insert_impl(&self, key: K, value: V, guard: &Guard<'_>) -> bool {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let height = self.random_height();
            let mut levels = self.descend_retry(&key, height, guard);
            {
                let (_, right) = levels[0];
                if (*right).key_ref().as_key() == Some(&key) {
                    return false;
                }
            }
            let root = Node::alloc_root(key, value);
            let mut new_node = root;

            'levels: for level in 1..=height {
                if level > 1 {
                    let upper = Node::alloc_upper(new_node, root);
                    (*root).remaining.fetch_add(1, Ordering::SeqCst);
                    (*root).top.store(upper, Ordering::SeqCst);
                    new_node = upper;
                }
                // Link `new_node` at `level`, restarting the descent from
                // the top on any failure.
                loop {
                    let (left, right) = levels[level - 1];
                    if (*right).key_ref().as_key() == (*root).key.as_key() {
                        if level == 1 {
                            // Lost the race to another inserter of the key.
                            drop(Box::from_raw(root));
                            return false;
                        }
                        // A transiently-unmarked node of a superfluous tower
                        // with our key occupies this level; help mark it so
                        // the re-descent snips it (keeps us lock-free).
                        self.mark_node(right);
                        let key_ref = (*root).key.as_key().expect("root has user key");
                        levels = self.descend_retry(key_ref, height, guard);
                        continue;
                    }
                    // Publish the forward pointer. `new_node` is unlinked
                    // but — for level > 1 — not private: `top` already
                    // points at it, and the deleter that marked our root
                    // walks the `top` chain marking every node it finds,
                    // linked or not. A plain store here could erase such a
                    // mark and then link a node the deleter believes is
                    // dead (a mark must be frozen forever once set — the
                    // snip walk and the search termination both rely on
                    // it). C&S from the observed value instead, and treat
                    // a mark as the tower's death sentence.
                    let observed = (*new_node).succ();
                    let doomed = observed.is_marked()
                        || (*new_node)
                            .succ
                            .compare_exchange(
                                observed,
                                TaggedPtr::unmarked(right),
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_err();
                    if doomed {
                        // The only other writer to an unlinked node's succ
                        // is that marking walk, so a C&S failure re-reads
                        // as marked. The walk started at `top == new_node`
                        // and marked everything below it, so every linked
                        // node of the tower is already marked and will be
                        // snipped; abandoning construction leaks nothing.
                        debug_assert!(new_node != root, "unlinked root cannot be reached");
                        debug_assert!((*new_node).is_marked());
                        debug_assert!((*root).is_marked());
                        // Undo this never-linked node's accounting and free
                        // it after grace (the marking deleter still holds a
                        // reference it obtained under its guard).
                        (*root).top.store((*new_node).down, Ordering::SeqCst);
                        (*root).remaining.fetch_sub(1, Ordering::SeqCst);
                        let addr = new_node as usize;
                        guard.defer_unchecked(move || drop(Box::from_raw(addr as *mut Node<K, V>)));
                        break 'levels;
                    }
                    let res = (*left).succ.compare_exchange(
                        TaggedPtr::unmarked(right),
                        TaggedPtr::unmarked(new_node),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    lf_metrics::record_cas(CasType::Insert, res.is_ok());
                    if res.is_ok() {
                        break;
                    }
                    // Restart from the very top (no backlinks to recover by).
                    let key_ref = (*root).key.as_key().expect("root has user key");
                    levels = self.descend_retry(key_ref, height, guard);
                }
                if level == 1 {
                    self.len.fetch_add(1, Ordering::SeqCst);
                }
                // Interrupted construction: if our root got marked, mark the
                // node we just linked (uninserted-node marking, §4) so
                // searches snip the whole tower, then stop.
                if (*root).is_marked() {
                    if new_node != root {
                        self.mark_node(new_node);
                    }
                    break;
                }
            }
            self.release_tower_ref(root, guard); // construction reference
            true
        }
    }

    /// # Safety
    ///
    /// `guard` must pin this list's collector.
    unsafe fn delete_impl(&self, k: &K, guard: &Guard<'_>) -> Option<V>
    where
        V: Clone,
    {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            loop {
                let levels = self.descend_retry(k, 1, guard);
                let (_, root) = levels[0];
                if (*root).key_ref().as_key() != Some(k) {
                    return None;
                }
                // Claim the deletion by marking the root (linearization
                // point of a successful deletion).
                let succ = (*root).succ();
                if succ.is_marked() {
                    return None;
                }
                let res = (*root).succ.compare_exchange(
                    succ,
                    succ.with_mark(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                lf_metrics::record_cas(CasType::Mark, res.is_ok());
                if res.is_err() {
                    // Someone else marked it, or a neighbouring insert
                    // changed the field: restart the whole delete.
                    continue;
                }
                self.len.fetch_sub(1, Ordering::SeqCst);
                let value = (*root).element.clone().expect("root has element");
                // Mark the rest of the tower (top chain) so searches snip it.
                let mut cur = (*root).top.load(Ordering::SeqCst);
                while cur != root && !cur.is_null() {
                    self.mark_node(cur);
                    cur = (*cur).down;
                }
                // One cleaning descent to unlink what we marked.
                let _ = self.descend(k, 1, guard);
                return Some(value);
            }
        }
    }

    /// # Safety
    ///
    /// `guard` must pin this list's collector; the returned pointer is
    /// valid while it lives.
    unsafe fn find(&self, k: &K, guard: &Guard<'_>) -> Option<*mut Node<K, V>> {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            let levels = self.descend_retry(k, 1, guard);
            let (_, right) = levels[0];
            ((*right).key_ref().as_key() == Some(k)).then_some(right)
        }
    }
}

impl<K, V> Node<K, V> {
    fn right_clean(&self) -> *mut Node<K, V> {
        self.succ.load(Ordering::SeqCst).ptr()
    }
}

impl<K, V> Drop for RestartSkipList<K, V> {
    fn drop(&mut self) {
        // Same whole-membership walk as the core skip list.
        // SAFETY (whole fn): &mut self — no concurrent access; every
        // node reachable from the level lists (plus full towers via
        // their roots) is live and Box-allocated, and `seen` dedupes so
        // each is freed exactly once. Sentinels are freed last.
        let mut seen = std::collections::HashSet::new();
        for level in 0..MAX_LEVEL {
            // SAFETY: see the block comment above.
            let mut cur = unsafe { (*self.heads[level]).right_clean() };
            while cur != self.tails[level] {
                // SAFETY: as above.
                let root = unsafe { (*cur).tower_root };
                if seen.insert(root) {
                    // SAFETY: as above.
                    let mut t = unsafe { (*root).top.load(Ordering::SeqCst) };
                    while !t.is_null() {
                        seen.insert(t);
                        // SAFETY: as above.
                        t = unsafe { (*t).down };
                    }
                }
                seen.insert(cur);
                // SAFETY: as above.
                cur = unsafe { (*cur).right_clean() };
            }
        }
        for node in seen {
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(node) });
        }
        for level in 0..MAX_LEVEL {
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(self.heads[level]) });
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(self.tails[level]) });
        }
    }
}

/// Per-thread handle to a [`RestartSkipList`]. Not `Send`.
pub struct RestartHandle<'l, K, V> {
    list: &'l RestartSkipList<K, V>,
    reclaim: LocalHandle,
}

impl<K, V> fmt::Debug for RestartHandle<'_, K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RestartHandle")
    }
}

impl<K, V> RestartHandle<'_, K, V>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
{
    /// Insert `key → value`; returns `false` on duplicate.
    pub fn insert(&self, key: K, value: V) -> bool {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: the guard pins this list's collector.
        let r = unsafe { self.list.insert_impl(key, value, &guard) };
        lf_metrics::op_end(op);
        r
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: as for `insert`.
        let r = unsafe { self.list.delete_impl(key, &guard) };
        lf_metrics::op_end(op);
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: as for `insert`.
        let r = unsafe { self.list.find(key, &guard).is_some() };
        lf_metrics::op_end(op);
        r
    }

    /// Look up `key`, cloning its value.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let guard = self.reclaim.pin();
        let op = lf_metrics::op_begin();
        // SAFETY: as for `insert`; the node stays valid while the
        // guard lives.
        let r = unsafe {
            self.list
                .find(key, &guard)
                .map(|n| (*n).element.clone().expect("root has element"))
        };
        lf_metrics::op_end(op);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_roundtrip() {
        let sl = RestartSkipList::new();
        let h = sl.handle();
        for k in 0..200u32 {
            assert!(h.insert(k, k * 3));
        }
        assert!(!h.insert(100, 0));
        assert_eq!(sl.len(), 200);
        for k in 0..200u32 {
            assert_eq!(h.get(&k), Some(k * 3));
        }
        for k in (0..200u32).step_by(2) {
            assert_eq!(h.remove(&k), Some(k * 3));
        }
        for k in 0..200u32 {
            assert_eq!(h.contains(&k), k % 2 == 1);
        }
    }

    #[test]
    fn remove_missing() {
        let sl: RestartSkipList<u32, u32> = RestartSkipList::new();
        assert_eq!(sl.handle().remove(&7), None);
    }

    #[test]
    fn concurrent_unique_winners() {
        let sl = Arc::new(RestartSkipList::new());
        let wins = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sl = sl.clone();
                let wins = wins.clone();
                s.spawn(move || {
                    let h = sl.handle();
                    for k in 0..100u32 {
                        if h.insert(k, ()) {
                            wins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 100);
        assert_eq!(sl.len(), 100);
    }

    #[test]
    fn concurrent_churn_sound() {
        let sl = Arc::new(RestartSkipList::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sl = sl.clone();
                s.spawn(move || {
                    let h = sl.handle();
                    for r in 0..250u64 {
                        let k = (r * (t + 3)) % 24;
                        if t % 2 == 0 {
                            let _ = h.insert(k, r);
                        } else {
                            let _ = h.remove(&k);
                        }
                    }
                });
            }
        });
        let h = sl.handle();
        for k in 0..24u64 {
            let _ = h.contains(&k);
        }
    }
}
