//! Hazard-based safe memory reclamation, in two flavors sharing one
//! slot registry ([`slots`], crate-private):
//!
//! * **Classic per-pointer hazards** ([`Domain`] / [`HazardHandle`]) —
//!   M. Michael, *Safe Memory Reclamation for Dynamic Lock-Free Objects
//!   Using Atomic Reads and Writes*, PODC 2002: the paper's reference
//!   \[9\], and the scheme Michael paired with his list-based sets
//!   \[8\]. Each thread publishes every pointer it is about to
//!   dereference in one of its [`HAZARDS_PER_THREAD`] slots and
//!   re-validates the source; retiring threads scan all published
//!   hazards and free exactly the unprotected nodes. Garbage is bounded
//!   by `O(threads × hazards)` even when a thread stalls forever — at
//!   the cost of a published store + validation on every pointer hop.
//!   The Michael-list baseline in `lf-baselines` uses this end-to-end.
//!
//! * **Hazard eras** ([`Hp`], module [`era`]) — one era announcement
//!   per *pin* instead of one published pointer per *hop*, behind the
//!   `lf_reclaim::Reclaim` trait so the FR'04 list and skip list can
//!   run over it. Suits whole-traversal guards where per-pointer
//!   publication would dominate; see [`era`]'s docs for why the era
//!   advances by consensus (and therefore, unlike the classic domain,
//!   does not bound garbage under a stalled *pinned* reader).
//!
//! # Examples
//!
//! ```
//! use lf_hazard::Domain;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let domain = Domain::new();
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(5u64)));
//!
//! let h = domain.register();
//! // Publish + validate before dereferencing:
//! let p = h.protect(0, &shared);
//! assert_eq!(unsafe { *p }, 5);
//!
//! // Unlink and retire; the scan cannot free it while slot 0 holds it.
//! let old = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
//! unsafe { h.retire(old) };
//! h.clear(0);
//! // Freed at a later scan (or when the domain drops).
//! ```

mod classic;
pub mod era;
mod slots;

pub use classic::{Domain, HazardHandle, HAZARDS_PER_THREAD};
pub use era::{Hp, HpDomain, HpGuard, HpHandle};
