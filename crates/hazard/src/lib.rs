//! Hazard-pointer safe memory reclamation (M. Michael, *Safe Memory
//! Reclamation for Dynamic Lock-Free Objects Using Atomic Reads and
//! Writes*, PODC 2002) — the paper's reference \[9\], and the scheme
//! Michael paired with his list-based sets \[8\].
//!
//! Each thread owns a fixed number of *hazard slots*. Before
//! dereferencing a shared pointer, the thread **publishes** it in a
//! slot and **re-validates** that the source still points there; a
//! validated pointer cannot be freed until the slot is cleared.
//! Retiring threads batch removed nodes and periodically *scan* all
//! published hazards, freeing exactly the retired nodes no one
//! protects.
//!
//! Compared to the epoch scheme in `lf-reclaim`, hazard pointers bound
//! unreclaimed garbage by `O(threads × hazards)` even when a thread
//! stalls forever — at the cost of a published-store + validation on
//! every pointer hop. The Michael-list baseline in `lf-baselines` uses
//! this crate end-to-end, so both reclamation styles from the paper's
//! related work are represented in the workspace.
//!
//! # Examples
//!
//! ```
//! use lf_hazard::Domain;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let domain = Domain::new();
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(5u64)));
//!
//! let h = domain.register();
//! // Publish + validate before dereferencing:
//! let p = h.protect(0, &shared);
//! assert_eq!(unsafe { *p }, 5);
//!
//! // Unlink and retire; the scan cannot free it while slot 0 holds it.
//! let old = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
//! unsafe { h.retire(old) };
//! h.clear(0);
//! // Freed at a later scan (or when the domain drops).
//! ```

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Hazard slots per registered thread (the list algorithms need three:
/// predecessor, current, and one spare for rotation).
pub const HAZARDS_PER_THREAD: usize = 4;

/// Retired-node count that triggers a scan.
const SCAN_THRESHOLD: usize = 64;

struct Slot {
    hazards: [AtomicUsize; HAZARDS_PER_THREAD],
    in_use: AtomicBool,
    next: AtomicPtr<Slot>,
}

struct Retired {
    addr: usize,
    drop_fn: unsafe fn(usize),
}

/// # Safety
///
/// `addr` must be a `Box<T>`-allocated pointer retired exactly once.
unsafe fn drop_box<T>(addr: usize) {
    // SAFETY: the caller's contract above.
    drop(unsafe { Box::from_raw(addr as *mut T) });
}

struct DomainInner {
    head: AtomicPtr<Slot>,
    /// Garbage abandoned by deregistered threads (rare path).
    orphans: Mutex<Vec<Retired>>,
}

impl DomainInner {
    /// All currently published hazard addresses.
    fn hazard_set(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        let mut cur = self.head.load(Ordering::SeqCst);
        while !cur.is_null() {
            // SAFETY: slots are never freed while the domain lives.
            let slot = unsafe { &*cur };
            // Scan every slot, even released ones: a slot being
            // recycled may already hold a new owner's hazards.
            for h in &slot.hazards {
                let a = h.load(Ordering::SeqCst);
                if a != 0 {
                    set.insert(a);
                }
            }
            cur = slot.next.load(Ordering::SeqCst);
        }
        set
    }

    /// Free every entry of `retired` not in the hazard set; keep the
    /// protected remainder.
    fn scan(&self, retired: &mut Vec<Retired>) {
        let hazards = self.hazard_set();
        let mut kept = Vec::new();
        for r in retired.drain(..) {
            if hazards.contains(&r.addr) {
                kept.push(r);
            } else {
                // SAFETY: the node was unlinked before `retire` and no
                // hazard protects it, so no thread can still reach it.
                unsafe { (r.drop_fn)(r.addr) };
            }
        }
        *retired = kept;

        // Opportunistically drain old orphans too.
        let mut orphans = self.orphans.lock().unwrap();
        let mut kept = Vec::new();
        for r in orphans.drain(..) {
            if hazards.contains(&r.addr) {
                kept.push(r);
            } else {
                // SAFETY: as above — unreachable and unprotected.
                unsafe { (r.drop_fn)(r.addr) };
            }
        }
        *orphans = kept;
    }
}

impl Drop for DomainInner {
    fn drop(&mut self) {
        // No handles remain: every retired node is free-able and every
        // slot can be deallocated.
        for r in self.orphans.get_mut().unwrap().drain(..) {
            // SAFETY: no handles remain (they hold `Arc`s to the
            // domain), so every retired node is unreachable.
            unsafe { (r.drop_fn)(r.addr) };
        }
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: unique access; each slot was leaked from a Box in
            // `register` and is freed exactly once here.
            let mut slot = unsafe { Box::from_raw(cur) };
            cur = *slot.next.get_mut();
        }
    }
}

/// A hazard-pointer reclamation domain (one per data structure).
pub struct Domain {
    inner: Arc<DomainInner>,
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("hazard::Domain")
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Domain {
    /// Create an empty domain.
    pub fn new() -> Self {
        Domain {
            inner: Arc::new(DomainInner {
                head: AtomicPtr::new(std::ptr::null_mut()),
                orphans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register the calling thread, recycling a released slot when one
    /// exists (lock-free).
    pub fn register(&self) -> HazardHandle {
        let mut cur = self.inner.head.load(Ordering::SeqCst);
        while !cur.is_null() {
            // SAFETY: slots are never freed while the domain lives.
            let slot = unsafe { &*cur };
            if !slot.in_use.load(Ordering::SeqCst)
                && slot
                    .in_use
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return HazardHandle::new(self.inner.clone(), cur);
            }
            cur = slot.next.load(Ordering::SeqCst);
        }
        let slot = Box::into_raw(Box::new(Slot {
            hazards: Default::default(),
            in_use: AtomicBool::new(true),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        let mut head = self.inner.head.load(Ordering::SeqCst);
        loop {
            // SAFETY: `slot` was just leaked from a live Box.
            unsafe { &*slot }.next.store(head, Ordering::SeqCst);
            match self
                .inner
                .head
                .compare_exchange(head, slot, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        HazardHandle::new(self.inner.clone(), slot)
    }
}

/// A thread's hazard slots plus its retired-node batch. Not `Send`.
pub struct HazardHandle {
    inner: Arc<DomainInner>,
    slot: *mut Slot,
    retired: RefCell<Vec<Retired>>,
    _not_send: PhantomData<*mut ()>,
}

impl fmt::Debug for HazardHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardHandle")
            .field("retired", &self.retired.borrow().len())
            .finish()
    }
}

impl HazardHandle {
    fn new(inner: Arc<DomainInner>, slot: *mut Slot) -> Self {
        HazardHandle {
            inner,
            slot,
            retired: RefCell::new(Vec::new()),
            _not_send: PhantomData,
        }
    }

    fn slot(&self) -> &Slot {
        // SAFETY: the slot outlives the handle (slots are freed only by
        // `DomainInner::drop`, and we hold an `Arc` to the domain).
        unsafe { &*self.slot }
    }

    /// Publish `src`'s current pointee in hazard slot `index` and
    /// validate it: loops until a published value survives a re-read of
    /// `src`, then returns it. The returned pointer stays
    /// dereferenceable until [`clear`](Self::clear) (or re-`protect`) of
    /// that slot — provided the structure only frees nodes through
    /// [`retire`](Self::retire) *after* unlinking them.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HAZARDS_PER_THREAD`.
    pub fn protect<T>(&self, index: usize, src: &AtomicPtr<T>) -> *mut T {
        loop {
            let p = src.load(Ordering::SeqCst);
            self.slot().hazards[index].store(p as usize, Ordering::SeqCst);
            if src.load(Ordering::SeqCst) == p {
                return p;
            }
        }
    }

    /// Publish an already-loaded pointer in slot `index` **without**
    /// validation. The caller must re-validate its source afterwards
    /// (the raw building block behind [`protect`](Self::protect)).
    ///
    /// # Panics
    ///
    /// Panics if `index >= HAZARDS_PER_THREAD`.
    pub fn publish<T>(&self, index: usize, ptr: *mut T) {
        self.slot().hazards[index].store(ptr as usize, Ordering::SeqCst);
    }

    /// Clear hazard slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HAZARDS_PER_THREAD`.
    pub fn clear(&self, index: usize) {
        self.slot().hazards[index].store(0, Ordering::SeqCst);
    }

    /// Retire a node for deferred destruction.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::into_raw`, be unreachable to *new*
    /// traversals (unlinked), and be retired exactly once.
    pub unsafe fn retire<T: Send + 'static>(&self, ptr: *mut T) {
        let mut retired = self.retired.borrow_mut();
        retired.push(Retired {
            addr: ptr as usize,
            drop_fn: drop_box::<T>,
        });
        if retired.len() >= SCAN_THRESHOLD {
            self.inner.scan(&mut retired);
        }
    }

    /// Force a scan now (frees every retired node nobody protects).
    pub fn scan(&self) {
        self.inner.scan(&mut self.retired.borrow_mut());
    }

    /// Retired nodes still awaiting reclamation on this handle.
    pub fn pending(&self) -> usize {
        self.retired.borrow().len()
    }
}

impl Drop for HazardHandle {
    fn drop(&mut self) {
        for h in &self.slot().hazards {
            h.store(0, Ordering::SeqCst);
        }
        // Try to free everything; orphan the rest.
        self.inner.scan(&mut self.retired.borrow_mut());
        let mut retired = self.retired.borrow_mut();
        if !retired.is_empty() {
            self.inner.orphans.lock().unwrap().append(&mut retired);
        }
        self.slot().in_use.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    struct Counted(Arc<Counter>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn protect_validates_against_source() {
        let domain = Domain::new();
        let h = domain.register();
        let a = Box::into_raw(Box::new(1u64));
        let src = AtomicPtr::new(a);
        let got = h.protect(0, &src);
        assert_eq!(got, a);
        h.clear(0);
        unsafe { drop(Box::from_raw(a)) };
    }

    #[test]
    fn protected_node_survives_scan() {
        let domain = Domain::new();
        let h = domain.register();
        let drops = Arc::new(Counter::new(0));
        let p = Box::into_raw(Box::new(Counted(drops.clone())));
        let src = AtomicPtr::new(p);
        let _ = h.protect(0, &src);

        // Another thread's handle retires it after unlinking.
        let h2 = domain.register();
        src.store(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { h2.retire(p) };
        h2.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under hazard");

        h.clear(0);
        h2.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scan_threshold_triggers_automatically() {
        let domain = Domain::new();
        let h = domain.register();
        let drops = Arc::new(Counter::new(0));
        for _ in 0..SCAN_THRESHOLD + 5 {
            let p = Box::into_raw(Box::new(Counted(drops.clone())));
            unsafe { h.retire(p) };
        }
        assert!(
            drops.load(Ordering::SeqCst) >= SCAN_THRESHOLD,
            "automatic scan did not run"
        );
    }

    #[test]
    fn domain_drop_frees_orphans() {
        let drops = Arc::new(Counter::new(0));
        {
            let domain = Domain::new();
            let h = domain.register();
            for _ in 0..5 {
                let p = Box::into_raw(Box::new(Counted(drops.clone())));
                unsafe { h.retire(p) };
            }
            drop(h); // orphans any leftovers
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn stalled_thread_bounds_garbage_but_does_not_block_frees() {
        let domain = Domain::new();
        let drops = Arc::new(Counter::new(0));

        // A stalled reader protects exactly one node.
        let stalled = domain.register();
        let protected = Box::into_raw(Box::new(Counted(drops.clone())));
        let src = AtomicPtr::new(protected);
        let _ = stalled.protect(0, &src);

        // A worker retires that node and many others; everything except
        // the protected one must be freed (contrast with epochs, where
        // a stalled pin blocks all reclamation).
        let worker = domain.register();
        src.store(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { worker.retire(protected) };
        for _ in 0..50 {
            let p = Box::into_raw(Box::new(Counted(drops.clone())));
            unsafe { worker.retire(p) };
        }
        worker.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 50, "unprotected nodes freed");
        assert_eq!(worker.pending(), 1, "only the hazard survives");

        stalled.clear(0);
        worker.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 51);
    }

    #[test]
    fn slots_recycle_across_threads() {
        let domain = Arc::new(Domain::new());
        for _ in 0..16 {
            let domain = domain.clone();
            std::thread::spawn(move || {
                let h = domain.register();
                h.publish(0, std::ptr::null_mut::<u64>());
                h.clear(0);
            })
            .join()
            .unwrap();
        }
        // All threads released their slot; the registry should not have
        // grown without bound (can't observe directly, but registering
        // again must still work).
        let h = domain.register();
        h.scan();
    }
}
