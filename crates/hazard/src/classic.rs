//! Classic per-pointer hazard domain (M. Michael, PODC 2002).
//!
//! See the crate docs for the protect/validate/retire protocol. This
//! module keeps the original `lf-hazard` public API — the Michael-list
//! baseline in `lf-baselines` consumes it unchanged — but the slot
//! registry now comes from [`crate::slots`], shared with the era-based
//! [`crate::Hp`] backend instead of duplicated per scheme.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::slots::{SlotList, SlotNode};

/// Hazard slots per registered thread (the list algorithms need three:
/// predecessor, current, and one spare for rotation).
pub const HAZARDS_PER_THREAD: usize = 4;

/// Retired-node count that triggers a scan.
pub(crate) const SCAN_THRESHOLD: usize = 64;

/// Per-thread payload: the published hazard addresses (0 = empty).
type HazardSlots = [AtomicUsize; HAZARDS_PER_THREAD];

pub(crate) struct Retired {
    addr: usize,
    drop_fn: unsafe fn(usize),
}

/// # Safety
///
/// `addr` must be a `Box<T>`-allocated pointer retired exactly once.
unsafe fn drop_box<T>(addr: usize) {
    // SAFETY: the caller's contract above.
    drop(unsafe { Box::from_raw(addr as *mut T) });
}

struct DomainInner {
    registry: SlotList<HazardSlots>,
    /// Garbage abandoned by deregistered threads (rare path).
    orphans: Mutex<Vec<Retired>>,
}

impl DomainInner {
    /// All currently published hazard addresses.
    fn hazard_set(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        // Scan every slot, even released ones: a slot being recycled
        // may already hold a new owner's hazards.
        self.registry.for_each(|hazards| {
            for h in hazards {
                let a = h.load(Ordering::SeqCst);
                if a != 0 {
                    set.insert(a);
                }
            }
        });
        set
    }

    /// Free every entry of `retired` not in the hazard set; keep the
    /// protected remainder.
    fn scan(&self, retired: &mut Vec<Retired>) {
        let hazards = self.hazard_set();
        let mut kept = Vec::new();
        for r in retired.drain(..) {
            if hazards.contains(&r.addr) {
                kept.push(r);
            } else {
                // SAFETY: the node was unlinked before `retire` and no
                // hazard protects it, so no thread can still reach it.
                unsafe { (r.drop_fn)(r.addr) };
            }
        }
        *retired = kept;

        // Opportunistically drain old orphans too.
        let mut orphans = self.orphans.lock().unwrap();
        let mut kept = Vec::new();
        for r in orphans.drain(..) {
            if hazards.contains(&r.addr) {
                kept.push(r);
            } else {
                // SAFETY: as above — unreachable and unprotected.
                unsafe { (r.drop_fn)(r.addr) };
            }
        }
        *orphans = kept;
    }
}

impl Drop for DomainInner {
    fn drop(&mut self) {
        // No handles remain: every retired node is free-able (the
        // registry itself is freed by `SlotList::drop`).
        for r in self.orphans.get_mut().unwrap().drain(..) {
            // SAFETY: no handles remain (they hold `Arc`s to the
            // domain), so every retired node is unreachable.
            unsafe { (r.drop_fn)(r.addr) };
        }
    }
}

/// A hazard-pointer reclamation domain (one per data structure).
pub struct Domain {
    inner: Arc<DomainInner>,
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("hazard::Domain")
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Domain {
    /// Create an empty domain.
    pub fn new() -> Self {
        Domain {
            inner: Arc::new(DomainInner {
                registry: SlotList::new(),
                orphans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register the calling thread, recycling a released slot when one
    /// exists (lock-free).
    pub fn register(&self) -> HazardHandle {
        let slot = self.inner.registry.register();
        HazardHandle::new(self.inner.clone(), slot)
    }
}

/// A thread's hazard slots plus its retired-node batch. Not `Send`.
pub struct HazardHandle {
    inner: Arc<DomainInner>,
    slot: *mut SlotNode<HazardSlots>,
    retired: RefCell<Vec<Retired>>,
    _not_send: PhantomData<*mut ()>,
}

impl fmt::Debug for HazardHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HazardHandle")
            .field("retired", &self.retired.borrow().len())
            .finish()
    }
}

impl HazardHandle {
    fn new(inner: Arc<DomainInner>, slot: *mut SlotNode<HazardSlots>) -> Self {
        HazardHandle {
            inner,
            slot,
            retired: RefCell::new(Vec::new()),
            _not_send: PhantomData,
        }
    }

    fn hazards(&self) -> &HazardSlots {
        // SAFETY: the slot outlives the handle (slots are freed only by
        // the registry's drop, and we hold an `Arc` to the domain).
        &unsafe { &*self.slot }.payload
    }

    /// Publish `src`'s current pointee in hazard slot `index` and
    /// validate it: loops until a published value survives a re-read of
    /// `src`, then returns it. The returned pointer stays
    /// dereferenceable until [`clear`](Self::clear) (or re-`protect`) of
    /// that slot — provided the structure only frees nodes through
    /// [`retire`](Self::retire) *after* unlinking them.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HAZARDS_PER_THREAD`.
    // escape: ESC.hp-protect: the published hazard slot (not a lexical
    // guard) protects the returned pointer until clear/re-protect
    pub fn protect<T>(&self, index: usize, src: &AtomicPtr<T>) -> *mut T {
        loop {
            let p = src.load(Ordering::SeqCst);
            self.hazards()[index].store(p as usize, Ordering::SeqCst);
            if src.load(Ordering::SeqCst) == p {
                return p;
            }
        }
    }

    /// Publish an already-loaded pointer in slot `index` **without**
    /// validation. The caller must re-validate its source afterwards
    /// (the raw building block behind [`protect`](Self::protect)).
    ///
    /// # Panics
    ///
    /// Panics if `index >= HAZARDS_PER_THREAD`.
    pub fn publish<T>(&self, index: usize, ptr: *mut T) {
        self.hazards()[index].store(ptr as usize, Ordering::SeqCst);
    }

    /// Clear hazard slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HAZARDS_PER_THREAD`.
    pub fn clear(&self, index: usize) {
        self.hazards()[index].store(0, Ordering::SeqCst);
    }

    /// Retire a node for deferred destruction.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::into_raw`, be unreachable to *new*
    /// traversals (unlinked), and be retired exactly once.
    pub unsafe fn retire<T: Send + 'static>(&self, ptr: *mut T) {
        let mut retired = self.retired.borrow_mut();
        retired.push(Retired {
            addr: ptr as usize,
            drop_fn: drop_box::<T>,
        });
        if retired.len() >= SCAN_THRESHOLD {
            self.inner.scan(&mut retired);
        }
    }

    /// Force a scan now (frees every retired node nobody protects).
    pub fn scan(&self) {
        self.inner.scan(&mut self.retired.borrow_mut());
    }

    /// Retired nodes still awaiting reclamation on this handle.
    pub fn pending(&self) -> usize {
        self.retired.borrow().len()
    }
}

impl Drop for HazardHandle {
    fn drop(&mut self) {
        for h in self.hazards() {
            h.store(0, Ordering::SeqCst);
        }
        // Try to free everything; orphan the rest.
        self.inner.scan(&mut self.retired.borrow_mut());
        let mut retired = self.retired.borrow_mut();
        if !retired.is_empty() {
            self.inner.orphans.lock().unwrap().append(&mut retired);
        }
        // Payload is now inert (all hazards zeroed above), so the slot
        // may be recycled.
        // SAFETY: our live registration on the domain's registry.
        unsafe { self.inner.registry.release(self.slot) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    struct Counted(Arc<Counter>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn protect_validates_against_source() {
        let domain = Domain::new();
        let h = domain.register();
        let a = Box::into_raw(Box::new(1u64));
        let src = AtomicPtr::new(a);
        let got = h.protect(0, &src);
        assert_eq!(got, a);
        h.clear(0);
        unsafe { drop(Box::from_raw(a)) };
    }

    #[test]
    fn protected_node_survives_scan() {
        let domain = Domain::new();
        let h = domain.register();
        let drops = Arc::new(Counter::new(0));
        let p = Box::into_raw(Box::new(Counted(drops.clone())));
        let src = AtomicPtr::new(p);
        let _ = h.protect(0, &src);

        // Another thread's handle retires it after unlinking.
        let h2 = domain.register();
        src.store(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { h2.retire(p) };
        h2.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under hazard");

        h.clear(0);
        h2.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scan_threshold_triggers_automatically() {
        let domain = Domain::new();
        let h = domain.register();
        let drops = Arc::new(Counter::new(0));
        for _ in 0..SCAN_THRESHOLD + 5 {
            let p = Box::into_raw(Box::new(Counted(drops.clone())));
            unsafe { h.retire(p) };
        }
        assert!(
            drops.load(Ordering::SeqCst) >= SCAN_THRESHOLD,
            "automatic scan did not run"
        );
    }

    #[test]
    fn domain_drop_frees_orphans() {
        let drops = Arc::new(Counter::new(0));
        {
            let domain = Domain::new();
            let h = domain.register();
            for _ in 0..5 {
                let p = Box::into_raw(Box::new(Counted(drops.clone())));
                unsafe { h.retire(p) };
            }
            drop(h); // orphans any leftovers
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn stalled_thread_bounds_garbage_but_does_not_block_frees() {
        let domain = Domain::new();
        let drops = Arc::new(Counter::new(0));

        // A stalled reader protects exactly one node.
        let stalled = domain.register();
        let protected = Box::into_raw(Box::new(Counted(drops.clone())));
        let src = AtomicPtr::new(protected);
        let _ = stalled.protect(0, &src);

        // A worker retires that node and many others; everything except
        // the protected one must be freed (contrast with epochs, where
        // a stalled pin blocks all reclamation).
        let worker = domain.register();
        src.store(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { worker.retire(protected) };
        for _ in 0..50 {
            let p = Box::into_raw(Box::new(Counted(drops.clone())));
            unsafe { worker.retire(p) };
        }
        worker.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 50, "unprotected nodes freed");
        assert_eq!(worker.pending(), 1, "only the hazard survives");

        stalled.clear(0);
        worker.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 51);
    }

    #[test]
    fn slots_recycle_across_threads() {
        let domain = Arc::new(Domain::new());
        for _ in 0..16 {
            let domain = domain.clone();
            std::thread::spawn(move || {
                let h = domain.register();
                h.publish(0, std::ptr::null_mut::<u64>());
                h.clear(0);
            })
            .join()
            .unwrap();
        }
        // All threads released their slot; the registry should not have
        // grown without bound (can't observe directly, but registering
        // again must still work).
        let h = domain.register();
        h.scan();
    }
}
