//! Shared per-thread slot registry.
//!
//! Both reclamation schemes in this crate — the classic per-pointer
//! hazard domain ([`crate::Domain`]) and the era-based [`crate::Hp`]
//! backend — need the same registry shape: a lock-free singly linked
//! list of per-thread slots, where registering recycles a released slot
//! or pushes a fresh one, and scans walk every slot ever allocated.
//! Before this module existed the Michael baseline's hazard domain
//! carried its own private copy of that machinery; it now lives here
//! once, generic over the per-slot payload.
//!
//! Invariants:
//!
//! * slot nodes are never freed while the registry lives — scans may
//!   dereference any pointer they traverse;
//! * a released slot's payload must be *inert* (no pointer protected,
//!   no era announced) before `in_use` is cleared, because scans visit
//!   released slots too (they may already belong to a new owner).

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// One registered thread's slot: a scheme-specific payload plus the
/// registry linkage.
pub(crate) struct SlotNode<P> {
    pub(crate) payload: P,
    in_use: AtomicBool,
    next: AtomicPtr<SlotNode<P>>,
}

/// Lock-free grow-only registry of [`SlotNode`]s with slot recycling.
pub(crate) struct SlotList<P> {
    head: AtomicPtr<SlotNode<P>>,
}

impl<P: Default> SlotList<P> {
    pub(crate) fn new() -> Self {
        SlotList {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Claim a slot for the calling thread: recycle a released one when
    /// possible, otherwise push a fresh node (lock-free).
    ///
    /// The returned pointer stays valid until the registry drops; the
    /// caller releases it with [`SlotList::release`].
    // escape: ESC.hp-slots: slot nodes are never freed while the registry
    // lives (module invariant), so the returned pointer cannot dangle
    pub(crate) fn register(&self) -> *mut SlotNode<P> {
        let mut cur = self.head.load(Ordering::SeqCst);
        while !cur.is_null() {
            // SAFETY: slot nodes are never freed while the registry
            // lives (module invariant).
            // validate: VAL.hp-slots: registry nodes are append-only and
            // never freed while the registry lives — no re-check needed
            let slot = unsafe { &*cur };
            if !slot.in_use.load(Ordering::SeqCst)
                && slot
                    .in_use
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return cur;
            }
            cur = slot.next.load(Ordering::SeqCst);
        }
        let slot = Box::into_raw(Box::new(SlotNode {
            payload: P::default(),
            in_use: AtomicBool::new(true),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        let mut head = self.head.load(Ordering::SeqCst);
        loop {
            // SAFETY: `slot` was just leaked from a live Box.
            unsafe { &*slot }.next.store(head, Ordering::SeqCst);
            match self
                .head
                .compare_exchange(head, slot, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        slot
    }

    /// Return a slot to the free pool. The caller must have made the
    /// payload inert first (module invariant).
    ///
    /// # Safety
    ///
    /// `slot` must have been returned by [`SlotList::register`] on this
    /// registry and not yet released.
    pub(crate) unsafe fn release(&self, slot: *mut SlotNode<P>) {
        // SAFETY: the caller's contract — a live registration on this
        // registry, whose nodes outlive it.
        unsafe { &*slot }.in_use.store(false, Ordering::SeqCst);
    }

    /// Visit every slot's payload, released ones included (a recycled
    /// slot may already hold a new owner's state, so schemes must treat
    /// whatever they read as live).
    pub(crate) fn for_each(&self, mut f: impl FnMut(&P)) {
        let mut cur = self.head.load(Ordering::SeqCst);
        while !cur.is_null() {
            // SAFETY: slot nodes are never freed while the registry
            // lives (module invariant).
            // validate: VAL.hp-slots: registry nodes are append-only and
            // never freed while the registry lives — no re-check needed
            let slot = unsafe { &*cur };
            f(&slot.payload);
            cur = slot.next.load(Ordering::SeqCst);
        }
    }
}

impl<P> Drop for SlotList<P> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: unique access; each node was leaked from a Box in
            // `register` and is freed exactly once here.
            let mut slot = unsafe { Box::from_raw(cur) };
            cur = *slot.next.get_mut();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn register_recycles_released_slots() {
        let list: SlotList<AtomicUsize> = SlotList::new();
        let a = list.register();
        // SAFETY: `a` is a live registration.
        unsafe { list.release(a) };
        let b = list.register();
        assert_eq!(a, b, "released slot was not recycled");
        let c = list.register();
        assert_ne!(b, c, "in-use slot handed out twice");
        let mut count = 0;
        list.for_each(|_| count += 1);
        assert_eq!(count, 2);
    }
}
