//! Era-based reclamation behind the [`Reclaim`] trait.
//!
//! This is the hazard-*era* flavor of the crate (Ramalhete & Correia's
//! direction): instead of publishing each traversed pointer, a thread
//! publishes **one era** per pin, and retirement records carry the era
//! at which the object was retired. A scan frees a retired object once
//! every announced era is at least `retire + GRACE` — one registry walk
//! per batch rather than one published store per pointer hop, which is
//! what makes the scheme usable under the FR'04 lists' whole-traversal
//! guards.
//!
//! ## Why announcements gate era advance (and the honest caveat)
//!
//! Interval-based variants free an object when no reader's span covers
//! its `[birth, retire]` interval, which bounds garbage under stalled
//! readers. That rule is **unsound** for FR'04-style traversals: a
//! marked node's frozen successor may point at a node retired long
//! before a reader pinned, yet still be reached *through* the marked
//! node, so an object's birth/retire interval does not bound when it is
//! reachable. (Concretely: X is marked with frozen `succ → Y`; Y is
//! unlinked and retired at era 10; X stays in the list until era 20; a
//! reader pinning at era 20 walks X's frozen successor straight into
//! Y.) We therefore keep the epoch-style consensus rule — the era
//! cannot advance past an active announcement — and use the paper-\[9\]
//! style *scan* only to decide which retired batch entries are old
//! enough (`retire + GRACE ≤` every announced era). Consequence: like
//! EBR and unlike the classic per-pointer domain in [`crate::Domain`],
//! a stalled pinned reader stalls reclamation; the per-object `birth`
//! stamps threaded through [`Reclaim::defer`] are recorded for
//! diagnostics, not used for freeing. The classic domain remains the
//! stall-bounded option (and what the Michael baseline uses).
//!
//! Announcements are **per pin, never amortized** —
//! [`Reclaim::amortize_pins`] is a no-op here — so the backend's cost
//! model is honest: every operation pays the announce store, and in
//! exchange the retire path never walks per-pointer hazard sets.
//!
//! Orderings are SeqCst wholesale: `lf-hazard` is a `support`-class
//! crate in lint-policy.toml and keeps the simplest correct model.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lf_metrics::UnreclaimedGauge;
use lf_reclaim::{Publish, Reclaim};
use lf_tagged::CachePadded;

use crate::slots::{SlotList, SlotNode};

/// Era generations a retired object waits before it can be freed (same
/// two-generation argument as `lf-reclaim`'s collector).
const GRACE: u64 = 2;

/// Retired-object count that triggers an advance attempt + scan.
const SCAN_THRESHOLD: usize = 64;

/// Per-thread announcement: `(era << 1) | active`.
#[derive(Default)]
struct EraSlot {
    state: AtomicU64,
}

struct RetiredRec {
    retire_era: u64,
    free_fn: Box<dyn FnOnce() + Send>,
}

struct HpDomainInner {
    era: CachePadded<AtomicU64>,
    registry: SlotList<EraSlot>,
    /// Garbage abandoned by deregistered threads (rare path).
    orphans: Mutex<Vec<RetiredRec>>,
}

impl HpDomainInner {
    /// Advance the era by one if every active announcement has caught
    /// up with it (the consensus rule from the module docs).
    fn try_advance(&self) {
        let era = self.era.load(Ordering::SeqCst);
        let mut all_caught_up = true;
        self.registry.for_each(|slot| {
            let state = slot.state.load(Ordering::SeqCst);
            if state & 1 == 1 && state >> 1 != era {
                all_caught_up = false;
            }
        });
        if all_caught_up {
            // Lost races are fine: someone else advanced.
            let _ = self
                .era
                .compare_exchange(era, era + 1, Ordering::SeqCst, Ordering::SeqCst);
        }
    }

    /// The scan horizon: the smallest active announced era, or the
    /// current era when nobody is pinned. Entries with
    /// `retire_era + GRACE <= horizon` are free-able.
    fn horizon(&self) -> u64 {
        let mut min = self.era.load(Ordering::SeqCst);
        self.registry.for_each(|slot| {
            let state = slot.state.load(Ordering::SeqCst);
            if state & 1 == 1 {
                min = min.min(state >> 1);
            }
        });
        min
    }

    /// Free every old-enough entry of `retired` (and of the orphan
    /// pile); keep the remainder. Returns the number freed.
    fn scan(&self, retired: &mut Vec<RetiredRec>) -> u64 {
        let horizon = self.horizon();
        let mut freed = 0u64;
        let mut run = |recs: &mut Vec<RetiredRec>| {
            let mut kept = Vec::new();
            for r in recs.drain(..) {
                if r.retire_era + GRACE <= horizon {
                    (r.free_fn)();
                    freed += 1;
                } else {
                    kept.push(r);
                }
            }
            *recs = kept;
        };
        run(retired);
        run(&mut self.orphans.lock().unwrap());
        freed
    }
}

impl Drop for HpDomainInner {
    fn drop(&mut self) {
        // No handles remain (they hold `Arc`s), so every orphaned
        // retirement is past any reader.
        for r in self.orphans.get_mut().unwrap().drain(..) {
            (r.free_fn)();
        }
    }
}

/// Era-based reclamation backend ([`Reclaim`] implementor).
pub struct Hp;

/// An era-reclamation domain: the shared era, the announcement
/// registry, and the retired/freed gauge.
#[derive(Clone)]
pub struct HpDomain {
    inner: Arc<HpDomainInner>,
    gauge: Arc<UnreclaimedGauge>,
}

impl fmt::Debug for HpDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HpDomain")
            .field("era", &self.inner.era.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// One thread's registration in an [`HpDomain`]. Not `Send`.
pub struct HpHandle {
    domain: HpDomain,
    slot: *mut SlotNode<EraSlot>,
    guard_depth: Cell<u32>,
    retired: RefCell<Vec<RetiredRec>>,
    _not_send: PhantomData<*mut ()>,
}

impl fmt::Debug for HpHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HpHandle")
            .field("retired", &self.retired.borrow().len())
            .finish()
    }
}

impl HpHandle {
    fn state(&self) -> &AtomicU64 {
        // SAFETY: the slot outlives the handle (freed only when the
        // registry inside the domain drops, and we hold an `Arc`).
        &unsafe { &*self.slot }.payload.state
    }

    fn pin_slow(&self) {
        // Announce the current era, then re-validate it: if the era
        // moved between the read and the announce becoming visible, a
        // concurrent scanner may have computed a horizon that misses
        // us, so re-announce at the newer era before trusting the pin.
        loop {
            let era = self.domain.inner.era.load(Ordering::SeqCst);
            self.state().store((era << 1) | 1, Ordering::SeqCst);
            if self.domain.inner.era.load(Ordering::SeqCst) == era {
                return;
            }
        }
    }
}

impl Drop for HpHandle {
    fn drop(&mut self) {
        debug_assert_eq!(self.guard_depth.get(), 0, "handle dropped while pinned");
        self.state().store(0, Ordering::SeqCst);
        self.domain.inner.try_advance();
        let freed = self.domain.inner.scan(&mut self.retired.borrow_mut());
        self.domain.gauge.record_free(freed);
        let mut retired = self.retired.borrow_mut();
        if !retired.is_empty() {
            self.domain
                .inner
                .orphans
                .lock()
                .unwrap()
                .append(&mut retired);
        }
        // Payload inert (announcement cleared above): recyclable.
        // SAFETY: our live registration on the domain's registry.
        unsafe { self.domain.inner.registry.release(self.slot) };
    }
}

/// RAII pin over an [`HpDomain`]. Guards nest; only the outermost
/// announce/clear pair touches the slot.
pub struct HpGuard<'h> {
    handle: &'h HpHandle,
}

impl Drop for HpGuard<'_> {
    fn drop(&mut self) {
        let depth = self.handle.guard_depth.get() - 1;
        self.handle.guard_depth.set(depth);
        if depth == 0 {
            self.handle.state().store(0, Ordering::SeqCst);
        }
    }
}

impl Reclaim for Hp {
    type Domain = HpDomain;
    type Handle = HpHandle;
    type Guard<'h> = HpGuard<'h>;
    type Slot<T> = ();

    const PIN_FREE_READS: bool = false;
    const NAME: &'static str = "hp";

    fn new_domain() -> HpDomain {
        HpDomain {
            inner: Arc::new(HpDomainInner {
                era: CachePadded::new(AtomicU64::new(0)),
                registry: SlotList::new(),
                orphans: Mutex::new(Vec::new()),
            }),
            gauge: Arc::new(UnreclaimedGauge::new()),
        }
    }

    fn domain_eq(a: &HpDomain, b: &HpDomain) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }

    fn register(domain: &HpDomain) -> HpHandle {
        HpHandle {
            domain: domain.clone(),
            slot: domain.inner.registry.register(),
            guard_depth: Cell::new(0),
            retired: RefCell::new(Vec::new()),
            _not_send: PhantomData,
        }
    }

    fn pin(handle: &HpHandle) -> HpGuard<'_> {
        let depth = handle.guard_depth.get();
        if depth == 0 {
            handle.pin_slow();
        }
        handle.guard_depth.set(depth + 1);
        HpGuard { handle }
    }

    // SAFETY: forwarded caller contract — the object is unreachable to
    // new operations and retired exactly once; the era scan below only
    // delays `f`, never duplicates it.
    unsafe fn defer<F: FnOnce() + Send + 'static>(guard: &HpGuard<'_>, _birth: u64, f: F) {
        let handle = guard.handle;
        handle.domain.gauge.record_retire(1);
        let mut retired = handle.retired.borrow_mut();
        retired.push(RetiredRec {
            retire_era: handle.domain.inner.era.load(Ordering::SeqCst),
            free_fn: Box::new(f),
        });
        if retired.len() >= SCAN_THRESHOLD {
            handle.domain.inner.try_advance();
            let freed = handle.domain.inner.scan(&mut retired);
            handle.domain.gauge.record_free(freed);
        }
    }

    fn birth_epoch(guard: &HpGuard<'_>) -> u64 {
        // Diagnostics only — never used for freeing (module docs).
        guard.handle.domain.inner.era.load(Ordering::SeqCst)
    }

    fn read_epoch(domain: &HpDomain) -> u64 {
        domain.inner.era.load(Ordering::SeqCst)
    }

    fn gauge(domain: &HpDomain) -> &UnreclaimedGauge {
        &domain.gauge
    }

    fn amortize_pins(_handle: &HpHandle, _every: u32) {
        // Announcement is mandatory for safety here: an unannounced
        // traversal would let the horizon pass over its loaded
        // pointers. Deliberate no-op.
    }

    fn quiesce(_handle: &HpHandle) {
        // Pins never outlive guards in this backend (no amortization),
        // so there is nothing to lay down.
    }

    fn flush(handle: &HpHandle) {
        handle.domain.inner.try_advance();
        let freed = handle.domain.inner.scan(&mut handle.retired.borrow_mut());
        handle.domain.gauge.record_free(freed);
    }

    fn queued(handle: &HpHandle) -> usize {
        handle.retired.borrow().len()
    }
}

/// Era readers are pinned and use the nodes' plain fields, so the
/// shadow slot is `()` and publication is a no-op.
impl<T> Publish<T> for Hp {
    // SAFETY: no-op — nothing is published; era readers are pinned and
    // use the nodes' plain fields.
    unsafe fn publish(_slot: &(), _val: &T) {}

    // SAFETY: never called — `PIN_FREE_READS` is false for this
    // backend, so no read path snoops; the uninit value backs the
    // debug assertion only.
    unsafe fn snoop(_slot: &()) -> std::mem::MaybeUninit<T> {
        debug_assert!(false, "snoop on a backend without pin-free reads");
        std::mem::MaybeUninit::uninit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn defer_runs_after_unpin_and_flushes() {
        let domain = Hp::new_domain();
        let handle = Hp::register(&domain);
        let freed = Arc::new(AtomicUsize::new(0));
        {
            let guard = Hp::pin(&handle);
            let f = Arc::clone(&freed);
            // SAFETY: counter bump, retired once.
            unsafe {
                Hp::defer(&guard, 0, move || {
                    f.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Each flush can advance the era by at most one; GRACE = 2.
        for _ in 0..3 {
            Hp::flush(&handle);
        }
        assert_eq!(freed.load(Ordering::SeqCst), 1);
        let s = Hp::gauge(&domain).snapshot();
        assert_eq!((s.retired, s.freed, s.unreclaimed), (1, 1, 0));
    }

    #[test]
    fn active_pin_blocks_era_and_frees() {
        let domain = Hp::new_domain();
        let writer = Hp::register(&domain);
        let reader = Hp::register(&domain);

        let _read_guard = Hp::pin(&reader);
        let freed = Arc::new(AtomicUsize::new(0));
        {
            let guard = Hp::pin(&writer);
            let f = Arc::clone(&freed);
            // SAFETY: counter bump, retired once.
            unsafe {
                Hp::defer(&guard, 0, move || {
                    f.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        for _ in 0..5 {
            Hp::flush(&writer);
        }
        assert_eq!(freed.load(Ordering::SeqCst), 0, "freed under an active pin");

        drop(_read_guard);
        for _ in 0..3 {
            Hp::flush(&writer);
        }
        assert_eq!(freed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_guards_share_one_announcement() {
        let domain = Hp::new_domain();
        let handle = Hp::register(&domain);
        let g1 = Hp::pin(&handle);
        let announced = handle.state().load(Ordering::SeqCst);
        assert_eq!(announced & 1, 1);
        let g2 = Hp::pin(&handle);
        assert_eq!(handle.state().load(Ordering::SeqCst), announced);
        drop(g2);
        assert_eq!(
            handle.state().load(Ordering::SeqCst),
            announced,
            "inner drop must not clear the announcement"
        );
        drop(g1);
        assert_eq!(handle.state().load(Ordering::SeqCst), 0);
    }

    #[test]
    fn scan_threshold_reclaims_in_bulk() {
        let domain = Hp::new_domain();
        let handle = Hp::register(&domain);
        let freed = Arc::new(AtomicUsize::new(0));
        for _ in 0..(SCAN_THRESHOLD * 4) {
            let guard = Hp::pin(&handle);
            let f = Arc::clone(&freed);
            // SAFETY: counter bump, retired once.
            unsafe {
                Hp::defer(&guard, 0, move || {
                    f.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert!(
            freed.load(Ordering::SeqCst) > 0,
            "threshold scans never freed anything"
        );
        assert!(Hp::gauge(&domain).peak_unreclaimed() >= SCAN_THRESHOLD as u64);
    }
}
