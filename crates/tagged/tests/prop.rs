//! Property tests for tagged-pointer packing.

use proptest::prelude::*;

use lf_tagged::{AtomicTaggedPtr, TagBits, TaggedPtr, FLAG_BIT, MARK_BIT, TAG_MASK};

fn arb_tag() -> impl Strategy<Value = TagBits> {
    prop_oneof![
        Just(TagBits::Clean),
        Just(TagBits::Marked),
        Just(TagBits::Flagged),
    ]
}

proptest! {
    /// Packing a pointer with any legal tag and unpacking returns both
    /// unchanged, for arbitrary (aligned) addresses.
    #[test]
    fn pack_unpack_roundtrip(addr in 0usize..1 << 40, tag in arb_tag()) {
        let ptr = (addr & !TAG_MASK) as *mut u64;
        let t = TaggedPtr::new(ptr, tag);
        prop_assert_eq!(t.ptr(), ptr);
        prop_assert_eq!(t.tag(), tag);
        prop_assert_eq!(t.is_marked(), tag == TagBits::Marked);
        prop_assert_eq!(t.is_flagged(), tag == TagBits::Flagged);
    }

    /// `into_usize`/`from_usize` preserve every field.
    #[test]
    fn word_roundtrip(addr in 0usize..1 << 40, tag in arb_tag()) {
        let ptr = (addr & !TAG_MASK) as *mut u64;
        let t = TaggedPtr::new(ptr, tag);
        let back = TaggedPtr::<u64>::from_usize(t.into_usize());
        prop_assert_eq!(t, back);
    }

    /// Tag transitions never disturb the pointer, and the final state
    /// reflects only the last transition.
    #[test]
    fn transition_sequences(
        addr in 0usize..1 << 40,
        ops in proptest::collection::vec(0u8..3, 1..20),
    ) {
        let ptr = (addr & !TAG_MASK) as *mut u64;
        let mut t = TaggedPtr::unmarked(ptr);
        #[allow(unused_assignments)]
        let mut expected = TagBits::Clean;
        for op in ops {
            (t, expected) = match op {
                0 => (t.with_clean(), TagBits::Clean),
                1 => (t.with_mark(), TagBits::Marked),
                _ => (t.with_flag(), TagBits::Flagged),
            };
            prop_assert_eq!(t.ptr(), ptr);
            prop_assert_eq!(t.tag(), expected);
            // INV 5: never both.
            prop_assert!(!(t.is_marked() && t.is_flagged()));
        }
    }

    /// CAS succeeds exactly when the full word (pointer + tags) matches.
    #[test]
    fn cas_matches_whole_word(
        a in 0usize..1 << 40,
        b in 0usize..1 << 40,
        tag_now in arb_tag(),
        tag_expect in arb_tag(),
    ) {
        use std::sync::atomic::Ordering;
        let pa = (a & !TAG_MASK) as *mut u64;
        let pb = (b & !TAG_MASK) as *mut u64;
        let now = TaggedPtr::new(pa, tag_now);
        let expect = TaggedPtr::new(pa, tag_expect);
        let field = AtomicTaggedPtr::new(now);
        let res = field.compare_exchange(
            expect,
            TaggedPtr::unmarked(pb),
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        if tag_now == tag_expect {
            prop_assert!(res.is_ok());
            prop_assert_eq!(field.load(Ordering::SeqCst).ptr(), pb);
        } else {
            prop_assert_eq!(res, Err(now));
            prop_assert_eq!(field.load(Ordering::SeqCst), now);
        }
    }
}

#[test]
fn bit_constants_are_disjoint_low_bits() {
    assert_eq!(MARK_BIT & FLAG_BIT, 0);
    assert_eq!(MARK_BIT | FLAG_BIT, TAG_MASK);
    #[allow(clippy::assertions_on_constants)]
    {
        assert!(TAG_MASK < 8, "tags must fit in alignment slack");
    }
}
