//! Cache-line padding for hot shared state.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 64 bytes — one cache line on every x86-64
/// and most AArch64 parts this workspace targets.
///
/// Frequently-written shared words (a list's length counter, the
/// collector's global epoch, each participant's pin slot) otherwise land
/// on the same line as their neighbours and every CAS by one thread
/// invalidates the line under every other thread ("false sharing"). The
/// alignment guarantees each wrapped value owns its line; the type's size
/// is rounded up to a multiple of 64 by the same attribute, so arrays of
/// `CachePadded<T>` never share lines either.
///
/// A deliberately minimal stand-in for `crossbeam_utils::CachePadded`
/// (this workspace is dependency-free below the bench crate).
///
/// # Examples
///
/// ```
/// use lf_tagged::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// let len = CachePadded::new(AtomicUsize::new(0));
/// assert_eq!(std::mem::align_of_val(&len), 64);
/// ```
#[derive(Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size_are_full_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 65]>>(), 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn array_elements_do_not_share_lines() {
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 64);
    }
}
