//! Truncated exponential backoff for CAS retry loops.

use std::hint;

/// Per-attempt truncated exponential backoff.
///
/// A failed flag/mark/unlink CAS means another thread is mutating the
/// same neighbourhood; immediately retrying mostly generates coherence
/// traffic that slows the *winner* down. Spinning `2^n` pause
/// instructions (capped) before the n-th retry de-synchronizes the
/// contenders at negligible cost to the uncontended path — the first
/// `spin()` is a single `pause`.
///
/// The cap keeps worst-case added latency bounded (`2^6` pauses, roughly
/// a few hundred nanoseconds) so backoff can never mask a lost wakeup or
/// turn a lock-free loop into an unbounded sleep. Modeled on
/// `crossbeam_utils::Backoff`, minus the yield/park escalation: these
/// retry loops are short and lock-free, so parking would only add
/// scheduler latency.
///
/// # Examples
///
/// ```
/// use lf_tagged::Backoff;
///
/// let backoff = Backoff::new();
/// for _ in 0..3 {
///     // ... failed CAS here ...
///     backoff.spin();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    /// Exponent cap: at most `2^SPIN_LIMIT` pause instructions per spin.
    const SPIN_LIMIT: u32 = 6;

    /// A fresh backoff at step 0.
    #[inline]
    pub const fn new() -> Self {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Spin for the current step's duration and escalate the step.
    #[inline]
    pub fn spin(&self) {
        let step = self.step.get();
        for _ in 0..1u32 << step.min(Self::SPIN_LIMIT) {
            hint::spin_loop();
        }
        if step <= Self::SPIN_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Reset to step 0 (call after a successful CAS when reusing the
    /// backoff across loop iterations).
    #[inline]
    pub fn reset(&self) {
        self.step.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_escalates_then_saturates() {
        let b = Backoff::new();
        for _ in 0..32 {
            b.spin();
        }
        assert_eq!(b.step.get(), Backoff::SPIN_LIMIT + 1);
        b.reset();
        assert_eq!(b.step.get(), 0);
    }
}
