//! The tagged pointer representation and its atomic container.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bit 0 of a tagged word: the node owning this successor field is
/// logically deleted ("marked").
pub const MARK_BIT: usize = 0b01;

/// Bit 1 of a tagged word: a deletion of the successor node is in
/// progress ("flagged"); the field is frozen until the flag is removed.
pub const FLAG_BIT: usize = 0b10;

/// Mask covering both tag bits.
pub const TAG_MASK: usize = MARK_BIT | FLAG_BIT;

/// Bit offset of the 16-bit version stamp packed into the pointer's
/// unused high bits (bits 48..64 — zero for any canonical user-space
/// address on the supported 64-bit targets).
pub const STAMP_SHIFT: u32 = 48;

/// Mask covering the 16-bit version stamp.
///
/// The stamp carries the low 16 bits of the pointee's *birth epoch*
/// under version-based reclamation, so a pin-free reader can check that
/// the slot it dereferenced still holds the version the edge referred
/// to. Backends that never recycle memory under live readers (EBR,
/// hazard pointers) leave the stamp at 0 and the whole mechanism
/// vanishes: every word round-trips exactly as before.
pub const STAMP_MASK: usize = 0xffff << STAMP_SHIFT;

/// Mask covering everything that is *not* the raw pointer.
const META_MASK: usize = TAG_MASK | STAMP_MASK;

/// The decoded control bits of a successor field.
///
/// Invariant 5 of the paper — a field is never simultaneously marked and
/// flagged — is *not* enforced by this type (it is a property of the
/// algorithms, checked by their tests), but the constructors used by the
/// core crates only ever produce the three legal states.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum TagBits {
    /// Neither marked nor flagged.
    #[default]
    Clean,
    /// Marked: owner is logically deleted.
    Marked,
    /// Flagged: successor's deletion is underway.
    Flagged,
}

impl TagBits {
    /// Decode the two low bits of a word.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if both bits are set (illegal per INV 5).
    #[inline]
    pub fn from_bits(bits: usize) -> TagBits {
        debug_assert_ne!(bits & TAG_MASK, TAG_MASK, "field both marked and flagged");
        match bits & TAG_MASK {
            0 => TagBits::Clean,
            MARK_BIT => TagBits::Marked,
            _ => TagBits::Flagged,
        }
    }

    /// Encode back into the two low bits.
    #[inline]
    pub fn bits(self) -> usize {
        match self {
            TagBits::Clean => 0,
            TagBits::Marked => MARK_BIT,
            TagBits::Flagged => FLAG_BIT,
        }
    }
}

/// A snapshot of a successor field: a raw pointer plus mark/flag bits,
/// packed into one machine word.
///
/// `TaggedPtr` is `Copy` and does no memory management; it is only a
/// *view*. Dereferencing the contained pointer is the caller's unsafe
/// responsibility and is always mediated by an epoch guard in the crates
/// built on top of this one.
pub struct TaggedPtr<T> {
    raw: usize,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for TaggedPtr<T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TaggedPtr<T> {}

impl<T> PartialEq for TaggedPtr<T> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for TaggedPtr<T> {}

impl<T> std::hash::Hash for TaggedPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T> fmt::Debug for TaggedPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaggedPtr")
            .field("ptr", &(self.ptr()))
            .field("mark", &self.is_marked())
            .field("flag", &self.is_flagged())
            .field("stamp", &self.stamp())
            .finish()
    }
}

impl<T> Default for TaggedPtr<T> {
    /// The null pointer with clean tags.
    #[inline]
    fn default() -> Self {
        Self::null()
    }
}

impl<T> TaggedPtr<T> {
    /// Create a tagged pointer from parts.
    ///
    /// # Panics
    ///
    /// Debug-panics if `ptr` is not at least 4-byte aligned (the low two
    /// bits must be free) or if both `mark` and `flag` are requested.
    #[inline]
    pub fn new(ptr: *mut T, tag: TagBits) -> Self {
        let addr = ptr as usize;
        debug_assert_eq!(
            addr & META_MASK,
            0,
            "pointer not aligned for tagging or not canonical"
        );
        TaggedPtr {
            raw: addr | tag.bits(),
            _marker: PhantomData,
        }
    }

    /// A clean (unmarked, unflagged) pointer.
    #[inline]
    pub fn unmarked(ptr: *mut T) -> Self {
        Self::new(ptr, TagBits::Clean)
    }

    /// The null pointer with clean tags.
    #[inline]
    pub fn null() -> Self {
        TaggedPtr {
            raw: 0,
            _marker: PhantomData,
        }
    }

    /// Rebuild a snapshot from a raw word previously obtained with
    /// [`TaggedPtr::into_usize`].
    #[inline]
    pub fn from_usize(raw: usize) -> Self {
        TaggedPtr {
            raw,
            _marker: PhantomData,
        }
    }

    /// The packed word (pointer | tag bits).
    #[inline]
    pub fn into_usize(self) -> usize {
        self.raw
    }

    /// The pointer with tag bits and version stamp stripped.
    #[inline]
    pub fn ptr(self) -> *mut T {
        (self.raw & !META_MASK) as *mut T
    }

    /// The 16-bit version stamp (0 unless the producing backend stamps
    /// its edges — see [`STAMP_MASK`]).
    #[inline]
    pub fn stamp(self) -> u16 {
        (self.raw >> STAMP_SHIFT) as u16
    }

    /// This word with its version stamp replaced, pointer and tag bits
    /// preserved.
    #[inline]
    pub fn with_stamp(self, stamp: u16) -> Self {
        TaggedPtr {
            raw: (self.raw & !STAMP_MASK) | ((stamp as usize) << STAMP_SHIFT),
            _marker: PhantomData,
        }
    }

    /// Whether the stripped pointer is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.ptr().is_null()
    }

    /// The decoded tag bits.
    #[inline]
    pub fn tag(self) -> TagBits {
        TagBits::from_bits(self.raw)
    }

    /// Whether the mark bit is set.
    #[inline]
    pub fn is_marked(self) -> bool {
        self.raw & MARK_BIT != 0
    }

    /// Whether the flag bit is set.
    #[inline]
    pub fn is_flagged(self) -> bool {
        self.raw & FLAG_BIT != 0
    }

    /// Whether neither tag bit is set.
    #[inline]
    pub fn is_clean(self) -> bool {
        self.raw & TAG_MASK == 0
    }

    /// This pointer with both tag bits cleared (stamp preserved).
    #[inline]
    pub fn with_clean(self) -> Self {
        TaggedPtr {
            raw: self.raw & !TAG_MASK,
            _marker: PhantomData,
        }
    }

    /// This pointer with the mark bit set and the flag bit cleared
    /// (stamp preserved).
    #[inline]
    pub fn with_mark(self) -> Self {
        TaggedPtr {
            raw: (self.raw & !TAG_MASK) | MARK_BIT,
            _marker: PhantomData,
        }
    }

    /// This pointer with the flag bit set and the mark bit cleared
    /// (stamp preserved).
    #[inline]
    pub fn with_flag(self) -> Self {
        TaggedPtr {
            raw: (self.raw & !TAG_MASK) | FLAG_BIT,
            _marker: PhantomData,
        }
    }

    /// This word's pointer replaced, tags and stamp preserved.
    #[inline]
    pub fn with_ptr(self, ptr: *mut T) -> Self {
        let addr = ptr as usize;
        debug_assert_eq!(
            addr & META_MASK,
            0,
            "pointer not aligned for tagging or not canonical"
        );
        TaggedPtr {
            raw: addr | (self.raw & META_MASK),
            _marker: PhantomData,
        }
    }
}

/// An atomic successor field: a [`TaggedPtr`] that several threads load,
/// store, and CAS as one word.
///
/// The memory-ordering parameters mirror
/// [`std::sync::atomic::AtomicUsize`]; this type deliberately takes the
/// ordering at every call site rather than baking one in. The paper
/// assumes sequential consistency, but the algorithms only need
/// release/acquire publication edges on the successor field: each
/// pointer-installing CAS is a `Release` store and each load that will
/// dereference the pointer is `Acquire`. The core crates document the
/// invariant behind every ordering choice at the call site (see
/// `DESIGN.md` §9 for the full table).
pub struct AtomicTaggedPtr<T> {
    inner: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: the container only stores a word; thread-safety of the pointed-to
// data is the responsibility of the data structure using it (which shares
// `T` across threads by design and requires `T: Send + Sync` itself).
unsafe impl<T: Send + Sync> Send for AtomicTaggedPtr<T> {}
// SAFETY: same argument as `Send` above.
unsafe impl<T: Send + Sync> Sync for AtomicTaggedPtr<T> {}

impl<T> fmt::Debug for AtomicTaggedPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicTaggedPtr")
            // ord: Relaxed — DIAG.debug: best-effort snapshot, never dereferenced
            .field(&self.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> Default for AtomicTaggedPtr<T> {
    fn default() -> Self {
        Self::new(TaggedPtr::null())
    }
}

impl<T> AtomicTaggedPtr<T> {
    /// Create a field holding `initial`.
    #[inline]
    pub fn new(initial: TaggedPtr<T>) -> Self {
        AtomicTaggedPtr {
            inner: AtomicUsize::new(initial.into_usize()),
            _marker: PhantomData,
        }
    }

    /// Atomically load a snapshot.
    #[inline]
    pub fn load(&self, order: Ordering) -> TaggedPtr<T> {
        TaggedPtr::from_usize(self.inner.load(order))
    }

    /// Atomically store a snapshot.
    #[inline]
    pub fn store(&self, value: TaggedPtr<T>, order: Ordering) {
        self.inner.store(value.into_usize(), order);
    }

    /// Single-word compare-and-swap over the whole `(ptr, mark, flag)`
    /// triple — the paper's `C&S` primitive.
    ///
    /// # Errors
    ///
    /// On failure returns the value actually found, so callers can decode
    /// *why* they failed (redirected, marked, or flagged) and recover.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: TaggedPtr<T>,
        new: TaggedPtr<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<TaggedPtr<T>, TaggedPtr<T>> {
        self.inner
            .compare_exchange(current.into_usize(), new.into_usize(), success, failure)
            .map(TaggedPtr::from_usize)
            .map_err(TaggedPtr::from_usize)
    }

    /// Consume the field and return the final snapshot (requires unique
    /// access, no synchronization).
    #[inline]
    pub fn into_inner(self) -> TaggedPtr<T> {
        TaggedPtr::from_usize(self.inner.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked(v: u32) -> *mut u32 {
        Box::into_raw(Box::new(v))
    }

    unsafe fn free(p: *mut u32) {
        // SAFETY: `p` comes from `leaked` and is freed exactly once.
        drop(unsafe { Box::from_raw(p) });
    }

    #[test]
    fn null_is_clean() {
        let p = TaggedPtr::<u32>::null();
        assert!(p.is_null());
        assert!(p.is_clean());
        assert!(!p.is_marked());
        assert!(!p.is_flagged());
        assert_eq!(p.tag(), TagBits::Clean);
    }

    #[test]
    fn default_is_null() {
        assert_eq!(TaggedPtr::<u32>::default(), TaggedPtr::<u32>::null());
    }

    #[test]
    fn tag_roundtrip_preserves_pointer() {
        let raw = leaked(7);
        let p = TaggedPtr::unmarked(raw);
        assert_eq!(p.ptr(), raw);
        assert_eq!(p.with_mark().ptr(), raw);
        assert_eq!(p.with_flag().ptr(), raw);
        assert_eq!(p.with_mark().with_clean().ptr(), raw);
        unsafe { free(raw) };
    }

    #[test]
    fn mark_and_flag_are_mutually_exclusive_transitions() {
        let raw = leaked(1);
        let p = TaggedPtr::unmarked(raw);
        let marked = p.with_mark();
        assert!(marked.is_marked() && !marked.is_flagged());
        let flagged = marked.with_flag();
        assert!(flagged.is_flagged() && !flagged.is_marked());
        unsafe { free(raw) };
    }

    #[test]
    fn tagbits_encode_decode() {
        for tag in [TagBits::Clean, TagBits::Marked, TagBits::Flagged] {
            assert_eq!(TagBits::from_bits(tag.bits()), tag);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "marked and flagged")]
    fn tagbits_reject_both_bits() {
        let _ = TagBits::from_bits(TAG_MASK);
    }

    #[test]
    fn with_ptr_preserves_tags() {
        let a = leaked(1);
        let b = leaked(2);
        let p = TaggedPtr::unmarked(a).with_flag().with_ptr(b);
        assert_eq!(p.ptr(), b);
        assert!(p.is_flagged());
        unsafe {
            free(a);
            free(b);
        }
    }

    #[test]
    fn stamp_roundtrip_and_ptr_masking() {
        let raw = leaked(3);
        let p = TaggedPtr::unmarked(raw).with_stamp(0xBEEF);
        assert_eq!(p.stamp(), 0xBEEF);
        assert_eq!(p.ptr(), raw, "stamp must not leak into the pointer");
        assert!(!p.is_null());
        assert!(p.is_clean());
        // Stamps survive every tag transition and pointer swap.
        assert_eq!(p.with_mark().stamp(), 0xBEEF);
        assert_eq!(p.with_flag().stamp(), 0xBEEF);
        assert_eq!(p.with_mark().with_clean().stamp(), 0xBEEF);
        let other = leaked(4);
        let q = p.with_flag().with_ptr(other);
        assert_eq!(q.stamp(), 0xBEEF);
        assert_eq!(q.ptr(), other);
        assert!(q.is_flagged());
        // Restamp replaces, never accumulates.
        assert_eq!(p.with_stamp(0x0001).stamp(), 0x0001);
        assert_eq!(p.with_stamp(0).into_usize(), raw as usize);
        unsafe {
            free(raw);
            free(other);
        }
    }

    #[test]
    fn stamped_words_compare_unequal() {
        let raw = leaked(5);
        let clean = TaggedPtr::unmarked(raw);
        let stamped = clean.with_stamp(7);
        assert_ne!(clean, stamped, "equality covers the stamp (CAS semantics)");
        assert_eq!(stamped, TaggedPtr::unmarked(raw).with_stamp(7));
        unsafe { free(raw) };
    }

    #[test]
    fn null_with_stamp_stays_null() {
        let p = TaggedPtr::<u32>::null().with_stamp(42);
        assert!(p.is_null());
        assert_eq!(p.stamp(), 42);
    }

    #[test]
    fn usize_roundtrip() {
        let raw = leaked(9);
        let p = TaggedPtr::unmarked(raw).with_mark();
        let q = TaggedPtr::<u32>::from_usize(p.into_usize());
        assert_eq!(p, q);
        unsafe { free(raw) };
    }

    #[test]
    fn cas_success_and_failure_report_found_value() {
        let a = leaked(1);
        let b = leaked(2);
        let field = AtomicTaggedPtr::new(TaggedPtr::unmarked(a));

        let old = field.load(Ordering::SeqCst);
        let flagged = old.with_flag();
        assert_eq!(
            field.compare_exchange(old, flagged, Ordering::SeqCst, Ordering::SeqCst),
            Ok(old)
        );

        // Second identical CAS fails and reports the flagged value.
        assert_eq!(
            field.compare_exchange(
                old,
                TaggedPtr::unmarked(b),
                Ordering::SeqCst,
                Ordering::SeqCst
            ),
            Err(flagged)
        );
        unsafe {
            free(a);
            free(b);
        }
    }

    #[test]
    fn concurrent_cas_exactly_one_winner() {
        use std::sync::atomic::AtomicUsize;
        let field = AtomicTaggedPtr::new(TaggedPtr::<u32>::null());
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let old = TaggedPtr::null();
                    if field
                        .compare_exchange(old, old.with_flag(), Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::SeqCst), 1);
        assert!(field.load(Ordering::SeqCst).is_flagged());
    }

    #[test]
    fn into_inner_returns_last_value() {
        let field = AtomicTaggedPtr::new(TaggedPtr::<u32>::null());
        field.store(TaggedPtr::null().with_mark(), Ordering::SeqCst);
        assert!(field.into_inner().is_marked());
    }

    #[test]
    fn debug_is_nonempty() {
        let field = AtomicTaggedPtr::new(TaggedPtr::<u32>::null());
        assert!(!format!("{field:?}").is_empty());
        assert!(!format!("{:?}", TaggedPtr::<u32>::null()).is_empty());
    }
}
