//! Tagged atomic pointers for lock-free list algorithms.
//!
//! Fomitchev & Ruppert's algorithms (PODC 2004) operate on a composite
//! *successor field* `(right, mark, flag)` — a pointer plus two control
//! bits — updated atomically with a single-word compare-and-swap:
//!
//! * the **mark** bit means the node containing this field is logically
//!   deleted and its successor pointer is frozen forever;
//! * the **flag** bit means a deletion of the *successor* node is in
//!   progress and the field must not change until the flag is removed.
//!
//! On modern 64-bit targets every heap allocation of the node types used
//! by this workspace is at least 8-byte aligned, leaving the low three
//! pointer bits free. This crate packs the mark bit into bit 0 and the
//! flag bit into bit 1, exactly mirroring the paper's footnote 1.
//!
//! Two types are provided:
//!
//! * [`TaggedPtr<T>`] — an immutable snapshot of a successor field, a
//!   plain `Copy` value you can destructure and rebuild;
//! * [`AtomicTaggedPtr<T>`] — the shared field itself, supporting
//!   `load`, `store`, and `compare_exchange` over whole snapshots.
//!
//! Two dependency-free concurrency utilities shared by the crates built
//! on top also live here: [`CachePadded`] (64-byte alignment against
//! false sharing) and [`Backoff`] (truncated exponential spin for CAS
//! retry loops).
//!
//! # Examples
//!
//! ```
//! use lf_tagged::{AtomicTaggedPtr, TaggedPtr};
//! use std::sync::atomic::Ordering;
//!
//! let node = Box::into_raw(Box::new(42u64));
//! let succ = AtomicTaggedPtr::new(TaggedPtr::unmarked(node));
//!
//! // Flag the field (deletion of successor announced):
//! let old = succ.load(Ordering::SeqCst);
//! assert!(succ
//!     .compare_exchange(old, old.with_flag(), Ordering::SeqCst, Ordering::SeqCst)
//!     .is_ok());
//! assert!(succ.load(Ordering::SeqCst).is_flagged());
//!
//! // A marked field can never also be flagged (INV 5):
//! assert!(!succ.load(Ordering::SeqCst).is_marked());
//! # unsafe { drop(Box::from_raw(node)) };
//! ```

mod backoff;
mod pad;
mod ptr;

pub use backoff::Backoff;
pub use pad::CachePadded;
pub use ptr::{
    AtomicTaggedPtr, TagBits, TaggedPtr, FLAG_BIT, MARK_BIT, STAMP_MASK, STAMP_SHIFT, TAG_MASK,
};
