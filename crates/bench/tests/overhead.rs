//! Telemetry overhead budget: histogram capture (op tokens + local
//! histogram records) must cost less than 5% throughput versus
//! counters-only instrumentation on the E4 list configuration at 4
//! threads.
//!
//! Ignored by default — it is a timing measurement, meaningful only in
//! release mode on an otherwise quiet machine:
//!
//! ```text
//! cargo test -p lf-bench --release -- --ignored overhead
//! ```

use lf_bench::runner::{run_mixed, RunConfig};
use lf_core::FrList;
use lf_workloads::{KeyDist, Mix};

/// One throughput measurement with histogram capture toggled, on the
/// E4 configuration (uniform keys over 512, prefill 128, update-heavy).
fn throughput(histograms: bool) -> f64 {
    lf_metrics::set_histograms_enabled(histograms);
    let cfg = RunConfig {
        threads: 4,
        ops_per_thread: 40_000,
        mix: Mix::UPDATE_HEAVY,
        dist: KeyDist::Uniform { space: 512 },
        seed: 0xE4,
        prefill: 128,
    };
    run_mixed::<FrList<u64, u64>>(&cfg).throughput()
}

#[test]
#[ignore = "timing-sensitive: run alone, in release, on a quiet machine"]
fn histogram_overhead_under_five_percent() {
    // Warm-up pair (discarded) so neither variant pays first-touch
    // costs (TSC calibration, histogram allocation, fault-in).
    let _ = throughput(true);
    let _ = throughput(false);

    // Best-of-9, with the two variants interleaved so scheduler and
    // thermal drift on a shared machine perturbs both equally. Best-of
    // is the right estimator here: external noise only ever *subtracts*
    // throughput, so each variant's fastest run is its closest look at
    // the intrinsic cost.
    let mut with_hist: f64 = 0.0;
    let mut counters_only: f64 = 0.0;
    for _ in 0..9 {
        with_hist = with_hist.max(throughput(true));
        counters_only = counters_only.max(throughput(false));
    }
    lf_metrics::set_histograms_enabled(true);

    let overhead = (counters_only - with_hist) / counters_only;
    eprintln!(
        "counters-only {counters_only:.0} ops/s, with histograms {with_hist:.0} ops/s, \
         overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "histogram overhead {:.2}% exceeds the 5% budget \
         ({counters_only:.0} ops/s -> {with_hist:.0} ops/s)",
        overhead * 100.0
    );
}
