//! Causal-tracing overhead budget (DESIGN.md §12, normative):
//!
//! * **disabled** — the always-compiled hooks (one `Relaxed` load and a
//!   branch per emission site) must cost ≤ 1% against the committed
//!   `BENCH_e4.json`/`BENCH_e6.json` medians;
//! * **enabled** — full event capture into the per-thread rings must
//!   cost ≤ 10% against a disabled run on the same machine.
//!
//! Ignored by default — timing measurements, meaningful only in release
//! mode on an otherwise quiet machine:
//!
//! ```text
//! cargo test -p lf-bench --release -- --ignored trace_overhead --nocapture
//! ```
//!
//! The baselines are parsed with `lf_trace::json` — the same parser the
//! flight-recorder report tool uses, so the dependency costs nothing new.

use std::sync::Mutex;

use lf_bench::runner::{run_mixed, RunConfig};
use lf_core::{FrList, SkipList};
use lf_workloads::{KeyDist, Mix};

/// Both tests flip the process-global trace toggle; never interleave.
static BUDGET_LOCK: Mutex<()> = Mutex::new(());

const THREADS: usize = 4;

/// E4 list configuration (key space 512, prefill 128, update-heavy).
fn list_throughput(trace: bool) -> f64 {
    if trace {
        lf_trace::enable();
    } else {
        lf_trace::disable();
    }
    let cfg = RunConfig {
        threads: THREADS,
        ops_per_thread: 40_000,
        mix: Mix::UPDATE_HEAVY,
        dist: KeyDist::Uniform { space: 512 },
        seed: 0xE4,
        prefill: 128,
    };
    run_mixed::<FrList<u64, u64>>(&cfg).throughput()
}

/// E6 skip-list configuration (key space 8192, prefill 2048, update-heavy).
fn skiplist_throughput(trace: bool) -> f64 {
    if trace {
        lf_trace::enable();
    } else {
        lf_trace::disable();
    }
    let cfg = RunConfig {
        threads: THREADS,
        ops_per_thread: 40_000,
        mix: Mix::UPDATE_HEAVY,
        dist: KeyDist::Uniform { space: 8192 },
        seed: 0xE6,
        prefill: 2048,
    };
    run_mixed::<SkipList<u64, u64>>(&cfg).throughput()
}

/// Best-of-9 with the variants interleaved: external noise only ever
/// subtracts throughput, so each variant's fastest run is its closest
/// look at the intrinsic cost (same estimator as `overhead.rs`).
fn best_of_9(f: fn(bool) -> f64) -> (f64, f64) {
    let _ = f(false);
    let _ = f(true);
    let (mut off, mut on): (f64, f64) = (0.0, 0.0);
    for _ in 0..9 {
        off = off.max(f(false));
        on = on.max(f(true));
    }
    lf_trace::disable();
    (off, on)
}

/// Median `throughput_ops_per_s` of the committed baseline's `fr-*`
/// rows for `mix_label`, parsed with the flight recorder's own JSON
/// parser.
fn baseline_median(file: &str, mix_label: &str) -> f64 {
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed baseline {path} unreadable: {e}"));
    let doc = lf_trace::json::parse(&text).expect("baseline parses");
    let mut v: Vec<f64> = doc
        .get("rows")
        .and_then(|r| r.as_arr())
        .expect("baseline has rows")
        .iter()
        .filter(|r| {
            r.get("impl")
                .and_then(|i| i.as_str())
                .is_some_and(|i| i.starts_with("fr-"))
                && r.get("mix").and_then(|m| m.as_str()) == Some(mix_label)
        })
        .filter_map(|r| r.get("throughput_ops_per_s").and_then(|t| t.as_num()))
        .collect();
    assert!(!v.is_empty(), "no fr-* {mix_label} rows in {file}");
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

#[test]
#[ignore = "timing-sensitive: run alone, in release, on a quiet machine"]
fn trace_overhead_enabled_under_ten_percent() {
    let _g = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, f) in [
        ("e4/fr-list", list_throughput as fn(bool) -> f64),
        ("e6/fr-skiplist", skiplist_throughput),
    ] {
        let (off, on) = best_of_9(f);
        let overhead = (off - on) / off;
        eprintln!(
            "{name}: tracing off {off:.0} ops/s, on {on:.0} ops/s, overhead {:.2}%",
            overhead * 100.0
        );
        assert!(
            overhead < 0.10,
            "{name}: enabled tracing overhead {:.2}% exceeds the 10% budget \
             ({off:.0} ops/s -> {on:.0} ops/s)",
            overhead * 100.0
        );
    }
}

#[test]
#[ignore = "timing-sensitive: compares against the committed baseline medians, \
            so it is only meaningful on the machine that produced them"]
fn trace_overhead_disabled_within_one_percent_of_baselines() {
    let _g = BUDGET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (file, f) in [
        ("BENCH_e4.json", list_throughput as fn(bool) -> f64),
        ("BENCH_e6.json", skiplist_throughput),
    ] {
        let median = baseline_median(file, &Mix::UPDATE_HEAVY.label());
        let _ = f(false); // warm-up
        let mut off: f64 = 0.0;
        for _ in 0..9 {
            off = off.max(f(false));
        }
        let delta = (off / median - 1.0) * 100.0;
        eprintln!(
            "{file}: committed fr-* median {median:.0} ops/s, \
             tracing-disabled now {off:.0} ops/s ({delta:+.2}%)"
        );
        assert!(
            off >= median * 0.99,
            "{file}: tracing-disabled throughput {off:.0} ops/s fell more than 1% \
             below the committed median {median:.0} ops/s ({delta:+.2}%)"
        );
    }
}
