//! Benchmark and experiment harness.
//!
//! Defines a uniform [`BenchMap`] adapter over every dictionary in the
//! workspace (the Fomitchev–Ruppert list and skip list plus all
//! baselines), a multi-threaded workload [`runner`], and one module per
//! experiment of `DESIGN.md` §5 (E1–E10). The `experiments` binary
//! prints each experiment's table; the Criterion benches in `benches/`
//! cover the wall-clock comparisons.

pub mod adapters;
pub mod experiments;
pub mod resp_client;
pub mod runner;
pub mod table;

pub use adapters::{BenchMap, MapHandle};
pub use runner::{run_mixed, RunConfig, RunResult};
pub use table::Table;
