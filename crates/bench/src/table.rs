//! Minimal fixed-width text tables for experiment output.

use std::fmt::Write as _;

/// A right-aligned text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.chars().count());
                for _ in 0..pad {
                    out.push(' ');
                }
                out.push_str(c);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float compactly (3 significant decimals, thousands stay
/// readable).
pub fn fmt_f(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["n", "steps"]);
        t.row(["8", "123"]);
        t.row(["1024", "4"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("steps"));
        assert!(lines[2].ends_with("123"));
        assert!(lines[3].ends_with("  4"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(42.25), "42.2");
        assert_eq!(fmt_f(1.5), "1.500");
    }
}
