//! Multi-threaded workload runner with step-metric capture.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

use crate::adapters::{BenchMap, MapHandle};

/// Parameters of one measured run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Key distribution.
    pub dist: KeyDist,
    /// Base RNG seed (each thread derives its own).
    pub seed: u64,
    /// Keys inserted before the measured phase (every other key of the
    /// space, up to this count) so the structure starts at steady size.
    pub prefill: u64,
}

/// Outcome of one measured run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total completed operations.
    pub ops: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Essential-step delta for the measured phase (all threads).
    pub metrics: lf_metrics::Snapshot,
    /// Full telemetry delta (scalar counters plus latency / retry /
    /// backlink / hop distributions) for the measured phase.
    pub telemetry: lf_metrics::Telemetry,
    /// Peak unreclaimed objects in the map's reclamation domain over
    /// the whole run (prefill included), when the map reports one.
    pub peak_unreclaimed: Option<u64>,
}

impl RunResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Essential steps per operation.
    pub fn steps_per_op(&self) -> f64 {
        self.metrics.essential_steps() as f64 / self.ops.max(1) as f64
    }
}

/// Key space implied by a distribution.
fn space_of(dist: &KeyDist) -> u64 {
    match dist {
        KeyDist::Uniform { space } => *space,
        KeyDist::Zipfian { space, .. } => *space,
        KeyDist::Tail { space, .. } => *space,
        KeyDist::Sequential { space } => *space,
    }
}

/// Run `cfg` against a fresh `M`, returning throughput and the
/// essential-step delta attributable to the measured phase.
pub fn run_mixed<M: BenchMap>(cfg: &RunConfig) -> RunResult {
    let map = M::create();

    // Prefill half the key space (even keys) so searches hit ~50%.
    {
        let h = map.bench_handle();
        let space = space_of(&cfg.dist);
        let mut inserted = 0;
        let mut k = 0;
        while inserted < cfg.prefill && k < space {
            h.insert(k);
            inserted += 1;
            k += 2;
        }
    }
    let barrier = Barrier::new(cfg.threads + 1);
    let mut start: Option<Instant> = None;
    let mut elapsed = Duration::ZERO;

    // `join_and_snapshot` differences telemetry around the scope: the
    // closing snapshot reads every thread's shard directly, and the
    // scope join makes the workers' counts exact in it.
    let ((), telemetry) = lf_metrics::Registry::join_and_snapshot(|| {
        std::thread::scope(|s| {
            for t in 0..cfg.threads {
                let map = &map;
                let barrier = &barrier;
                let mix = cfg.mix;
                let dist = cfg.dist.clone();
                let seed = cfg
                    .seed
                    .wrapping_add(t as u64)
                    .wrapping_mul(0x2545F4914F6CDD1D);
                let ops = cfg.ops_per_thread;
                s.spawn(move || {
                    let h = map.bench_handle();
                    let mut w = WorkloadIter::new(mix, dist, seed);
                    // Fault in this worker's telemetry storage before
                    // the clock starts.
                    lf_metrics::prewarm();
                    barrier.wait();
                    for _ in 0..ops {
                        let op = w.next_op();
                        match op.kind {
                            OpKind::Insert => h.insert(op.key),
                            OpKind::Remove => h.remove(op.key),
                            OpKind::Search => h.search(op.key),
                        };
                    }
                });
            }
            // Start the clock before releasing the barrier: on a single
            // CPU a worker can otherwise run to completion before this
            // thread is rescheduled, shrinking the measured window to ~0.
            start = Some(Instant::now());
            barrier.wait();
            // The scope joins all workers before returning.
        });
        // Stop the clock at the join, before the closing telemetry
        // aggregation (histogram copies/merges) — that bookkeeping must
        // not be billed to the measured phase.
        elapsed = start.expect("barrier released").elapsed();
    });

    RunResult {
        ops: cfg.threads as u64 * cfg.ops_per_thread,
        elapsed,
        metrics: telemetry.counters,
        telemetry,
        peak_unreclaimed: map.peak_unreclaimed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_core::FrList;

    #[test]
    fn runner_counts_ops_and_steps() {
        let cfg = RunConfig {
            threads: 2,
            ops_per_thread: 200,
            mix: Mix::CHURN,
            dist: KeyDist::Uniform { space: 64 },
            seed: 42,
            prefill: 16,
        };
        let res = run_mixed::<FrList<u64, u64>>(&cfg);
        assert_eq!(res.ops, 400);
        assert!(res.throughput() > 0.0);
        // Every op records at least its own completion; steps/op must
        // be positive on a churn workload.
        assert!(res.steps_per_op() > 0.0, "{res:?}");
        assert!(res.metrics.ops >= 400);
        // The telemetry delta attributes one retry/backlink/hop sample
        // to every measured op, and a latency sample to one op in
        // sixteen (`LATENCY_SAMPLE_EVERY`).
        // (`>=`: unit tests share process-global metrics, so a
        // concurrently running test may contribute samples too.)
        let lat = res.telemetry.op_latency_ns();
        assert!(lat.count() >= 400 / 16, "one latency sample per 16 ops");
        assert!(lat.max() > 0, "latencies are nonzero");
        assert!(res.telemetry.cas_retries().count() >= 400);
        assert!(res.telemetry.search_hops().count() >= 400);
    }
}
