//! Multi-threaded workload runner with step-metric capture.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

use crate::adapters::{BenchMap, MapHandle};

/// Parameters of one measured run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Key distribution.
    pub dist: KeyDist,
    /// Base RNG seed (each thread derives its own).
    pub seed: u64,
    /// Keys inserted before the measured phase (every other key of the
    /// space, up to this count) so the structure starts at steady size.
    pub prefill: u64,
}

/// Outcome of one measured run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Total completed operations.
    pub ops: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Essential-step delta for the measured phase (all threads).
    pub metrics: lf_metrics::Snapshot,
}

impl RunResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Essential steps per operation.
    pub fn steps_per_op(&self) -> f64 {
        self.metrics.essential_steps() as f64 / self.ops.max(1) as f64
    }
}

/// Key space implied by a distribution.
fn space_of(dist: &KeyDist) -> u64 {
    match dist {
        KeyDist::Uniform { space } => *space,
        KeyDist::Zipfian { space, .. } => *space,
        KeyDist::Tail { space, .. } => *space,
        KeyDist::Sequential { space } => *space,
    }
}

/// Run `cfg` against a fresh `M`, returning throughput and the
/// essential-step delta attributable to the measured phase.
pub fn run_mixed<M: BenchMap>(cfg: &RunConfig) -> RunResult {
    let map = M::create();

    // Prefill half the key space (even keys) so searches hit ~50%.
    {
        let h = map.bench_handle();
        let space = space_of(&cfg.dist);
        let mut inserted = 0;
        let mut k = 0;
        while inserted < cfg.prefill && k < space {
            h.insert(k);
            inserted += 1;
            k += 2;
        }
    }
    lf_metrics::flush_local();
    let before = lf_metrics::snapshot();

    let barrier = Barrier::new(cfg.threads + 1);
    let mut start: Option<Instant> = None;

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let map = &map;
            let barrier = &barrier;
            let mix = cfg.mix;
            let dist = cfg.dist.clone();
            let seed = cfg
                .seed
                .wrapping_add(t as u64)
                .wrapping_mul(0x2545F4914F6CDD1D);
            let ops = cfg.ops_per_thread;
            s.spawn(move || {
                let h = map.bench_handle();
                let mut w = WorkloadIter::new(mix, dist, seed);
                barrier.wait();
                for _ in 0..ops {
                    let op = w.next_op();
                    match op.kind {
                        OpKind::Insert => h.insert(op.key),
                        OpKind::Remove => h.remove(op.key),
                        OpKind::Search => h.search(op.key),
                    };
                }
                lf_metrics::flush_local();
            });
        }
        // Start the clock before releasing the barrier: on a single
        // CPU a worker can otherwise run to completion before this
        // thread is rescheduled, shrinking the measured window to ~0.
        start = Some(Instant::now());
        barrier.wait();
        // The scope joins all workers before returning.
    });
    let elapsed = start.expect("barrier released").elapsed();

    let after = lf_metrics::snapshot();
    RunResult {
        ops: cfg.threads as u64 * cfg.ops_per_thread,
        elapsed,
        metrics: after - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_core::FrList;

    #[test]
    fn runner_counts_ops_and_steps() {
        let cfg = RunConfig {
            threads: 2,
            ops_per_thread: 200,
            mix: Mix::CHURN,
            dist: KeyDist::Uniform { space: 64 },
            seed: 42,
            prefill: 16,
        };
        let res = run_mixed::<FrList<u64, u64>>(&cfg);
        assert_eq!(res.ops, 400);
        assert!(res.throughput() > 0.0);
        // Every op records at least its own completion; steps/op must
        // be positive on a churn workload.
        assert!(res.steps_per_op() > 0.0, "{res:?}");
        assert!(res.metrics.ops >= 400);
    }
}
