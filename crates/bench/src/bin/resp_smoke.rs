//! Wire smoke client: hammer a running `lf-server` with pipelined RESP
//! commands and verify the accounting contract — every command sent
//! resolves as exactly one of ok / `-BUSY shed` / `-BUSY rejected`.
//!
//! ```text
//! resp_smoke <host:port> [--ops N] [--burst B] [--shutdown]
//!     --ops N      commands to send (default 50000)
//!     --burst B    pipeline depth per write (default 64)
//!     --shutdown   send SHUTDOWN when done (server must allow it)
//! ```
//!
//! Exits nonzero if any reply is missing, any command resolves as an
//! unexpected error, or the server's `INFO` counters disagree with the
//! client-side tallies. This is the blocking `server-smoke` CI check.

use std::net::SocketAddr;
use std::process::ExitCode;

use lf_bench::resp_client::{run_open_loop, OpenLoopConfig, RespClient};
use lf_server::resp::{self, Reply};
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

fn parse_flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args
        .iter()
        .find(|a| !a.starts_with("--") && a.contains(':'))
        .and_then(|a| a.parse::<SocketAddr>().ok())
    else {
        eprintln!("usage: resp_smoke <host:port> [--ops N] [--burst B] [--shutdown]");
        return ExitCode::FAILURE;
    };
    let ops = parse_flag(&args, "--ops", 50_000);
    let burst = parse_flag(&args, "--burst", 64) as usize;
    let shutdown = args.iter().any(|a| a == "--shutdown");

    let mut w = WorkloadIter::new(
        Mix::READ_HEAVY,
        KeyDist::Uniform { space: 4_096 },
        0x5340_4B45,
    );
    let tally = match run_open_loop(
        &OpenLoopConfig {
            addr,
            ops,
            rate: None,
            burst,
        },
        |i, buf| {
            let op = w.next_op();
            let key = format!("{:012}", op.key);
            match op.kind {
                OpKind::Search => resp::write_command(buf, &[b"GET", key.as_bytes()]),
                // Unique SET keys: an in-flight duplicate would spend
                // its retry budget and muddy the exact accounting this
                // smoke exists to verify.
                OpKind::Insert => {
                    let key = format!("smoke-{i:012}");
                    resp::write_command(buf, &[b"SET", key.as_bytes(), b"v"]);
                }
                OpKind::Remove => resp::write_command(buf, &[b"DEL", key.as_bytes()]),
            }
        },
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smoke run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "sent {} | ok {} | shed {} | rejected {} | errors {} | {} kops/s | sock p99 {} us",
        tally.sent,
        tally.ok,
        tally.shed,
        tally.rejected,
        tally.errors,
        (tally.ok as f64 / tally.wall.as_secs_f64().max(1e-9) / 1e3).round(),
        tally.socket_ns.p99() / 1_000,
    );
    if tally.sent != ops || tally.errors != 0 {
        eprintln!(
            "FAIL: accounting broken (sent {} of {ops}, errors {})",
            tally.sent, tally.errors
        );
        return ExitCode::FAILURE;
    }
    if tally.ok + tally.shed + tally.rejected != tally.sent {
        eprintln!("FAIL: sent != ok + shed + rejected");
        return ExitCode::FAILURE;
    }

    // Cross-check the server's own view over the control path.
    let mut ctl = match RespClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("FAIL: INFO connect: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ctl.roundtrip(&[b"INFO"]) {
        Ok(Reply::Bulk(Some(text))) => {
            let text = String::from_utf8_lossy(&text).to_string();
            let field = |name: &str| -> u64 {
                text.lines()
                    .find_map(|l| l.strip_prefix(name).and_then(|v| v.strip_prefix(':')))
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(u64::MAX)
            };
            // ≥: the INFO connection itself and any earlier traffic also
            // count server-side; the smoke's commands must all be there.
            let (ok, shed, rejected) = (
                field("commands_ok"),
                field("commands_shed"),
                field("commands_rejected"),
            );
            if ok < tally.ok || shed < tally.shed || rejected < tally.rejected {
                eprintln!(
                    "FAIL: server counters ({ok}/{shed}/{rejected}) below client tallies \
                     ({}/{}/{})",
                    tally.ok, tally.shed, tally.rejected
                );
                return ExitCode::FAILURE;
            }
        }
        other => {
            eprintln!("FAIL: INFO gave {other:?}");
            return ExitCode::FAILURE;
        }
    }
    if shutdown {
        match ctl.roundtrip(&[b"SHUTDOWN"]) {
            Ok(Reply::Simple(s)) if s == b"OK" => {}
            other => {
                eprintln!("FAIL: SHUTDOWN gave {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("smoke OK");
    ExitCode::SUCCESS
}
