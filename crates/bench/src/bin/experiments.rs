//! Experiment runner: regenerates every table/claim of `DESIGN.md` §5.
//!
//! ```text
//! experiments <id> [--full]
//!     id: e1 | e2 | ... | e16 | all
//!     --full: full problem sizes (default: quick sizes)
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = !args.iter().any(|a| a == "--full");
    let id = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    println!(
        "== lock-free lists & skip lists: experiment '{id}' ({} sizes) ==\n",
        if quick { "quick" } else { "full" }
    );
    if lf_bench::experiments::dispatch(id, quick) {
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown experiment id '{id}' (use e1..e16 or all)");
        ExitCode::FAILURE
    }
}
