//! Long-running randomized soak with periodic structural validation —
//! the manual burn-in tool for the lock-free structures.
//!
//! ```text
//! soak [seconds] [threads]     (defaults: 10 seconds, 4 threads)
//! ```
//!
//! Rounds alternate between the FR list and the FR skip list: each
//! round churns a random mix from all threads, quiesces, validates
//! every structural invariant, checks the iterator against membership,
//! and prints a one-line summary. Any violation panics with the seed
//! so the round can be replayed.
//!
//! Telemetry: every round is wrapped in
//! `Registry::join_and_snapshot`, and its summary line carries the
//! round's latency percentiles and worst-case CAS-retry chain. On
//! completion the run's cumulative telemetry is printed once in
//! Prometheus text exposition format (pipe to a textfile collector or
//! just read the quantiles).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lf_core::{FrList, SkipList};
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

fn churn_round_list(seed: u64, threads: usize, ops: u64) -> (usize, u64) {
    let list = FrList::<u64, u64>::new();
    let total_ops = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let list = &list;
            let total_ops = &total_ops;
            s.spawn(move || {
                let h = list.handle();
                let mut w = WorkloadIter::new(
                    Mix::UPDATE_HEAVY,
                    KeyDist::Uniform { space: 512 },
                    seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                for _ in 0..ops {
                    let op = w.next_op();
                    match op.kind {
                        OpKind::Insert => {
                            let _ = h.insert(op.key, op.key);
                        }
                        OpKind::Remove => {
                            let _ = h.remove(&op.key);
                        }
                        OpKind::Search => {
                            let _ = h.contains(&op.key);
                        }
                    }
                    total_ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    list.validate_quiescent();
    let h = list.handle();
    let iter_count = h.iter().count();
    assert_eq!(iter_count, list.len(), "iterator disagrees with len");
    (iter_count, total_ops.load(Ordering::Relaxed))
}

fn churn_round_skiplist(seed: u64, threads: usize, ops: u64) -> (usize, u64) {
    let sl = SkipList::<u64, u64>::new();
    let total_ops = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let sl = &sl;
            let total_ops = &total_ops;
            s.spawn(move || {
                let h = sl.handle();
                let mut w = WorkloadIter::new(
                    Mix::UPDATE_HEAVY,
                    KeyDist::Zipfian {
                        space: 1024,
                        theta: 0.9,
                    },
                    seed ^ (t as u64).wrapping_mul(0xD1B54A32D192ED03),
                );
                for _ in 0..ops {
                    let op = w.next_op();
                    match op.kind {
                        OpKind::Insert => {
                            let _ = h.insert(op.key, op.key);
                        }
                        OpKind::Remove => {
                            let _ = h.remove(&op.key);
                        }
                        OpKind::Search => {
                            let _ = h.contains(&op.key);
                        }
                    }
                    total_ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    // Sweep leftovers a stalled helper may have abandoned, then check
    // every level.
    {
        let h = sl.handle();
        for k in 0..1024u64 {
            let _ = h.contains(&k);
        }
    }
    sl.validate_quiescent();
    let h = sl.handle();
    let iter_count = h.iter().count();
    assert_eq!(iter_count, sl.len(), "iterator disagrees with len");
    (iter_count, total_ops.load(Ordering::Relaxed))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seconds: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(10);
    let threads: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("soaking for {seconds}s with {threads} threads (panics on any violation)");
    let start = lf_metrics::telemetry();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut round = 0u64;
    let mut grand_total = 0u64;
    while Instant::now() < deadline {
        let seed = 0xC0FFEE ^ round.wrapping_mul(0x9E3779B97F4A7C15);
        let ((size, ops), tel) = lf_metrics::Registry::join_and_snapshot(|| {
            if round.is_multiple_of(2) {
                churn_round_list(seed, threads, 4_000)
            } else {
                churn_round_skiplist(seed, threads, 4_000)
            }
        });
        grand_total += ops;
        let lat = tel.op_latency_ns();
        println!(
            "round {round:>4} [{}] seed {seed:#018x}: {ops} ops, final size {size}, validated OK \
             | lat_ns p50={} p99={} p999={} max={} | retries p99={} max={}",
            if round.is_multiple_of(2) {
                "list    "
            } else {
                "skiplist"
            },
            lat.p50(),
            lat.p99(),
            lat.p999(),
            lat.max(),
            tel.cas_retries().p99(),
            tel.cas_retries().max(),
        );
        round += 1;
    }
    println!("soak complete: {round} rounds, {grand_total} ops, zero violations");
    let total = lf_metrics::telemetry() - start;
    println!("\n--- cumulative telemetry (Prometheus text exposition) ---");
    print!("{}", lf_metrics::export::telemetry_prometheus(&total));
}
