//! A real TCP RESP client for driving `lf-server` over loopback — the
//! promotion of E7's in-process open-loop generator onto an actual
//! socket, sharing the server's own codec (`lf_server::resp`) so the
//! two sides can never skew.
//!
//! Two shapes:
//!
//! * [`RespClient`] — a synchronous one-command-at-a-time client for
//!   setup, probes, and control commands (`INFO`, `SHUTDOWN`).
//! * [`run_open_loop`] — a paced, pipelined generator: a writer paces
//!   command bursts onto the socket at a fixed offered rate (or flat
//!   out, for capacity probes) while a reader thread drains replies,
//!   classifies every one of them (ok / `-BUSY shed` / `-BUSY
//!   rejected` / other error), and records *socket-to-socket* latency
//!   for the admitted ones. Pacing is deadline-based, so a slow server
//!   does not slow the offered rate — the definition of an open loop —
//!   and the returned [`RunTally`] accounts for every command sent.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use lf_metrics::Histogram;
use lf_server::resp::{self, Reply};

/// Protocol-level classification of one reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Any non-error reply: the command was admitted and served.
    Ok,
    /// `-BUSY shed` — admitted, then evicted by a later arrival.
    Shed,
    /// `-BUSY rejected` — refused at the ring.
    Rejected,
    /// Any other `-…` error (bad command, retry-budget exhaustion…).
    Error,
}

/// Classify a reply the way the accounting contract reads: every
/// command resolves as exactly one of ok / shed / rejected / error.
/// Prefix-matched, because a busy multi-key `DEL` may carry a
/// `; partial: …` suffix disclosing sub-ops that still applied.
pub fn classify(reply: &Reply) -> Class {
    match reply {
        Reply::Error(msg) if msg.starts_with(b"BUSY shed") => Class::Shed,
        Reply::Error(msg) if msg.starts_with(b"BUSY rejected") => Class::Rejected,
        Reply::Error(_) => Class::Error,
        _ => Class::Ok,
    }
}

/// Synchronous RESP client: one command, one reply, in order.
#[derive(Debug)]
pub struct RespClient {
    stream: TcpStream,
    acc: Vec<u8>,
}

impl RespClient {
    /// Connect with a generous read timeout (probes and control
    /// commands should never hang a harness).
    pub fn connect(addr: SocketAddr) -> io::Result<RespClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(RespClient {
            stream,
            acc: Vec::new(),
        })
    }

    /// Send one command and block for its reply.
    pub fn roundtrip(&mut self, args: &[&[u8]]) -> io::Result<Reply> {
        let mut buf = Vec::new();
        resp::write_command(&mut buf, args);
        self.stream.write_all(&buf)?;
        self.read_reply()
    }

    /// Read the next in-order reply off the socket.
    pub fn read_reply(&mut self) -> io::Result<Reply> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match resp::parse_reply(&self.acc)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                Some((reply, used)) => {
                    self.acc.drain(..used);
                    return Ok(reply);
                }
                None => {
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                    self.acc.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }
}

/// One open-loop run's shape.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Total commands to send.
    pub ops: u64,
    /// Offered rate in commands/s; `None` sends flat out (capacity
    /// probe / closed-pipe smoke).
    pub rate: Option<f64>,
    /// Commands per pipelined burst (and per write syscall).
    pub burst: usize,
}

/// Everything one open-loop run measured. `sent` always equals
/// `ok + shed + rejected + errors` by construction — the caller's
/// assertion is against the *server's* counters, not this one.
#[derive(Debug, Clone)]
pub struct RunTally {
    /// Commands written to the socket.
    pub sent: u64,
    /// Non-error replies.
    pub ok: u64,
    /// `-BUSY shed` replies.
    pub shed: u64,
    /// `-BUSY rejected` replies.
    pub rejected: u64,
    /// Other error replies (zero in a healthy run).
    pub errors: u64,
    /// Submit-phase wall clock (first write to last write) — verifies
    /// the offered rate, but overstates throughput: writes land in
    /// socket buffers long before the server answers.
    pub elapsed: Duration,
    /// End-to-end wall clock: first write until the last reply was
    /// parsed. Delivered-throughput denominators belong here.
    pub wall: Duration,
    /// Socket-to-socket latency of the *admitted* commands: burst
    /// write time to reply parse time, in nanoseconds.
    pub socket_ns: Histogram,
}

impl RunTally {
    /// Fraction of sent commands the server refused (`shed+rejected`).
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        (self.shed + self.rejected) as f64 / self.sent as f64
    }
}

/// Drive one paced, pipelined open-loop run. `gen` encodes command
/// number `i` into the supplied buffer (append-only; the generator owns
/// framing via [`resp::write_command`]).
///
/// The writer thread (this thread) paces bursts; a reader thread drains
/// replies concurrently so the socket's receive window never backs up
/// into the server. Classification and latency land in the returned
/// [`RunTally`].
pub fn run_open_loop(
    cfg: &OpenLoopConfig,
    mut gen: impl FnMut(u64, &mut Vec<u8>),
) -> io::Result<RunTally> {
    let stream = TcpStream::connect(cfg.addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let reader_stream = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<(Instant, u32)>();

    let reader = std::thread::Builder::new()
        .name("resp-client-reader".into())
        .spawn(move || read_loop(reader_stream, &rx))
        .expect("spawn reader");

    let mut stream = stream;
    let burst = cfg.burst.max(1);
    let interval = cfg
        .rate
        .map(|r| Duration::from_secs_f64(burst as f64 / r.max(1.0)));
    let started = Instant::now();
    let mut next = started;
    let mut wbuf = Vec::with_capacity(64 * burst);
    let mut sent = 0u64;
    while sent < cfg.ops {
        if let Some(interval) = interval {
            // Deadline pacing, as in E7's in-process open loop: the
            // slot owns the time whether or not the server keeps up.
            // Yield rather than spin while waiting — on small machines
            // the server shares these cores, and a spinning pacer
            // steals the capacity it is trying to measure.
            while Instant::now() < next {
                std::thread::yield_now();
            }
            next += interval;
        }
        wbuf.clear();
        let n = (burst as u64).min(cfg.ops - sent) as u32;
        for i in 0..n {
            gen(sent + u64::from(i), &mut wbuf);
        }
        let stamp = Instant::now();
        stream.write_all(&wbuf)?;
        tx.send((stamp, n)).expect("reader alive");
        sent += u64::from(n);
    }
    let elapsed = started.elapsed();
    drop(tx); // reader drains what's in flight, then returns
    let (ok, shed, rejected, errors, socket_ns) = reader.join().expect("reader join")?;
    let wall = started.elapsed();
    Ok(RunTally {
        sent,
        ok,
        shed,
        rejected,
        errors,
        elapsed,
        wall,
        socket_ns,
    })
}

type ReadOutcome = io::Result<(u64, u64, u64, u64, Histogram)>;

/// Reply-drain loop: one classification per command, latency for the
/// admitted. Burst stamps arrive over the channel in send order, and
/// RESP replies are strictly ordered, so matching is positional.
fn read_loop(mut stream: TcpStream, rx: &mpsc::Receiver<(Instant, u32)>) -> ReadOutcome {
    let (mut ok, mut shed, mut rejected, mut errors) = (0u64, 0u64, 0u64, 0u64);
    let mut lat = Histogram::new();
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    while let Ok((stamp, n)) = rx.recv() {
        for _ in 0..n {
            let reply = loop {
                match resp::parse_reply(&acc)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
                {
                    Some((reply, used)) => {
                        acc.drain(..used);
                        break reply;
                    }
                    None => {
                        let got = stream.read(&mut chunk)?;
                        if got == 0 {
                            return Err(io::ErrorKind::UnexpectedEof.into());
                        }
                        acc.extend_from_slice(&chunk[..got]);
                    }
                }
            };
            match classify(&reply) {
                Class::Ok => {
                    ok += 1;
                    lat.record(stamp.elapsed().as_nanos() as u64);
                }
                Class::Shed => shed += 1,
                Class::Rejected => rejected += 1,
                Class::Error => errors += 1,
            }
        }
    }
    Ok((ok, shed, rejected, errors, lat))
}
