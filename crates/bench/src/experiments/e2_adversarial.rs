//! E2 — the §3.1 adversarial execution, replayed deterministically.
//!
//! Setup: `n` keys in the list; one deleter process repeatedly deletes
//! the last node; `q − 1` inserter processes try to insert new keys at
//! the end of the list. In every round the adversary lets each
//! inserter run **until it is about to execute its insertion C&S**,
//! then runs the deletion of the current last node to completion, then
//! resumes the inserters (whose C&S now fails).
//!
//! Paper claim: Harris's list does `Ω(q·n²)` total work (every failed
//! inserter restarts from the head), i.e. `Ω(n̄·c̄)` per operation,
//! while the Fomitchev–Ruppert list recovers through backlinks for
//! `O(c)` extra steps per failure, keeping the average `O(n̄ + c̄)`.

use std::sync::Arc;

use lf_sched::sim::{SimFrList, SimHarrisList, SimMichaelList};
use lf_sched::{Proc, Scheduler, StepKind};

use crate::table::{fmt_f, Table};

/// Abstraction over the two simulated lists.
trait AdvList: Send + Sync + 'static {
    fn create() -> Self;
    fn insert(&self, k: i64, p: &Proc) -> bool;
    fn delete(&self, k: i64, p: &Proc) -> bool;
}

impl AdvList for SimFrList {
    fn create() -> Self {
        SimFrList::new()
    }
    fn insert(&self, k: i64, p: &Proc) -> bool {
        SimFrList::insert(self, k, p)
    }
    fn delete(&self, k: i64, p: &Proc) -> bool {
        SimFrList::delete(self, k, p)
    }
}

impl AdvList for SimHarrisList {
    fn create() -> Self {
        SimHarrisList::new()
    }
    fn insert(&self, k: i64, p: &Proc) -> bool {
        SimHarrisList::insert(self, k, p)
    }
    fn delete(&self, k: i64, p: &Proc) -> bool {
        SimHarrisList::delete(self, k, p)
    }
}

impl AdvList for SimMichaelList {
    fn create() -> Self {
        SimMichaelList::new()
    }
    fn insert(&self, k: i64, p: &Proc) -> bool {
        SimMichaelList::insert(self, k, p)
    }
    fn delete(&self, k: i64, p: &Proc) -> bool {
        SimMichaelList::delete(self, k, p)
    }
}

struct AdvOutcome {
    total_steps: u64,
    inserter_steps: u64,
    ops: u64,
}

/// Run the adversarial schedule with `n` initial keys and `q` processes
/// (`q − 1` inserters + 1 deleter role).
fn run_adversary<L: AdvList>(n: usize, q: usize) -> AdvOutcome {
    assert!(q >= 2);
    let sched = Scheduler::new();
    let list = Arc::new(L::create());

    // Prefill keys 1..=n (not counted in the measured steps: snapshot
    // total after this phase).
    for k in 1..=n as i64 {
        let l = list.clone();
        let op = sched.spawn(move |p| l.insert(k, &p));
        sched.run_to_completion(op.pid());
        op.join();
    }
    let prefill_steps = sched.total_steps();

    // Spawn the q-1 inserters; their keys sit beyond every prefilled key.
    let mut inserters = Vec::new();
    for i in 0..q - 1 {
        let l = list.clone();
        let key = (n as i64) * 1000 + i as i64 + 1;
        inserters.push(sched.spawn(move |p| l.insert(key, &p)));
    }

    // Rounds: pause every inserter right before its insertion C&S, then
    // delete the current last node to completion.
    for round in 0..n {
        for ins in &inserters {
            if round > 0 {
                // Execute the C&S the adversary doomed last round; the
                // process then recovers (backlinks) or restarts (from
                // the head) and walks to its next insertion attempt.
                sched.grant(ins.pid(), 1);
            }
            let paused = sched.run_until_pending(ins.pid(), |k| k == StepKind::CasInsert);
            assert!(paused, "inserter finished early (round {round})");
        }
        let last_key = (n - round) as i64;
        let l = list.clone();
        let del = sched.spawn(move |p| l.delete(last_key, &p));
        sched.run_to_completion(del.pid());
        assert!(del.join(), "adversary failed to delete key {last_key}");
    }

    // Let the inserters finish on the now-empty list.
    let mut inserter_steps = 0;
    for ins in inserters {
        sched.run_to_completion(ins.pid());
        inserter_steps += sched.steps(ins.pid());
        assert!(ins.join(), "inserter ultimately failed");
    }

    AdvOutcome {
        total_steps: sched.total_steps() - prefill_steps,
        inserter_steps,
        ops: (q - 1) as u64 + n as u64,
    }
}

/// Print the comparison table.
pub fn run(quick: bool) {
    println!("E2: Section 3.1 adversarial schedule — Harris vs Fomitchev-Ruppert");
    println!("    q-1 inserters paused before their C&S; deleter removes their");
    println!("    predecessor each round. steps/op = total essential steps / ops.\n");

    let ns: &[usize] = if quick {
        &[16, 32, 64]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let qs: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };

    let mut table = Table::new([
        "n",
        "q",
        "harris ins",
        "michael ins",
        "fr ins",
        "harris/fr",
        "michael/fr",
        "harris steps/op",
        "michael steps/op",
        "fr steps/op",
    ]);
    for &q in qs {
        for &n in ns {
            let h = run_adversary::<SimHarrisList>(n, q);
            let m = run_adversary::<SimMichaelList>(n, q);
            let f = run_adversary::<SimFrList>(n, q);
            table.row([
                n.to_string(),
                q.to_string(),
                h.inserter_steps.to_string(),
                m.inserter_steps.to_string(),
                f.inserter_steps.to_string(),
                fmt_f(h.inserter_steps as f64 / f.inserter_steps.max(1) as f64),
                fmt_f(m.inserter_steps as f64 / f.inserter_steps.max(1) as f64),
                fmt_f(h.total_steps as f64 / h.ops as f64),
                fmt_f(m.total_steps as f64 / m.ops as f64),
                fmt_f(f.total_steps as f64 / f.ops as f64),
            ]);
        }
    }
    print!("{table}");
    println!(
        "\npaper claim: Harris- and Michael-style inserters re-search the whole \
         list every round (quadratic growth in n); FR inserters recover via \
         backlinks (linear). Both ratio columns should grow with n."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_visible_at_small_sizes() {
        let h = run_adversary::<SimHarrisList>(24, 3);
        let f = run_adversary::<SimFrList>(24, 3);
        assert!(
            h.inserter_steps > 3 * f.inserter_steps,
            "harris {} vs fr {}",
            h.inserter_steps,
            f.inserter_steps
        );
    }

    #[test]
    fn inserter_cost_grows_quadratically_for_harris_only() {
        let h1 = run_adversary::<SimHarrisList>(16, 2);
        let h2 = run_adversary::<SimHarrisList>(32, 2);
        let f1 = run_adversary::<SimFrList>(16, 2);
        let f2 = run_adversary::<SimFrList>(32, 2);
        let h_growth = h2.inserter_steps as f64 / h1.inserter_steps as f64;
        let f_growth = f2.inserter_steps as f64 / f1.inserter_steps as f64;
        // Doubling n should ~4x Harris's inserter work but ~2x or less FR's.
        assert!(h_growth > 3.0, "harris growth {h_growth}");
        assert!(f_growth < 3.0, "fr growth {f_growth}");
    }
}
