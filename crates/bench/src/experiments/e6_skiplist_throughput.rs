//! E6 — skip list throughput: FR vs restart-based vs lock-based.
//!
//! The skip list comparison the paper's §2 frames qualitatively:
//! backlink recovery (ours) vs Fraser/Harris-style restart-from-top vs
//! a reader-writer-locked Pugh skip list.

use lf_baselines::{LockSkipList, RestartSkipList};
use lf_core::SkipList;
use lf_workloads::{KeyDist, Mix};

use crate::adapters::BenchMap;
use crate::runner::{run_mixed, RunConfig, RunResult};
use crate::table::{fmt_f, Table};

fn measure<M: BenchMap>(threads: usize, ops: u64, mix: Mix) -> RunResult {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix,
        dist: KeyDist::Uniform { space: 8192 },
        seed: 0xE6,
        prefill: 2048,
    };
    run_mixed::<M>(&cfg)
}

/// Print the throughput tables and emit `BENCH_e6.json`.
pub fn run(quick: bool) {
    println!("E6: skip list throughput (kops/s), key space 8192, prefill 2048\n");
    let ops: u64 = if quick { 5_000 } else { 30_000 };
    let threads: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut rows: Vec<String> = Vec::new();
    for mix in [Mix::READ_HEAVY, Mix::UPDATE_HEAVY] {
        let mut table = Table::new([
            "threads",
            "fr-skiplist",
            "restart-skiplist",
            "lock-skiplist",
        ]);
        for &t in threads {
            let results = [
                ("fr-skiplist", measure::<SkipList<u64, u64>>(t, ops, mix)),
                (
                    "restart-skiplist",
                    measure::<RestartSkipList<u64, u64>>(t, ops, mix),
                ),
                (
                    "lock-skiplist",
                    measure::<LockSkipList<u64, u64>>(t, ops, mix),
                ),
            ];
            let mut cells = vec![t.to_string()];
            for (name, res) in &results {
                cells.push(fmt_f(res.throughput() / 1.0e3));
                rows.push(super::artifact_row("e6", name, &mix.label(), t, res));
            }
            table.row(cells);
        }
        println!("mix {}:", mix.label());
        print!("{table}");
        println!();
    }
    super::write_bench_artifact("e6", quick, &rows);
    println!(
        "expected shape: both lock-free designs beat the global RwLock on\n\
         update-heavy mixes as threads grow; FR avoids restart penalties\n\
         under contention."
    );
}
