//! One module per experiment of `DESIGN.md` §5.
//!
//! Each module exposes `run(quick: bool)` which prints its table(s) to
//! stdout. `quick` shrinks problem sizes so `experiments all` finishes
//! in minutes; the full sizes are what `EXPERIMENTS.md` records.

use std::path::PathBuf;

use crate::runner::RunResult;

pub mod e10_additivity;
pub mod e11_lock_freedom;
pub mod e12_tower_census;
pub mod e13_shard_scaling;
pub mod e14_smr_matrix;
pub mod e15_map_vs_shard;
pub mod e16_server_loopback;
pub mod e1_deletion_trace;
pub mod e2_adversarial;
pub mod e3_amortized;
pub mod e4_list_throughput;
pub mod e5_search_cost;
pub mod e6_skiplist_throughput;
pub mod e7_async_service;
pub mod e8_flag_ablation;
pub mod e9_cas_breakdown;

/// Run one experiment by id (`"e1"` … `"e16"` or `"all"`).
///
/// Returns `false` if the id is unknown.
pub fn dispatch(id: &str, quick: bool) -> bool {
    match id {
        "e1" => e1_deletion_trace::run(quick),
        "e2" => e2_adversarial::run(quick),
        "e3" => e3_amortized::run(quick),
        "e4" => e4_list_throughput::run(quick),
        "e5" => e5_search_cost::run(quick),
        "e6" => e6_skiplist_throughput::run(quick),
        "e7" => e7_async_service::run(quick),
        "e8" => e8_flag_ablation::run(quick),
        "e9" => e9_cas_breakdown::run(quick),
        "e10" => e10_additivity::run(quick),
        "e11" => e11_lock_freedom::run(quick),
        "e12" => e12_tower_census::run(quick),
        "e13" => e13_shard_scaling::run(quick),
        "e14" => e14_smr_matrix::run(quick),
        "e15" => e15_map_vs_shard::run(quick),
        "e16" => e16_server_loopback::run(quick),
        "all" => {
            for id in [
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
                "e14", "e15", "e16",
            ] {
                assert!(dispatch(id, quick));
                println!();
            }
        }
        _ => return false,
    }
    true
}

/// Serialize one measured run as a benchmark-artifact row: identity
/// fields, throughput, and the telemetry distributions (latency
/// p50/p99 surfaced at top level; full histograms nested).
pub(crate) fn artifact_row(
    experiment: &str,
    structure: &str,
    mix: &str,
    threads: usize,
    res: &RunResult,
) -> String {
    use lf_metrics::export::{histogram_json, JsonObj};
    let lat = res.telemetry.op_latency_ns();
    let mut obj = JsonObj::new()
        .field_str("experiment", experiment)
        .field_str("impl", structure)
        .field_str("mix", mix)
        .field_u64("threads", threads as u64)
        .field_u64("ops", res.ops)
        .field_f64("throughput_ops_per_s", res.throughput())
        .field_f64("steps_per_op", res.steps_per_op());
    if let Some(peak) = res.peak_unreclaimed {
        obj = obj.field_u64("peak_unreclaimed", peak);
    }
    // Pin-free read health: zero on backends without pin-free reads.
    let c = &res.telemetry.counters;
    if c.try_read_restarts > 0 || c.try_read_fallbacks > 0 {
        obj = obj
            .field_u64("try_read_restarts", c.try_read_restarts)
            .field_u64("try_read_fallbacks", c.try_read_fallbacks);
    }
    obj.field_u64("latency_p50_ns", lat.p50())
        .field_u64("latency_p99_ns", lat.p99())
        .field_raw("latency_ns", &histogram_json(lat))
        .field_raw("cas_retries", &histogram_json(res.telemetry.cas_retries()))
        .field_raw(
            "backlink_chain",
            &histogram_json(res.telemetry.backlink_chain()),
        )
        .field_raw("search_hops", &histogram_json(res.telemetry.search_hops()))
        .finish()
}

/// Write collected rows as `BENCH_<id>.json` in the working directory
/// (one JSON object: run metadata plus a `rows` array). Failure to
/// write is reported but never fails the experiment.
pub(crate) fn write_bench_artifact(id: &str, quick: bool, rows: &[String]) {
    let path = PathBuf::from(format!("BENCH_{id}.json"));
    let body = format!(
        "{{\"experiment\":\"{id}\",\"sizes\":\"{}\",\"rows\":[{}]}}",
        if quick { "quick" } else { "full" },
        rows.join(",")
    );
    match lf_metrics::export::write_artifact(&path, &body) {
        Ok(()) => println!("wrote {} ({} rows)", path.display(), rows.len()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
