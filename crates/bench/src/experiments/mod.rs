//! One module per experiment of `DESIGN.md` §5.
//!
//! Each module exposes `run(quick: bool)` which prints its table(s) to
//! stdout. `quick` shrinks problem sizes so `experiments all` finishes
//! in minutes; the full sizes are what `EXPERIMENTS.md` records.

pub mod e1_deletion_trace;
pub mod e2_adversarial;
pub mod e3_amortized;
pub mod e4_list_throughput;
pub mod e5_search_cost;
pub mod e6_skiplist_throughput;
pub mod e7_tower_census;
pub mod e8_flag_ablation;
pub mod e9_cas_breakdown;
pub mod e10_additivity;
pub mod e11_lock_freedom;

/// Run one experiment by id (`"e1"` … `"e11"` or `"all"`).
///
/// Returns `false` if the id is unknown.
pub fn dispatch(id: &str, quick: bool) -> bool {
    match id {
        "e1" => e1_deletion_trace::run(quick),
        "e2" => e2_adversarial::run(quick),
        "e3" => e3_amortized::run(quick),
        "e4" => e4_list_throughput::run(quick),
        "e5" => e5_search_cost::run(quick),
        "e6" => e6_skiplist_throughput::run(quick),
        "e7" => e7_tower_census::run(quick),
        "e8" => e8_flag_ablation::run(quick),
        "e9" => e9_cas_breakdown::run(quick),
        "e10" => e10_additivity::run(quick),
        "e11" => e11_lock_freedom::run(quick),
        "all" => {
            for id in [
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
            ] {
                assert!(dispatch(id, quick));
                println!();
            }
        }
        _ => return false,
    }
    true
}
