//! E4 — list throughput: FR vs Harris vs no-flag vs lock-based lists.
//!
//! The §2 comparison made empirical: operations per second under two
//! standard mixes across thread counts. Lock-free lists should hold or
//! improve throughput as threads grow; the coarse lock serializes.

use lf_baselines::{CoarseLockList, HarrisList, HohLockList, MichaelList, NoFlagList};
use lf_core::FrList;
use lf_workloads::{KeyDist, Mix};

use crate::adapters::BenchMap;
use crate::runner::{run_mixed, RunConfig, RunResult};
use crate::table::{fmt_f, Table};

fn measure<M: BenchMap>(threads: usize, ops: u64, mix: Mix) -> RunResult {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix,
        dist: KeyDist::Uniform { space: 512 },
        seed: 0xE4,
        prefill: 128,
    };
    run_mixed::<M>(&cfg)
}

/// Print the throughput tables and emit `BENCH_e4.json`.
pub fn run(quick: bool) {
    println!("E4: list throughput (kops/s), key space 512, prefill 128\n");
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let threads: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut rows: Vec<String> = Vec::new();
    for mix in [Mix::READ_HEAVY, Mix::UPDATE_HEAVY] {
        let mut table = Table::new([
            "threads",
            "fr-list",
            "harris-list",
            "michael-list",
            "noflag-list",
            "coarse-lock",
            "hoh-lock",
        ]);
        for &t in threads {
            let results = [
                ("fr-list", measure::<FrList<u64, u64>>(t, ops, mix)),
                ("harris-list", measure::<HarrisList<u64, u64>>(t, ops, mix)),
                (
                    "michael-list",
                    measure::<MichaelList<u64, u64>>(t, ops, mix),
                ),
                ("noflag-list", measure::<NoFlagList<u64, u64>>(t, ops, mix)),
                (
                    "coarse-lock",
                    measure::<CoarseLockList<u64, u64>>(t, ops, mix),
                ),
                ("hoh-lock", measure::<HohLockList<u64, u64>>(t, ops, mix)),
            ];
            let mut cells = vec![t.to_string()];
            for (name, res) in &results {
                cells.push(fmt_f(res.throughput() / 1.0e3));
                rows.push(super::artifact_row("e4", name, &mix.label(), t, res));
            }
            table.row(cells);
        }
        println!("mix {}:", mix.label());
        print!("{table}");
        println!();
    }
    super::write_bench_artifact("e4", quick, &rows);
    println!(
        "expected shape: lock-free lists stay competitive as threads grow;\n\
         hand-over-hand locking pays per-node lock cost; the coarse lock\n\
         serializes entirely. (Single-core machines show contention via\n\
         preemption rather than parallelism.)"
    );
}
