//! E4 — list throughput: FR vs Harris vs no-flag vs lock-based lists.
//!
//! The §2 comparison made empirical: operations per second under two
//! standard mixes across thread counts. Lock-free lists should hold or
//! improve throughput as threads grow; the coarse lock serializes.

use lf_baselines::{CoarseLockList, HarrisList, HohLockList, MichaelList, NoFlagList};
use lf_core::FrList;
use lf_workloads::{KeyDist, Mix};

use crate::adapters::BenchMap;
use crate::runner::{run_mixed, RunConfig};
use crate::table::{fmt_f, Table};

fn measure<M: BenchMap>(threads: usize, ops: u64, mix: Mix) -> f64 {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix,
        dist: KeyDist::Uniform { space: 512 },
        seed: 0xE4,
        prefill: 128,
    };
    run_mixed::<M>(&cfg).throughput() / 1.0e3
}

/// Print the throughput tables.
pub fn run(quick: bool) {
    println!("E4: list throughput (kops/s), key space 512, prefill 128\n");
    let ops: u64 = if quick { 3_000 } else { 20_000 };
    let threads: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    for mix in [Mix::READ_HEAVY, Mix::UPDATE_HEAVY] {
        let mut table = Table::new([
            "threads",
            "fr-list",
            "harris-list",
            "michael-list",
            "noflag-list",
            "coarse-lock",
            "hoh-lock",
        ]);
        for &t in threads {
            table.row([
                t.to_string(),
                fmt_f(measure::<FrList<u64, u64>>(t, ops, mix)),
                fmt_f(measure::<HarrisList<u64, u64>>(t, ops, mix)),
                fmt_f(measure::<MichaelList<u64, u64>>(t, ops, mix)),
                fmt_f(measure::<NoFlagList<u64, u64>>(t, ops, mix)),
                fmt_f(measure::<CoarseLockList<u64, u64>>(t, ops, mix)),
                fmt_f(measure::<HohLockList<u64, u64>>(t, ops, mix)),
            ]);
        }
        println!("mix {}:", mix.label());
        print!("{table}");
        println!();
    }
    println!(
        "expected shape: lock-free lists stay competitive as threads grow;\n\
         hand-over-hand locking pays per-node lock cost; the coarse lock\n\
         serializes entirely. (Single-core machines show contention via\n\
         preemption rather than parallelism.)"
    );
}
