//! E14 — cross-SMR matrix: the same skip list over EBR, hazard eras,
//! and VBR.
//!
//! The structures are generic over [`lf_reclaim::Reclaim`]; this
//! experiment measures what the backend choice actually buys. Two
//! questions:
//!
//! * **Throughput** — read-heavy (s80) and update-heavy mixes across a
//!   thread sweep. VBR's pin-free `try_read` skips the reclamation
//!   handshake entirely on the read path, so the read-heavy column is
//!   where it should pull ahead of EBR as threads (and thus epoch
//!   traffic) grow; eras pay one era announcement per pin, like EBR
//!   but on a different consensus path.
//!
//! * **Peak unreclaimed memory under a stalled reader** — the classic
//!   failure mode of epoch schemes: one reader parked inside a guard
//!   freezes the epoch, and every concurrent removal accumulates
//!   unreclaimed. VBR readers hold *nothing* (reads validate birth
//!   stamps instead of pinning), so a stalled VBR reader leaves
//!   reclamation untouched and peak garbage stays bounded by the
//!   in-flight churn window. The scenario parks one reader
//!   mid-traversal (pinned backends: a live iterator guard; VBR: a
//!   thread stalled between pin-free reads) while two churners
//!   insert/remove, then reports each backend's gauge.
//!
//! Emits `BENCH_e14.json`: throughput rows (with `peak_unreclaimed`
//! per run) plus one `stalled-reader` row per backend.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use lf_core::{SkipList, SkipListHandle};
use lf_hazard::Hp;
use lf_reclaim::{Ebr, Publish, Reclaim};
use lf_vbr::Vbr;
use lf_workloads::{KeyDist, Mix};

use crate::adapters::{BenchMap, MapHandle};
use crate::runner::{run_mixed, RunConfig, RunResult};
use crate::table::{fmt_f, Table};

/// The FR skip list pinned to one SMR backend, with lookups routed
/// through the pin-free [`SkipListHandle::try_read`] entry point (a
/// pinned `get` on backends without pin-free reads).
struct SmrMap<R>(SkipList<u64, u64, R>)
where
    R: Reclaim + Publish<u64> + 'static;

struct SmrHandle<'a, R>(SkipListHandle<'a, u64, u64, R>)
where
    R: Reclaim + Publish<u64> + 'static;

impl<R> BenchMap for SmrMap<R>
where
    R: Reclaim + Publish<u64> + 'static,
{
    type Handle<'a> = SmrHandle<'a, R>;

    fn create() -> Self {
        SmrMap(SkipList::with_backend())
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        SmrHandle(self.0.handle())
    }

    fn name() -> &'static str {
        match R::NAME {
            "ebr" => "fr-skiplist-ebr",
            "hp" => "fr-skiplist-hp",
            "vbr" => "fr-skiplist-vbr",
            _ => "fr-skiplist-smr",
        }
    }

    fn peak_unreclaimed(&self) -> Option<u64> {
        Some(R::gauge(self.0.domain()).peak_unreclaimed())
    }
}

impl<R> MapHandle for SmrHandle<'_, R>
where
    R: Reclaim + Publish<u64> + 'static,
{
    fn insert(&self, k: u64) -> bool {
        self.0.insert(k, k).is_ok()
    }

    fn remove(&self, k: u64) -> bool {
        self.0.remove(&k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        self.0.try_read(&k).is_some()
    }
}

/// Repetitions per throughput cell; the median-throughput run is
/// reported. Cross-backend ratios on an oversubscribed box are
/// otherwise dominated by scheduler noise.
const REPS: usize = 5;

fn measure<M: BenchMap>(threads: usize, ops: u64, mix: Mix) -> RunResult {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix,
        dist: KeyDist::Uniform { space: 8192 },
        seed: 0xE14,
        prefill: 2048,
    };
    let mut runs: Vec<RunResult> = (0..REPS).map(|_| run_mixed::<M>(&cfg)).collect();
    runs.sort_by(|a, b| a.throughput().total_cmp(&b.throughput()));
    runs.swap_remove(REPS / 2)
}

/// Outcome of one stalled-reader scenario.
struct StalledOutcome {
    /// Gauge high-water mark while the reader was parked.
    peak: u64,
    /// High-water mark of an identical churn with *no* reader at all:
    /// the backend-intrinsic drain lag. `peak - no_reader_peak` is the
    /// garbage attributable to the stalled reader.
    no_reader_peak: u64,
    /// Unreclaimed objects after the reader resumed and the churners
    /// drained reclamation.
    after_drain: u64,
    /// Towers retired by the churn (scenario size sanity check).
    retired: u64,
}

/// Run the churn with an optional parked reader; returns the gauge
/// high-water mark.
///
/// Pinned backends model the stall as a live traversal guard (an
/// iterator held mid-iteration); VBR models it as a thread stalled
/// between pin-free reads — which is the honest analog, because a VBR
/// read holds no domain state at any point.
fn churn<R>(churn_ops: u64, stall_reader: bool) -> (SkipList<u64, u64, R>, u64)
where
    R: Reclaim + Publish<u64> + 'static,
{
    const PREFILL: u64 = 512;
    let map: SkipList<u64, u64, R> = SkipList::with_backend();
    let setup = map.handle();
    for k in 0..PREFILL {
        // Odd keys are churn fodder; even keys give the reader
        // something to be stalled over.
        setup.insert(k, k).ok();
    }
    drop(setup);
    let ready = Barrier::new(if stall_reader { 2 } else { 1 });
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        if stall_reader {
            s.spawn(|| {
                let h = map.handle();
                if R::PIN_FREE_READS {
                    // A pin-free read validates birth stamps and holds
                    // no guard; a reader stalled between reads retains
                    // nothing the collector must wait for.
                    let _ = h.try_read(&0);
                    ready.wait();
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                } else {
                    // Stall mid-traversal: the iterator owns a live
                    // guard for as long as it exists.
                    let mut iter = h.iter();
                    let _ = iter.next();
                    ready.wait();
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                    drop(iter);
                }
            });
        }
        ready.wait();
        // Two churners remove/re-insert disjoint keys while the reader
        // is parked; every remove retires a tower into the domain.
        std::thread::scope(|cs| {
            for t in 0..2u64 {
                let map = &map;
                cs.spawn(move || {
                    let h = map.handle();
                    let base = 10_000 + t * 1_000_000;
                    for i in 0..churn_ops {
                        let k = base + (i % 997);
                        h.insert(k, k).ok();
                        h.remove(&k);
                        // Churners cooperate with reclamation: the
                        // periodic flush makes the scenario a test of
                        // the *backend's* stalled-reader sensitivity,
                        // not of drain cadence. EBR/eras still cannot
                        // advance past the parked guard; VBR has
                        // nothing to wait for.
                        if i % 64 == 63 {
                            h.flush_reclamation();
                        }
                    }
                });
            }
        });
        stop.store(true, Ordering::Relaxed);
    });
    let peak = R::gauge(map.domain()).peak_unreclaimed();
    (map, peak)
}

/// Park one reader mid-read while two churners insert/remove disjoint
/// keys, then release it and drain; also run the identical churn with
/// no reader as the drain-lag control.
fn stalled_reader<R>(churn_ops: u64) -> StalledOutcome
where
    R: Reclaim + Publish<u64> + 'static,
{
    let (_control, no_reader_peak) = churn::<R>(churn_ops, false);
    let (map, peak) = churn::<R>(churn_ops, true);
    // Reader released: bounded flushing must now drain everything.
    let h = map.handle();
    for _ in 0..64 {
        h.flush_reclamation();
        if R::gauge(map.domain()).unreclaimed() == 0 {
            break;
        }
    }
    let snap = R::gauge(map.domain()).snapshot();
    StalledOutcome {
        peak,
        no_reader_peak,
        after_drain: snap.unreclaimed,
        retired: snap.retired,
    }
}

/// One artifact row for the stalled-reader scenario.
fn stalled_row(name: &str, ops: u64, out: &StalledOutcome) -> String {
    lf_metrics::export::JsonObj::new()
        .field_str("experiment", "e14")
        .field_str("impl", name)
        .field_str("mix", "stalled-reader")
        .field_u64("threads", 2)
        .field_u64("ops", ops)
        .field_u64("retired", out.retired)
        .field_u64("peak_unreclaimed", out.peak)
        .field_u64("no_reader_peak_unreclaimed", out.no_reader_peak)
        .field_u64("after_drain_unreclaimed", out.after_drain)
        .finish()
}

/// Print the cross-SMR matrix and emit `BENCH_e14.json`.
pub fn run(quick: bool) {
    println!(
        "E14: cross-SMR matrix — FR skip list over EBR / hazard eras / VBR\n\
         (kops/s), uniform keys, space 8192, prefill 2048; lookups via\n\
         the pin-free try_read entry point\n"
    );
    let ops: u64 = if quick { 5_000 } else { 60_000 };
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut rows: Vec<String> = Vec::new();
    let mut vbr_vs_ebr: Vec<(usize, f64)> = Vec::new();
    let mut vbr_read_health: Vec<(String, usize, u64, u64)> = Vec::new();
    for mix in [Mix::READ_HEAVY, Mix::UPDATE_HEAVY] {
        let label = mix.label();
        let mut table = Table::new([
            "threads",
            "fr-skiplist-ebr",
            "fr-skiplist-hp",
            "fr-skiplist-vbr",
        ]);
        for &t in threads {
            let results = [
                ("fr-skiplist-ebr", measure::<SmrMap<Ebr>>(t, ops, mix)),
                ("fr-skiplist-hp", measure::<SmrMap<Hp>>(t, ops, mix)),
                ("fr-skiplist-vbr", measure::<SmrMap<Vbr>>(t, ops, mix)),
            ];
            if mix.search == Mix::READ_HEAVY.search {
                vbr_vs_ebr.push((
                    t,
                    results[2].1.throughput() / results[0].1.throughput().max(f64::MIN_POSITIVE),
                ));
            }
            let mut cells = vec![t.to_string()];
            for (name, res) in &results {
                cells.push(fmt_f(res.throughput() / 1.0e3));
                rows.push(super::artifact_row("e14", name, &label, t, res));
            }
            table.row(cells);
            let vbr = &results[2].1.telemetry.counters;
            vbr_read_health.push((
                label.clone(),
                t,
                vbr.try_read_restarts,
                vbr.try_read_fallbacks,
            ));
        }
        println!("mix {label}:");
        print!("{table}");
        println!();
    }

    let churn_ops: u64 = if quick { 4_000 } else { 20_000 };
    println!(
        "stalled reader: one parked reader, two churners x {churn_ops} \n\
         insert+remove pairs; peak-no-reader is the same churn with no\n\
         reader at all (backend-intrinsic drain lag):\n"
    );
    let mut table = Table::new([
        "backend",
        "retired",
        "peak-stalled",
        "peak-no-reader",
        "after-drain",
    ]);
    for (name, out) in [
        ("fr-skiplist-ebr", stalled_reader::<Ebr>(churn_ops)),
        ("fr-skiplist-hp", stalled_reader::<Hp>(churn_ops)),
        ("fr-skiplist-vbr", stalled_reader::<Vbr>(churn_ops)),
    ] {
        table.row(vec![
            name.to_string(),
            out.retired.to_string(),
            out.peak.to_string(),
            out.no_reader_peak.to_string(),
            out.after_drain.to_string(),
        ]);
        rows.push(stalled_row(name, churn_ops, &out));
    }
    print!("{table}");
    println!();

    super::write_bench_artifact("e14", quick, &rows);
    println!("vbr pin-free read health (validation restarts / pinned fallbacks):");
    for (label, t, restarts, fallbacks) in &vbr_read_health {
        println!("  {label} @ {t} threads: restarts={restarts} fallbacks={fallbacks}");
    }
    println!();
    for (t, ratio) in &vbr_vs_ebr {
        println!("vbr/ebr read-heavy throughput at {t} threads: {ratio:.2}x");
    }
    println!(
        "expected shape: vbr >= ebr on s80 at 1 thread and ahead from 4\n\
         threads (reads skip the epoch handshake); under the stalled\n\
         reader, ebr/hp peak-stalled equals everything retired (the\n\
         parked guard freezes the epoch) while vbr's peak matches its\n\
         no-reader control (its readers pin nothing), and everything\n\
         drains once the reader resumes."
    );
}
