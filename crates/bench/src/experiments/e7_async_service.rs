//! E7 — closed-loop async serving (`lf-async` over list and skip list).
//!
//! The paper's amortized bound is per *operation*; the serving façade
//! claims batching preserves it end-to-end (DESIGN.md §10): a lane
//! worker drains up to `batch_max` requests under one epoch
//! announcement, so the per-request overhead of the async layer is one
//! ring round-trip plus an amortized pin share. This experiment drives
//! the service closed-loop — D driver threads, each multiplexing T
//! in-flight request tasks on the hand-rolled `lf_sched::rt` executor —
//! and reports service throughput and the enqueue-to-complete latency
//! distribution recorded by the service's own `lf-metrics` histograms.
//!
//! Emits `BENCH_e7.json`: one row per (structure, workers) with
//! throughput, e2c p50/p99, and the full nested histograms.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::time::Instant;

use lf_async::{AsyncBackend, Service, ServiceBuilder, ServiceSnapshot};
use lf_core::{FrList, SkipList};
use lf_metrics::export::{histogram_json, JsonObj};
use lf_sched::rt;
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

use crate::table::{fmt_f, Table};

use super::write_bench_artifact;

/// Drive `service` closed-loop and return (elapsed seconds, snapshot).
///
/// Every request is awaited (Block policy, nothing sheds), so the
/// submitted count *is* the completed count.
fn drive<B>(
    service: Arc<Service<B>>,
    drivers: usize,
    tasks_per_driver: usize,
    ops_per_task: u64,
    space: u64,
) -> (f64, ServiceSnapshot)
where
    B: AsyncBackend<Key = u64, Value = u64>,
{
    let started = Instant::now();
    let threads: Vec<_> = (0..drivers)
        .map(|d| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let futs: Vec<Pin<Box<dyn Future<Output = ()> + Send>>> = (0..tasks_per_driver)
                    .map(|t| -> Pin<Box<dyn Future<Output = ()> + Send>> {
                        let service = Arc::clone(&service);
                        Box::pin(async move {
                            let seed = 0xE700_0000u64 | ((d as u64) << 16) | t as u64;
                            let mut w = WorkloadIter::new(
                                Mix::READ_HEAVY,
                                KeyDist::Uniform { space },
                                seed,
                            );
                            for _ in 0..ops_per_task {
                                let op = w.next_op();
                                let r = match op.kind {
                                    OpKind::Insert => service.insert(op.key, op.key).await,
                                    OpKind::Remove => service.remove(op.key).await,
                                    OpKind::Search => service.get(op.key).await,
                                };
                                r.expect("closed-loop op never fails before shutdown");
                            }
                        })
                    })
                    .collect();
                rt::run_all(futs);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    (elapsed, service.metrics())
}

struct Config {
    structure: &'static str,
    workers: usize,
}

/// Print the serving table and write `BENCH_e7.json`.
pub fn run(quick: bool) {
    println!("E7: closed-loop async serving throughput & latency (read-heavy)\n");
    // Quick mode keeps the load *shape* (drivers × in-flight tasks) and
    // only cuts ops per task, so bench_gate.sh can compare a quick run
    // against the committed full-size baseline row-for-row.
    let drivers = 4;
    let tasks_per_driver = 64;
    let ops_per_task: u64 = if quick { 150 } else { 1_000 };
    let space: u64 = 4_096;
    let total = (drivers * tasks_per_driver) as u64 * ops_per_task;

    let configs = [
        Config {
            structure: "fr-list",
            workers: 1,
        },
        Config {
            structure: "fr-list",
            workers: 2,
        },
        Config {
            structure: "fr-skiplist",
            workers: 1,
        },
        Config {
            structure: "fr-skiplist",
            workers: 2,
        },
        Config {
            structure: "fr-skiplist",
            workers: 4,
        },
    ];

    let mut table = Table::new([
        "impl",
        "workers",
        "drivers×tasks",
        "Mops/s",
        "e2c p50 µs",
        "e2c p99 µs",
        "mean batch",
    ]);
    let mut rows = Vec::new();

    for cfg in &configs {
        let builder = ServiceBuilder::new()
            .workers(cfg.workers)
            .queue_capacity(1_024)
            .batch_max(64);
        // Prepopulate half the key space *before* the service exists,
        // so its metrics cover only the measured closed-loop phase.
        let (elapsed, snap) = match cfg.structure {
            "fr-list" => {
                let list = FrList::new();
                {
                    let h = list.handle();
                    for k in (0..space).step_by(2) {
                        let _ = h.insert(k, k);
                    }
                }
                let service = Arc::new(builder.build(list));
                let out = drive(
                    Arc::clone(&service),
                    drivers,
                    tasks_per_driver,
                    ops_per_task,
                    space,
                );
                service.shutdown();
                out
            }
            _ => {
                let sl = SkipList::new();
                {
                    let h = sl.handle();
                    for k in (0..space).step_by(2) {
                        let _ = h.insert(k, k);
                    }
                }
                let service = Arc::new(builder.build(sl));
                let out = drive(
                    Arc::clone(&service),
                    drivers,
                    tasks_per_driver,
                    ops_per_task,
                    space,
                );
                service.shutdown();
                out
            }
        };

        assert_eq!(snap.completed, total, "closed loop lost operations");
        let throughput = total as f64 / elapsed;
        let e2c = &snap.enqueue_to_complete_ns;
        table.row([
            cfg.structure.to_string(),
            cfg.workers.to_string(),
            format!("{drivers}×{tasks_per_driver}"),
            fmt_f(throughput / 1e6),
            fmt_f(e2c.p50() as f64 / 1e3),
            fmt_f(e2c.p99() as f64 / 1e3),
            fmt_f(snap.batch_size.mean()),
        ]);
        rows.push(
            JsonObj::new()
                .field_str("experiment", "e7")
                .field_str("impl", cfg.structure)
                .field_str("mix", "read_heavy")
                .field_u64("drivers", drivers as u64)
                .field_u64("tasks_per_driver", tasks_per_driver as u64)
                .field_u64("workers", cfg.workers as u64)
                .field_u64("ops", total)
                .field_f64("throughput_ops_per_s", throughput)
                .field_u64("e2c_p50_ns", e2c.p50())
                .field_u64("e2c_p99_ns", e2c.p99())
                .field_raw("enqueue_to_complete_ns", &histogram_json(e2c))
                .field_raw("queue_depth", &histogram_json(&snap.queue_depth))
                .field_raw("batch_size", &histogram_json(&snap.batch_size))
                .finish(),
        );
    }

    print!("{table}");
    println!(
        "\nclosed loop: every request awaited; Block policy, so completed == submitted\n\
         (asserted). e2c = enqueue-to-complete, from the service's own histograms."
    );
    write_bench_artifact("e7", quick, &rows);
}
