//! E7 — closed-loop async serving (`lf-async` over list and skip list).
//!
//! The paper's amortized bound is per *operation*; the serving façade
//! claims batching preserves it end-to-end (DESIGN.md §10): a lane
//! worker drains up to `batch_max` requests under one epoch
//! announcement, so the per-request overhead of the async layer is one
//! ring round-trip plus an amortized pin share. This experiment drives
//! the service closed-loop — D driver threads, each multiplexing T
//! in-flight request tasks on the hand-rolled `lf_sched::rt` executor —
//! and reports service throughput and the enqueue-to-complete latency
//! distribution recorded by the service's own `lf-metrics` histograms.
//!
//! A second, **open-loop** section drives the same service at a fixed
//! offered rate with fire-and-forget submission (each future is polled
//! once to enqueue, then detached): unlike the closed loop — whose
//! submitters slow down when the service does — the open loop keeps
//! offering work at the configured rate, so overload actually
//! materializes and the `Reject`/`Shed` backpressure policies earn
//! their keep. Offered load is expressed as a ratio of the service's
//! measured saturation capacity; each (policy, ratio) run reports the
//! shed/reject rate and the enqueue-to-complete tail of the requests
//! that did complete.
//!
//! Emits `BENCH_e7.json`: one row per (structure, workers) for the
//! closed loop plus one row per (policy, offered-ratio) for the open
//! loop, with throughput, e2c p50/p99, and the full nested histograms.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

use lf_async::{
    AsyncBackend, AsyncSkipList, BackpressurePolicy, Service, ServiceBuilder, ServiceSnapshot,
};
use lf_core::{FrList, SkipList};
use lf_metrics::export::{histogram_json, JsonObj};
use lf_sched::rt;
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

use crate::table::{fmt_f, Table};

use super::write_bench_artifact;

/// Drive `service` closed-loop and return (elapsed seconds, snapshot).
///
/// Every request is awaited (Block policy, nothing sheds), so the
/// submitted count *is* the completed count.
fn drive<B>(
    service: Arc<Service<B>>,
    drivers: usize,
    tasks_per_driver: usize,
    ops_per_task: u64,
    space: u64,
) -> (f64, ServiceSnapshot)
where
    B: AsyncBackend<Key = u64, Value = u64>,
{
    let started = Instant::now();
    let threads: Vec<_> = (0..drivers)
        .map(|d| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let futs: Vec<Pin<Box<dyn Future<Output = ()> + Send>>> = (0..tasks_per_driver)
                    .map(|t| -> Pin<Box<dyn Future<Output = ()> + Send>> {
                        let service = Arc::clone(&service);
                        Box::pin(async move {
                            let seed = 0xE700_0000u64 | ((d as u64) << 16) | t as u64;
                            let mut w = WorkloadIter::new(
                                Mix::READ_HEAVY,
                                KeyDist::Uniform { space },
                                seed,
                            );
                            for _ in 0..ops_per_task {
                                let op = w.next_op();
                                let r = match op.kind {
                                    OpKind::Insert => service.insert(op.key, op.key).await,
                                    OpKind::Remove => service.remove(op.key).await,
                                    OpKind::Search => service.get(op.key).await,
                                };
                                r.expect("closed-loop op never fails before shutdown");
                            }
                        })
                    })
                    .collect();
                rt::run_all(futs);
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    (elapsed, service.metrics())
}

struct Config {
    structure: &'static str,
    workers: usize,
}

/// Poll a future exactly once with a no-op waker (fire-and-forget: the
/// first poll enqueues the request; the detached op then completes —
/// or is shed — without anyone awaiting it).
fn poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
    let mut cx = Context::from_waker(std::task::Waker::noop());
    Pin::new(fut).poll(&mut cx)
}

/// Build a prefilled skip-list service for the open-loop runs.
fn open_loop_service(
    workers: usize,
    queue_capacity: usize,
    policy: BackpressurePolicy,
    space: u64,
) -> AsyncSkipList<u64, u64> {
    let sl = SkipList::new();
    {
        let h = sl.handle();
        for k in (0..space).step_by(2) {
            let _ = h.insert(k, k);
        }
    }
    ServiceBuilder::new()
        .workers(workers)
        .queue_capacity(queue_capacity)
        .batch_max(64)
        .policy(policy)
        .build(sl)
}

/// Submit `offered` fire-and-forget requests at `rate` ops/s, wait for
/// the queue to drain, and return (elapsed submit seconds, snapshot).
///
/// Pacing is deadline-based: each submission waits for its slot on the
/// fixed-rate schedule, so a slow service does **not** slow the
/// submitter down — the definition of an open loop. Rejected
/// submissions still consume their slot (the client "sent" that
/// request; the service refused it).
fn drive_open_loop<B>(
    service: &Service<B>,
    offered: u64,
    rate: f64,
    space: u64,
) -> (f64, ServiceSnapshot)
where
    B: AsyncBackend<Key = u64, Value = u64>,
{
    let mut w = WorkloadIter::new(Mix::READ_HEAVY, KeyDist::Uniform { space }, 0xE7_0B);
    let interval = Duration::from_secs_f64(1.0 / rate);
    let started = Instant::now();
    let mut next = started;
    for _ in 0..offered {
        while Instant::now() < next {
            std::hint::spin_loop();
        }
        next += interval;
        let op = w.next_op();
        match op.kind {
            OpKind::Insert => {
                let mut f = service.insert(op.key, op.key);
                let _ = poll_once(&mut f);
            }
            OpKind::Remove => {
                let mut f = service.remove(op.key);
                let _ = poll_once(&mut f);
            }
            OpKind::Search => {
                let mut f = service.get(op.key);
                let _ = poll_once(&mut f);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    // Drain: sheds happen at submission time, so once submission stops
    // the remaining enqueued requests simply complete.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let m = service.metrics();
        if m.completed + m.shed >= m.enqueued || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    (elapsed, service.metrics())
}

/// Measure the service's saturation capacity (completed ops/s) with an
/// unpaced fire-and-forget burst under `Shed` (submission never blocks
/// or fails, so the workers run flat out the whole burst).
fn probe_capacity(workers: usize, queue_capacity: usize, space: u64, burst: u64) -> f64 {
    let service = open_loop_service(workers, queue_capacity, BackpressurePolicy::Shed, space);
    let mut w = WorkloadIter::new(Mix::READ_HEAVY, KeyDist::Uniform { space }, 0xE7_0A);
    let started = Instant::now();
    for _ in 0..burst {
        let op = w.next_op();
        let mut f = service.get(op.key);
        let _ = poll_once(&mut f);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let m = service.metrics();
        if m.completed + m.shed >= m.enqueued || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let completed = service.metrics().completed;
    let elapsed = started.elapsed().as_secs_f64();
    service.shutdown();
    (completed as f64 / elapsed).max(1.0)
}

/// Print the serving table and write `BENCH_e7.json`.
pub fn run(quick: bool) {
    println!("E7: closed-loop async serving throughput & latency (read-heavy)\n");
    // Flight-recorder hook for the CI smoke job: with LF_TRACE_DUMP
    // set, the whole run is traced and the merged rings are dumped at
    // the end, so `lf-trace check` can audit a real serving workload
    // end-to-end. Perf rows from a traced run are not comparable to
    // the committed baselines — the bench gate never sets this.
    let trace_dump = lf_trace::recorder::env_dump_path();
    if trace_dump.is_some() {
        lf_trace::enable();
    }
    // Quick mode keeps the load *shape* (drivers × in-flight tasks) and
    // only cuts ops per task, so bench_gate.sh can compare a quick run
    // against the committed full-size baseline row-for-row.
    let drivers = 4;
    let tasks_per_driver = 64;
    let ops_per_task: u64 = if quick { 150 } else { 1_000 };
    let space: u64 = 4_096;
    let total = (drivers * tasks_per_driver) as u64 * ops_per_task;

    let configs = [
        Config {
            structure: "fr-list",
            workers: 1,
        },
        Config {
            structure: "fr-list",
            workers: 2,
        },
        Config {
            structure: "fr-skiplist",
            workers: 1,
        },
        Config {
            structure: "fr-skiplist",
            workers: 2,
        },
        Config {
            structure: "fr-skiplist",
            workers: 4,
        },
    ];

    let mut table = Table::new([
        "impl",
        "workers",
        "drivers×tasks",
        "Mops/s",
        "e2c p50 µs",
        "e2c p99 µs",
        "mean batch",
    ]);
    let mut rows = Vec::new();

    for cfg in &configs {
        let builder = ServiceBuilder::new()
            .workers(cfg.workers)
            .queue_capacity(1_024)
            .batch_max(64);
        // Prepopulate half the key space *before* the service exists,
        // so its metrics cover only the measured closed-loop phase.
        let (elapsed, snap) = match cfg.structure {
            "fr-list" => {
                let list = FrList::new();
                {
                    let h = list.handle();
                    for k in (0..space).step_by(2) {
                        let _ = h.insert(k, k);
                    }
                }
                let service = Arc::new(builder.build(list));
                let out = drive(
                    Arc::clone(&service),
                    drivers,
                    tasks_per_driver,
                    ops_per_task,
                    space,
                );
                service.shutdown();
                out
            }
            _ => {
                let sl = SkipList::new();
                {
                    let h = sl.handle();
                    for k in (0..space).step_by(2) {
                        let _ = h.insert(k, k);
                    }
                }
                let service = Arc::new(builder.build(sl));
                let out = drive(
                    Arc::clone(&service),
                    drivers,
                    tasks_per_driver,
                    ops_per_task,
                    space,
                );
                service.shutdown();
                out
            }
        };

        assert_eq!(snap.completed, total, "closed loop lost operations");
        let throughput = total as f64 / elapsed;
        let e2c = &snap.enqueue_to_complete_ns;
        table.row([
            cfg.structure.to_string(),
            cfg.workers.to_string(),
            format!("{drivers}×{tasks_per_driver}"),
            fmt_f(throughput / 1e6),
            fmt_f(e2c.p50() as f64 / 1e3),
            fmt_f(e2c.p99() as f64 / 1e3),
            fmt_f(snap.batch_size.mean()),
        ]);
        rows.push(
            JsonObj::new()
                .field_str("experiment", "e7")
                .field_str("impl", cfg.structure)
                .field_str("mix", "read_heavy")
                .field_u64("drivers", drivers as u64)
                .field_u64("tasks_per_driver", tasks_per_driver as u64)
                .field_u64("workers", cfg.workers as u64)
                .field_u64("ops", total)
                .field_f64("throughput_ops_per_s", throughput)
                .field_u64("e2c_p50_ns", e2c.p50())
                .field_u64("e2c_p99_ns", e2c.p99())
                .field_raw("enqueue_to_complete_ns", &histogram_json(e2c))
                .field_raw("queue_depth", &histogram_json(&snap.queue_depth))
                .field_raw("batch_size", &histogram_json(&snap.batch_size))
                .finish(),
        );
    }

    print!("{table}");
    println!(
        "\nclosed loop: every request awaited; Block policy, so completed == submitted\n\
         (asserted). e2c = enqueue-to-complete, from the service's own histograms.\n"
    );

    // ---- Open loop: fixed offered rate vs Reject / Shed ----

    let ol_workers = 2;
    let ol_capacity_q = 256;
    let burst: u64 = if quick { 20_000 } else { 100_000 };
    let offered: u64 = if quick { 8_000 } else { 40_000 };
    let capacity = probe_capacity(ol_workers, ol_capacity_q, space, burst);
    println!(
        "open loop (fr-skiplist, {ol_workers} workers, queue {ol_capacity_q}): \
         measured capacity {} kops/s",
        fmt_f(capacity / 1e3)
    );

    let mut ol_table = Table::new([
        "policy",
        "offered",
        "rate kops/s",
        "shed %",
        "e2c p50 µs",
        "e2c p99 µs",
    ]);
    for policy in [BackpressurePolicy::Reject, BackpressurePolicy::Shed] {
        for (tag, ratio) in [("x05", 0.5), ("x10", 1.0), ("x20", 2.0)] {
            let rate = capacity * ratio;
            let service = open_loop_service(ol_workers, ol_capacity_q, policy, space);
            let (elapsed, snap) = drive_open_loop(&service, offered, rate, space);
            service.shutdown();

            let policy_name = match policy {
                BackpressurePolicy::Reject => "reject",
                BackpressurePolicy::Shed => "shed",
                BackpressurePolicy::Block => "block",
            };
            let dropped = snap.rejected + snap.shed;
            let shed_rate = dropped as f64 / offered as f64;
            let e2c = &snap.enqueue_to_complete_ns;
            ol_table.row([
                policy_name.to_string(),
                format!("{:.1}x", ratio),
                fmt_f(offered as f64 / elapsed / 1e3),
                fmt_f(shed_rate * 100.0),
                fmt_f(e2c.p50() as f64 / 1e3),
                fmt_f(e2c.p99() as f64 / 1e3),
            ]);
            rows.push(
                JsonObj::new()
                    .field_str("experiment", "e7")
                    .field_str("impl", "fr-skiplist")
                    .field_str("mix", &format!("open_loop_{policy_name}_{tag}"))
                    .field_u64("workers", ol_workers as u64)
                    .field_u64("ops", snap.completed)
                    .field_u64("offered", offered)
                    .field_f64("offered_ratio", ratio)
                    .field_f64("offered_rate_ops_per_s", offered as f64 / elapsed)
                    .field_f64("capacity_ops_per_s", capacity)
                    .field_u64("rejected", snap.rejected)
                    .field_u64("shed", snap.shed)
                    .field_f64("shed_rate", shed_rate)
                    .field_f64("throughput_ops_per_s", snap.completed as f64 / elapsed)
                    .field_u64("e2c_p50_ns", e2c.p50())
                    .field_u64("e2c_p99_ns", e2c.p99())
                    .field_raw("enqueue_to_complete_ns", &histogram_json(e2c))
                    .field_raw("queue_depth", &histogram_json(&snap.queue_depth))
                    .finish(),
            );
        }
    }
    print!("{ol_table}");
    println!(
        "\nopen loop: fire-and-forget at a fixed offered rate (ratio of measured\n\
         capacity). Below saturation both policies shed ~nothing; past it, Reject\n\
         fails fast at enqueue (bounded e2c for the admitted) while Shed admits\n\
         everyone and evicts the oldest, trading drop choice for full queues."
    );
    write_bench_artifact("e7", quick, &rows);

    if let Some(path) = trace_dump {
        match lf_trace::recorder::dump_to_path(&path, "experiment") {
            Ok(n) => println!("\nflight recorder: {n} events -> {}", path.display()),
            Err(e) => eprintln!("\nflight recorder: dump to {} failed: {e}", path.display()),
        }
        lf_trace::disable();
    }
}
