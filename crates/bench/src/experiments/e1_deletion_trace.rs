//! E1 — Fig. 2: deletion is exactly flag → mark → physically delete.
//!
//! Replays a deletion step-by-step on the deterministic scheduler and
//! prints the successor-field states after every shared-memory step,
//! reproducing the three panels of the paper's Figure 2.

use std::sync::Arc;

use lf_sched::sim::SimFrList;
use lf_sched::{Observation, Scheduler, StepKind};

use crate::table::Table;

fn render_state(dump: &[(i64, bool, bool)]) -> String {
    let mut s = String::new();
    for (i, (key, mark, flag)) in dump.iter().enumerate() {
        if i > 0 {
            s.push_str(" -> ");
        }
        let label = match *key {
            i64::MIN => "head".to_string(),
            i64::MAX => "tail".to_string(),
            k => k.to_string(),
        };
        let tag = match (mark, flag) {
            (true, _) => "[X]", // marked (crossed in Fig. 2)
            (_, true) => "[F]", // flagged (shaded in Fig. 2)
            _ => "",
        };
        s.push_str(&label);
        s.push_str(tag);
    }
    s
}

/// Print the Fig. 2 trace.
pub fn run(_quick: bool) {
    println!("E1: three-step deletion trace (paper Fig. 2)");
    println!("    deleting key 2 from head -> 1 -> 2 -> 3 -> tail");
    println!("    [F] = successor field flagged, [X] = marked\n");

    let sched = Scheduler::new();
    let list = Arc::new(SimFrList::new());
    for k in [1, 2, 3] {
        let l = list.clone();
        let op = sched.spawn(move |p| l.insert(k, &p));
        sched.run_to_completion(op.pid());
        op.join();
    }

    let l = list.clone();
    let op = sched.spawn(move |p| l.delete(2, &p));
    let pid = op.pid();

    let mut table = Table::new(["step", "pending action", "list state after step"]);
    let mut step_no = 0u32;
    let mut cas_seen = Vec::new();
    loop {
        match sched.peek(pid) {
            Observation::Finished => break,
            Observation::Pending(kind) => {
                sched.grant(pid, 1);
                // Wait for the step to land before dumping.
                match sched.peek(pid) {
                    Observation::Finished | Observation::Pending(_) => {}
                }
                step_no += 1;
                if kind.is_cas() {
                    cas_seen.push(kind);
                }
                let marker = match kind {
                    StepKind::CasFlag => "C&S flag predecessor   <- step 1",
                    StepKind::CasMark => "C&S mark node          <- step 2",
                    StepKind::CasUnlink => "C&S physical delete    <- step 3",
                    StepKind::Write => "set backlink",
                    StepKind::Backlink => "follow backlink",
                    StepKind::Traverse => "advance traversal",
                    StepKind::Read => "read shared field",
                    StepKind::CasInsert => "C&S insert",
                };
                table.row([
                    step_no.to_string(),
                    marker.to_string(),
                    render_state(&list.dump()),
                ]);
            }
        }
    }
    let ok = op.join();
    print!("{table}");
    println!(
        "\nresult: deletion {} after {} steps; C&S order: {:?}",
        if ok { "succeeded" } else { "failed" },
        step_no,
        cas_seen
    );
    assert_eq!(
        cas_seen,
        vec![StepKind::CasFlag, StepKind::CasMark, StepKind::CasUnlink],
        "three-step protocol violated"
    );
    println!("paper claim: deletion uses exactly 3 C&S in flag/mark/unlink order — CONFIRMED");
}
