//! E15 — serving-tier head-to-head: the bucketed hash map (`lf-map`)
//! vs the sharded skip-list map (`lf-shard`) on point-op workloads.
//!
//! Both tiers partition one key space across FR structures behind a
//! hash router, but the partition unit differs: the map's buckets are
//! *short unordered chains* (expected O(n/B) nodes per lookup, no
//! ordering maintained), the shard's partitions are *skip lists*
//! (O(log n) per lookup, ordered scans supported). For pure point ops
//! the map's shallower traversal should win; the skip list's ordering
//! machinery is pure overhead here. The sweep quantifies that premium
//! under a skewed (Zipfian) key distribution — the serving-tier shape,
//! where hot keys dominate and routing spreads them over
//! partitions — for a read-heavy and an update-heavy mix, over EBR and
//! VBR so the pin-free `try_read` path is measured on both tiers.
//!
//! Lookups route through `try_read` on both sides: pin-free validated
//! reads on VBR, the pinned `get` fallback on EBR — the same entry
//! point a serving front end would use.
//!
//! Emits `BENCH_e15.json` (advisory in `bench_gate.sh`: compared
//! against the committed baseline, but only warning on drift — shared
//! runners are too noisy for a hard cross-structure gate).

use lf_map::BucketMap;
use lf_reclaim::{Ebr, Publish, Reclaim};
use lf_shard::ShardedSkipList;
use lf_vbr::Vbr;
use lf_workloads::{KeyDist, Mix};

use crate::adapters::{BenchMap, MapHandle};
use crate::runner::{run_mixed, RunConfig, RunResult};
use crate::table::{fmt_f, Table};

/// Buckets for the hash-map tier. `DEFAULT_BUCKETS` (64) over the
/// 8192-key space leaves ~64 live keys per chain at 50% prefill —
/// short chains, but not so short that the chain walk vanishes from
/// the measurement entirely.
const BUCKETS: usize = lf_map::DEFAULT_BUCKETS;

/// Shards for the skip-list tier: e13's knee — beyond P=8 the residual
/// contention is same-key CAS races that more shards cannot split.
const SHARDS: usize = 8;

/// The bucketed hash map pinned to one SMR backend, lookups via the
/// pin-free `try_read` entry point.
struct HashMapTier<R>(BucketMap<u64, u64, R>)
where
    R: Reclaim + Publish<u64> + 'static;

struct HashMapTierHandle<'a, R>(lf_map::BucketMapHandle<'a, u64, u64, R>)
where
    R: Reclaim + Publish<u64> + 'static;

impl<R> BenchMap for HashMapTier<R>
where
    R: Reclaim + Publish<u64> + 'static,
{
    type Handle<'a> = HashMapTierHandle<'a, R>;

    fn create() -> Self {
        HashMapTier(BucketMap::with_backend(BUCKETS))
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        HashMapTierHandle(self.0.handle())
    }

    fn name() -> &'static str {
        match R::NAME {
            "ebr" => "fr-map-ebr",
            "vbr" => "fr-map-vbr",
            _ => "fr-map-smr",
        }
    }

    fn peak_unreclaimed(&self) -> Option<u64> {
        Some(R::gauge(self.0.domain()).peak_unreclaimed())
    }
}

impl<R> MapHandle for HashMapTierHandle<'_, R>
where
    R: Reclaim + Publish<u64> + 'static,
{
    fn insert(&self, k: u64) -> bool {
        self.0.insert(k, k).is_ok()
    }

    fn remove(&self, k: u64) -> bool {
        self.0.remove(&k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        self.0.try_read(&k).is_some()
    }
}

/// The sharded skip-list map pinned to one SMR backend, lookups via
/// the pin-free `try_read` entry point.
struct ShardTier<R>(ShardedSkipList<u64, u64, R>)
where
    R: Reclaim + Publish<u64> + 'static;

struct ShardTierHandle<'a, R>(lf_shard::ShardedHandle<'a, u64, u64, R>)
where
    R: Reclaim + Publish<u64> + 'static;

impl<R> BenchMap for ShardTier<R>
where
    R: Reclaim + Publish<u64> + 'static,
{
    type Handle<'a> = ShardTierHandle<'a, R>;

    fn create() -> Self {
        ShardTier(ShardedSkipList::with_backend(SHARDS))
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        ShardTierHandle(self.0.handle())
    }

    fn name() -> &'static str {
        match R::NAME {
            "ebr" => "fr-shard-skiplist-ebr",
            "vbr" => "fr-shard-skiplist-vbr",
            _ => "fr-shard-skiplist-smr",
        }
    }

    fn peak_unreclaimed(&self) -> Option<u64> {
        Some(R::gauge(self.0.domain()).peak_unreclaimed())
    }
}

impl<R> MapHandle for ShardTierHandle<'_, R>
where
    R: Reclaim + Publish<u64> + 'static,
{
    fn insert(&self, k: u64) -> bool {
        self.0.insert(k, k).is_ok()
    }

    fn remove(&self, k: u64) -> bool {
        self.0.remove(&k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        self.0.try_read(&k).is_some()
    }
}

/// Repetitions per cell; the median-throughput run is reported.
/// Cross-structure ratios on an oversubscribed box are otherwise
/// dominated by scheduler noise.
const REPS: usize = 5;

fn measure<M: BenchMap>(threads: usize, ops: u64, mix: Mix) -> RunResult {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix,
        dist: KeyDist::Zipfian {
            space: 8192,
            theta: 0.99,
        },
        seed: 0xE15,
        prefill: 2048,
    };
    let mut runs: Vec<RunResult> = (0..REPS).map(|_| run_mixed::<M>(&cfg)).collect();
    runs.sort_by(|a, b| a.throughput().total_cmp(&b.throughput()));
    runs.swap_remove(REPS / 2)
}

/// Print the map-vs-shard tables and emit `BENCH_e15.json`.
pub fn run(quick: bool) {
    println!(
        "E15: serving tiers head-to-head (kops/s) — bucketed hash map\n\
         ({BUCKETS} buckets) vs sharded skip-list map ({SHARDS} shards),\n\
         zipfian(theta 0.99) keys, space 8192, prefill 2048; lookups via\n\
         the pin-free try_read entry point\n"
    );
    let ops: u64 = if quick { 5_000 } else { 30_000 };
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut rows: Vec<String> = Vec::new();
    // (threads, ebr ratio, vbr ratio) on the read-heavy mix.
    let mut map_vs_shard: Vec<(usize, f64, f64)> = Vec::new();
    for mix in [Mix::READ_HEAVY, Mix::UPDATE_HEAVY] {
        let label = mix.label();
        let mut table = Table::new([
            "threads",
            "fr-map-ebr",
            "fr-map-vbr",
            "fr-shard-skiplist-ebr",
            "fr-shard-skiplist-vbr",
        ]);
        for &t in threads {
            let results = [
                ("fr-map-ebr", measure::<HashMapTier<Ebr>>(t, ops, mix)),
                ("fr-map-vbr", measure::<HashMapTier<Vbr>>(t, ops, mix)),
                (
                    "fr-shard-skiplist-ebr",
                    measure::<ShardTier<Ebr>>(t, ops, mix),
                ),
                (
                    "fr-shard-skiplist-vbr",
                    measure::<ShardTier<Vbr>>(t, ops, mix),
                ),
            ];
            if mix.search == Mix::READ_HEAVY.search {
                map_vs_shard.push((
                    t,
                    results[0].1.throughput() / results[2].1.throughput().max(f64::MIN_POSITIVE),
                    results[1].1.throughput() / results[3].1.throughput().max(f64::MIN_POSITIVE),
                ));
            }
            let mut cells = vec![t.to_string()];
            for (name, res) in &results {
                cells.push(fmt_f(res.throughput() / 1.0e3));
                rows.push(super::artifact_row("e15", name, &label, t, res));
            }
            table.row(cells);
        }
        println!("mix {label}:");
        print!("{table}");
        println!();
    }

    super::write_bench_artifact("e15", quick, &rows);
    for (t, ebr, vbr) in &map_vs_shard {
        println!("map/shard read-heavy throughput at {t} threads: ebr {ebr:.2}x  vbr {vbr:.2}x");
    }
    println!(
        "expected shape: the hash map leads on every point-op cell — its\n\
         chains are a fraction of the skip list's O(log n) traversal and\n\
         it maintains no ordering — with the lead widest update-heavy\n\
         (no tower building/unlinking). The premium narrows as threads\n\
         grow on one core (both tiers serialize on the scheduler) but\n\
         the map stays >= 1x; same-backend comparisons isolate the\n\
         structure, the vbr columns add the pin-free read discount."
    );
}
