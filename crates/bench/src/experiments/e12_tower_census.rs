//! E12 — tower height distribution (paper §4, last paragraph).
//!
//! "The distribution of the heights of the full towers may be a little
//! different from the heights distribution in a sequential skip list,
//! because higher towers are more likely to be incomplete. However, we
//! believe this would not affect the expected running time
//! significantly."
//!
//! We build a skip list under concurrent churn, quiesce, and compare
//! the observed height histogram with the ideal geometric(1/2).

use std::sync::Arc;

use lf_core::SkipList;
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

use crate::table::{fmt_f, Table};

/// Print the census table.
pub fn run(quick: bool) {
    println!("E12: tower height census vs geometric(1/2)\n");
    let keys: u64 = if quick { 4_096 } else { 16_384 };
    let churn_ops: u64 = if quick { 4_000 } else { 20_000 };

    let sl = Arc::new(SkipList::<u64, u64>::new());

    // Phase 1: concurrent bulk insert.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let sl = sl.clone();
            s.spawn(move || {
                let h = sl.handle();
                let per = keys / 4;
                for i in 0..per {
                    let _ = h.insert(t * per + i, i);
                }
            });
        }
    });

    // Phase 2: concurrent churn (deletions interrupt constructions).
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let sl = sl.clone();
            s.spawn(move || {
                let h = sl.handle();
                let mut w =
                    WorkloadIter::new(Mix::CHURN, KeyDist::Uniform { space: keys }, 0xE12 + t);
                for _ in 0..churn_ops {
                    let op = w.next_op();
                    match op.kind {
                        OpKind::Insert => {
                            let _ = h.insert(op.key, op.key);
                        }
                        OpKind::Remove => {
                            let _ = h.remove(&op.key);
                        }
                        OpKind::Search => {
                            let _ = h.contains(&op.key);
                        }
                    }
                }
            });
        }
    });

    // Cleaning sweep: a search for every key physically deletes any
    // marked node a stalled helper left behind, so the census sees a
    // fully quiescent structure.
    {
        let h = sl.handle();
        for k in 0..keys {
            let _ = h.contains(&k);
        }
    }

    // Quiesced census.
    let heights = sl.tower_heights();
    let total = heights.len() as f64;
    let max_h = heights.iter().copied().max().unwrap_or(1);
    let mut counts = vec![0u64; max_h + 1];
    for h in &heights {
        counts[*h] += 1;
    }

    let mut table = Table::new(["height", "towers", "observed frac", "geometric(1/2) frac"]);
    for (h, &count) in counts.iter().enumerate().take(max_h.min(12) + 1).skip(1) {
        let observed = count as f64 / total;
        let expected = 0.5f64.powi(h as i32);
        table.row([
            h.to_string(),
            count.to_string(),
            fmt_f(observed),
            fmt_f(expected),
        ]);
    }
    print!("{table}");
    let mean: f64 = heights.iter().map(|&h| h as f64).sum::<f64>() / total;
    println!(
        "\ntowers: {}  mean height: {} (geometric ideal 2.0)  max: {max_h}",
        heights.len(),
        fmt_f(mean),
    );
    sl.validate_quiescent();
    println!(
        "paper claim: full-tower heights approximately geometric; incomplete\n\
         towers bounded by point contention (all gone at quiescence) — the\n\
         structural validation above passing confirms no superfluous towers\n\
         remain."
    );
}
