//! E8 — flag-bit ablation (§3.1 design rationale), deterministic.
//!
//! "The problem is that long chains of backlinks can be traversed by
//! the same process many times. This happens when these chains grow
//! towards the right, i.e. when backlink pointers are set to marked
//! nodes." Flag bits make that impossible: a backlink is set under the
//! protection of the predecessor's flag, so it always targets a node
//! that was unmarked when the link was created.
//!
//! The adversarial schedule: the list holds even keys `2,4,…,2n`. All
//! `n` deleters **search first** (capturing their live predecessors),
//! then fire one per round in ascending key order — so deleter `k`
//! stores its backlink to a predecessor that has since been *marked*.
//! Without flags the backlinks of `2k` form a chain `2k → 2k−2 → … →
//! 2`, and the round-`k` victim (an inserter positioned at `2k`) walks
//! all `k−1` links: `Θ(n²)` backlink traversals in total. With flags,
//! the stale flagging C&S fails, the deleter relocates, and every
//! backlink targets a live node — each victim walks `O(1)` links.

use std::sync::Arc;

use lf_sched::sim::{SimFrList, SimNoFlagList};
use lf_sched::{Proc, Scheduler, StepKind};

use crate::table::{fmt_f, Table};

/// The two list flavours under the same director script.
trait AblList: Send + Sync + 'static {
    fn create() -> Self;
    fn insert(&self, k: i64, p: &Proc) -> bool;
    fn delete(&self, k: i64, p: &Proc) -> bool;
    /// The step at which a deleter has finished its search but not yet
    /// recorded/claimed its predecessor.
    fn pause_kind() -> StepKind;
}

impl AblList for SimFrList {
    fn create() -> Self {
        SimFrList::new()
    }
    fn insert(&self, k: i64, p: &Proc) -> bool {
        SimFrList::insert(self, k, p)
    }
    fn delete(&self, k: i64, p: &Proc) -> bool {
        SimFrList::delete(self, k, p)
    }
    fn pause_kind() -> StepKind {
        StepKind::CasFlag
    }
}

impl AblList for SimNoFlagList {
    fn create() -> Self {
        SimNoFlagList::new()
    }
    fn insert(&self, k: i64, p: &Proc) -> bool {
        SimNoFlagList::insert(self, k, p)
    }
    fn delete(&self, k: i64, p: &Proc) -> bool {
        SimNoFlagList::delete(self, k, p)
    }
    fn pause_kind() -> StepKind {
        StepKind::Write
    }
}

struct Outcome {
    victim_backlinks_total: u64,
    victim_backlinks_max: u64,
}

fn run_schedule<L: AblList>(n: usize) -> Outcome {
    let sched = Scheduler::new();
    let list = Arc::new(L::create());

    // Even keys 2..=2n.
    for k in 1..=n as i64 {
        let l = list.clone();
        let op = sched.spawn(move |p| l.insert(2 * k, &p));
        sched.run_to_completion(op.pid());
        assert!(op.join());
    }

    // All deleters search up-front, capturing live predecessors.
    let mut deleters = Vec::new();
    for k in 1..=n as i64 {
        let l = list.clone();
        let d = sched.spawn(move |p| l.delete(2 * k, &p));
        let paused = sched.run_until_pending(d.pid(), |s| s == L::pause_kind());
        assert!(paused, "deleter of {} finished early", 2 * k);
        deleters.push(d);
    }

    // Rounds: position a victim inserter at the doomed predecessor,
    // fire the deleter (its captured predecessor is now stale), then
    // make the victim recover.
    let mut total = 0u64;
    let mut max = 0u64;
    for (idx, d) in deleters.into_iter().enumerate() {
        let k = idx as i64 + 1;
        let l = list.clone();
        let v = sched.spawn(move |p| l.insert(2 * k + 1, &p));
        let paused = sched.run_until_pending(v.pid(), |s| s == StepKind::CasInsert);
        assert!(paused, "victim {} finished early", 2 * k + 1);

        sched.run_to_completion(d.pid());
        assert!(d.join(), "deletion of {} failed", 2 * k);

        sched.run_to_completion(v.pid());
        let walked = sched.steps_of(v.pid(), StepKind::Backlink);
        assert!(v.join(), "victim insert {} failed", 2 * k + 1);
        total += walked;
        max = max.max(walked);
    }

    Outcome {
        victim_backlinks_total: total,
        victim_backlinks_max: max,
    }
}

/// Print the ablation table.
pub fn run(quick: bool) {
    println!("E8: flag-bit ablation under the stale-predecessor schedule");
    println!("    (deleters search before their predecessors die, fire after)\n");
    let sizes: &[usize] = if quick {
        &[8, 16, 32, 64]
    } else {
        &[8, 16, 32, 64, 128, 256]
    };

    let mut table = Table::new([
        "n (rounds)",
        "fr victim backlinks",
        "noflag victim backlinks",
        "ratio",
        "fr worst round",
        "noflag worst round",
    ]);
    for &n in sizes {
        let fr = run_schedule::<SimFrList>(n);
        let nf = run_schedule::<SimNoFlagList>(n);
        table.row([
            n.to_string(),
            fr.victim_backlinks_total.to_string(),
            nf.victim_backlinks_total.to_string(),
            fmt_f(nf.victim_backlinks_total as f64 / fr.victim_backlinks_total.max(1) as f64),
            fr.victim_backlinks_max.to_string(),
            nf.victim_backlinks_max.to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "\npaper claim: with flags, backlinks always target nodes that were\n\
         unmarked when set, so per-victim recovery is O(1) links (total\n\
         linear); without flags the chain grows rightwards and the totals\n\
         grow quadratically — the ratio column should grow with n."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noflag_chains_grow_quadratically_fr_stays_linear() {
        let fr1 = run_schedule::<SimFrList>(16);
        let fr2 = run_schedule::<SimFrList>(32);
        let nf1 = run_schedule::<SimNoFlagList>(16);
        let nf2 = run_schedule::<SimNoFlagList>(32);
        // FR per-victim walk is O(1): totals scale ~linearly.
        assert!(
            fr2.victim_backlinks_total <= 3 * fr1.victim_backlinks_total.max(1),
            "fr {} -> {}",
            fr1.victim_backlinks_total,
            fr2.victim_backlinks_total
        );
        // No-flag totals scale ~quadratically.
        assert!(
            nf2.victim_backlinks_total >= 3 * nf1.victim_backlinks_total,
            "noflag {} -> {}",
            nf1.victim_backlinks_total,
            nf2.victim_backlinks_total
        );
        // And the worst single recovery is the whole chain.
        assert!(nf2.victim_backlinks_max as usize >= 16);
        assert!(fr2.victim_backlinks_max <= 4);
    }
}
