//! E16 — loopback TCP serving under overload: fixed vs adaptive batch
//! admission, Shed vs Reject, with exact wire-level accounting.
//!
//! E7 established the open-loop story *in process*: past saturation,
//! `Reject` fails fast and `Shed` evicts, and the admitted tail stays
//! bounded. This experiment pushes the same methodology through a real
//! socket: the [`resp_client`](crate::resp_client) generator offers
//! RESP commands over loopback TCP at a fixed ratio of the *probed*
//! capacity, and the server surfaces every refusal as `-BUSY
//! shed`/`-BUSY rejected` — so the client's reply tallies must equal
//! the server's counters exactly, command for command. That equality is
//! asserted for every run: overload here is accounted, never inferred.
//!
//! The second axis is the admission controller. `fixed` serves with the
//! workspace-default `batch_max` (64) for the whole run; `adaptive`
//! starts at a deliberately poor setting (4) and lets the
//! `lf-server` controller grow lanes under sustained ring occupancy and
//! halve them when the windowed admitted e2c p99 exceeds its target.
//! The claim under test (EXPERIMENTS.md §E16): at 2× overload the
//! adaptive controller recovers to within noise of the best fixed
//! setting — the knob does not need hand-tuning to survive overload.
//! Each cell warms up at its offered rate first and every metric is
//! windowed against a post-warmup baseline, so the comparison is
//! between *converged* operating points (the controller's climb out of
//! batch_max 4 is the warmup's problem, not the measurement's).
//!
//! Also performs the exporter overhead spot-check for the server-label
//! metrics: a `ServerSnapshot` render (JSON + Prometheus) is timed and
//! reported per-call, bounding what a scraper costs the serving path.
//!
//! Emits `BENCH_e16.json`: one row per (policy, mode, offered-ratio)
//! with shed-rate, admitted e2c p50/p99 (service histograms),
//! socket-to-socket p50/p99 (client-measured), and controller activity.

use std::sync::Arc;
use std::time::Instant;

use lf_async::{AsyncSkipList, BackpressurePolicy, ServiceBuilder};
use lf_core::SkipList;
use lf_metrics::export::{histogram_json, JsonObj};
use lf_server::{Bytes, ControllerConfig, Server, ServerBuilder};
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

use crate::resp_client::{run_open_loop, OpenLoopConfig, RespClient, RunTally};
use crate::table::{fmt_f, Table};

use super::write_bench_artifact;

type WireService = AsyncSkipList<Bytes, Bytes>;

const WORKERS: usize = 2;
// Deliberately shallow rings: one 16 KiB socket read parses into a few
// hundred pipelined commands, so overload actually reaches the
// admission point instead of hiding in ring slack.
const QUEUE: usize = 64;
const FIXED_BATCH: usize = 64;
const ADAPTIVE_START_BATCH: usize = 4;
const SPACE: u64 = 4_096;
const BURST: usize = 16;

/// Decimal-padded wire form of a workload key (preserves u64 order, so
/// the ordered tier's SCAN order is the numeric order).
fn wire_key(k: u64) -> Vec<u8> {
    format!("{k:012}").into_bytes()
}

/// Start a wire server over a prefilled skip-list service (half the
/// keyspace present, as in E7, so GETs hit ~50%).
fn start_server(
    policy: BackpressurePolicy,
    adaptive: bool,
) -> (Server<SkipList<Bytes, Bytes>>, Arc<WireService>) {
    let sl: SkipList<Bytes, Bytes> = SkipList::new();
    {
        let h = sl.handle();
        for k in (0..SPACE).step_by(2) {
            let _ = h.insert(wire_key(k), b"v".to_vec());
        }
    }
    let service = Arc::new(
        ServiceBuilder::new()
            .workers(WORKERS)
            .queue_capacity(QUEUE)
            .batch_max(if adaptive {
                ADAPTIVE_START_BATCH
            } else {
                FIXED_BATCH
            })
            .policy(policy)
            .build(sl),
    );
    let mut builder = ServerBuilder::new();
    if adaptive {
        builder = builder.adaptive(ControllerConfig::default());
    }
    let server = builder.serve(Arc::clone(&service)).expect("bind loopback");
    (server, service)
}

/// Probe socket-path capacity: unpaced pipelined GETs through a `Shed`
/// server (submission never errors), admitted ops per submit second.
fn probe_capacity(ops: u64) -> f64 {
    let (server, service) = start_server(BackpressurePolicy::Shed, false);
    let mut w = WorkloadIter::new(Mix::READ_HEAVY, KeyDist::Uniform { space: SPACE }, 0xE160A);
    let tally = run_open_loop(
        &OpenLoopConfig {
            addr: server.local_addr(),
            ops,
            rate: None,
            burst: 256,
        },
        |_, buf| {
            let op = w.next_op();
            lf_server::resp::write_command(buf, &[b"GET", &wire_key(op.key)]);
        },
    )
    .expect("capacity probe");
    server.stop();
    service.shutdown();
    // End-to-end wall clock: submit time alone only measures how fast
    // loopback socket buffers absorb writes.
    (tally.ok as f64 / tally.wall.as_secs_f64().max(1e-9)).max(1.0)
}

/// One measured run: paced open loop at `rate`, read-heavy mix with
/// collision-free SET keys (an in-flight duplicate SET would burn its
/// retry budget and break the ok/shed/rejected accounting this
/// experiment asserts).
fn measured_run(addr: std::net::SocketAddr, run_id: u64, ops: u64, rate: f64) -> RunTally {
    let mut w = WorkloadIter::new(
        Mix::READ_HEAVY,
        KeyDist::Uniform { space: SPACE },
        0xE160B ^ run_id,
    );
    run_open_loop(
        &OpenLoopConfig {
            addr,
            ops,
            rate: Some(rate),
            burst: BURST,
        },
        |i, buf| {
            let op = w.next_op();
            match op.kind {
                OpKind::Search => {
                    lf_server::resp::write_command(buf, &[b"GET", &wire_key(op.key)]);
                }
                OpKind::Insert => {
                    // Unique per command: never races another in-flight
                    // SET of the same key.
                    let key = format!("w{run_id:02}-{i:012}").into_bytes();
                    lf_server::resp::write_command(buf, &[b"SET", &key, b"v"]);
                }
                OpKind::Remove => {
                    lf_server::resp::write_command(buf, &[b"DEL", &wire_key(op.key)]);
                }
            }
        },
    )
    .expect("measured run")
}

/// Everything one (policy, mode, ratio) trial measured, asserts already
/// checked: the client tally, windowed service e2c, windowed and warmup
/// controller activity, and the final per-lane `batch_max`.
struct CellOutcome {
    tally: RunTally,
    e2c: lf_metrics::Histogram,
    win_grows: u64,
    win_shrinks: u64,
    warm_grows: u64,
    warm_shrinks: u64,
    lane_batches: Vec<usize>,
}

/// One full trial of a grid cell: fresh server, warmup at the offered
/// rate, measured run windowed against a post-warmup baseline, exact
/// accounting asserted wire-to-ring.
fn run_cell(
    policy: BackpressurePolicy,
    adaptive: bool,
    run_id: u64,
    ops: u64,
    rate: f64,
) -> CellOutcome {
    let (server, service) = start_server(policy, adaptive);

    // Warmup at the offered rate, then window every metric against a
    // post-warmup baseline: the claim under test is about the
    // controller's *converged* operating point, not the few hundred
    // milliseconds it spends climbing out of batch_max 4.
    let warmup_ops = ((rate * 0.35) as u64).max(1_000);
    let _ = measured_run(server.local_addr(), run_id + 1000, warmup_ops, rate);
    let server_base = server.metrics().snapshot();
    let svc_base = service.metrics();

    let tally = measured_run(server.local_addr(), run_id, ops, rate);

    // Exact accounting, wire to ring: the client's reply tallies and
    // the server's counters must agree on every command — a `-BUSY` is
    // a *reply*, not a guess.
    assert_eq!(
        tally.sent,
        tally.ok + tally.shed + tally.rejected + tally.errors,
        "client tally lost a reply"
    );
    assert_eq!(tally.errors, 0, "unexpected protocol/command errors");
    let snap = server.metrics().snapshot();
    assert_eq!(
        snap.commands - server_base.commands,
        tally.sent,
        "server parsed a different count"
    );
    assert_eq!(
        (
            snap.ok - server_base.ok,
            snap.shed - server_base.shed,
            snap.rejected - server_base.rejected,
        ),
        (tally.ok, tally.shed, tally.rejected),
        "server counters disagree with client tallies"
    );

    let svc = service.metrics();
    let e2c = svc.enqueue_to_complete_ns.clone() - svc_base.enqueue_to_complete_ns;
    let lane_batches: Vec<usize> = (0..service.lane_count())
        .map(|l| service.batch_max(l))
        .collect();
    server.stop();
    service.shutdown();
    CellOutcome {
        tally,
        e2c,
        win_grows: snap.ctl_grows - server_base.ctl_grows,
        win_shrinks: snap.ctl_shrinks - server_base.ctl_shrinks,
        warm_grows: server_base.ctl_grows,
        warm_shrinks: server_base.ctl_shrinks,
        lane_batches,
    }
}

/// Time one JSON + Prometheus render of the server snapshot (the
/// exporter overhead spot-check).
fn export_overhead_ns(server: &Server<SkipList<Bytes, Bytes>>) -> u64 {
    const ROUNDS: u32 = 200;
    let started = Instant::now();
    for _ in 0..ROUNDS {
        let snap = server.metrics().snapshot();
        std::hint::black_box(snap.to_json());
        std::hint::black_box(snap.to_prometheus());
    }
    (started.elapsed().as_nanos() / u128::from(ROUNDS)) as u64
}

/// Print the overload grid and write `BENCH_e16.json`.
pub fn run(quick: bool) {
    println!("E16: loopback TCP serving — fixed vs adaptive batch admission\n");
    let probe_ops: u64 = if quick { 20_000 } else { 60_000 };
    let capacity = probe_capacity(probe_ops);
    println!(
        "probed socket capacity (fr-skiplist, {WORKERS} workers, queue {QUEUE}, \
         batch {FIXED_BATCH}, GET-only): {} kops/s",
        fmt_f(capacity / 1e3)
    );

    // Exporter overhead spot-check against a throwaway live server.
    {
        let (server, service) = start_server(BackpressurePolicy::Shed, false);
        println!(
            "exporter spot-check: ServerSnapshot JSON+Prometheus render = {} ns/call\n",
            export_overhead_ns(&server)
        );
        server.stop();
        service.shutdown();
    }

    let duration_s = if quick { 0.25 } else { 0.6 };
    // Loopback on a small shared box is noisy (kernel socket-buffer
    // autotuning alone can swing a tail by 100×): report the median
    // trial per cell, selected by windowed e2c p99.
    let trials: usize = if quick { 1 } else { 3 };
    let mut table = Table::new([
        "policy",
        "batch",
        "offered",
        "shed %",
        "e2c p99 µs",
        "sock p50 µs",
        "sock p99 µs",
        "ctl +/-",
    ]);
    let mut rows = Vec::new();
    let mut run_id = 0u64;

    for policy in [BackpressurePolicy::Shed, BackpressurePolicy::Reject] {
        let policy_name = match policy {
            BackpressurePolicy::Shed => "shed",
            BackpressurePolicy::Reject => "reject",
            BackpressurePolicy::Block => "block",
        };
        for (tag, ratio) in [("x05", 0.5), ("x10", 1.0), ("x20", 2.0)] {
            let rate = capacity * ratio;
            let ops = ((rate * duration_s) as u64).max(2_000);
            // Paired trials: each fixed trial runs back-to-back with an
            // adaptive one, so minutes-scale machine drift lands on
            // both sides of the comparison instead of one.
            let mut fixed_out: Vec<CellOutcome> = Vec::with_capacity(trials);
            let mut adaptive_out: Vec<CellOutcome> = Vec::with_capacity(trials);
            for _ in 0..trials {
                run_id += 1;
                fixed_out.push(run_cell(policy, false, run_id, ops, rate));
                run_id += 1;
                adaptive_out.push(run_cell(policy, true, run_id, ops, rate));
            }
            for (mode, mut outcomes) in [("fixed", fixed_out), ("adaptive", adaptive_out)] {
                outcomes.sort_by_key(|o| o.e2c.p99());
                let cell = outcomes.swap_remove(trials / 2);
                let (tally, e2c) = (&cell.tally, &cell.e2c);
                let batches: Vec<String> =
                    cell.lane_batches.iter().map(|b| b.to_string()).collect();

                table.row([
                    policy_name.to_string(),
                    mode.to_string(),
                    format!("{ratio:.1}x"),
                    fmt_f(tally.shed_rate() * 100.0),
                    fmt_f(e2c.p99() as f64 / 1e3),
                    fmt_f(tally.socket_ns.p50() as f64 / 1e3),
                    fmt_f(tally.socket_ns.p99() as f64 / 1e3),
                    format!("{}/{}", cell.win_grows, cell.win_shrinks),
                ]);
                rows.push(
                    JsonObj::new()
                        .field_str("experiment", "e16")
                        .field_str("impl", "lf-server-skiplist")
                        .field_str("mix", &format!("tcp_{policy_name}_{mode}_{tag}"))
                        .field_str("policy", policy_name)
                        .field_str("batch_mode", mode)
                        .field_u64("workers", WORKERS as u64)
                        .field_u64("ops", tally.sent)
                        .field_u64("trials", trials as u64)
                        .field_f64("offered_ratio", ratio)
                        .field_f64("offered_rate_ops_per_s", rate)
                        .field_f64("capacity_ops_per_s", capacity)
                        .field_u64("ok", tally.ok)
                        .field_u64("shed", tally.shed)
                        .field_u64("rejected", tally.rejected)
                        .field_f64("shed_rate", tally.shed_rate())
                        .field_f64(
                            "offered_achieved_ops_per_s",
                            tally.sent as f64 / tally.elapsed.as_secs_f64().max(1e-9),
                        )
                        .field_f64(
                            "throughput_ops_per_s",
                            tally.ok as f64 / tally.wall.as_secs_f64().max(1e-9),
                        )
                        .field_u64("e2c_p50_ns", e2c.p50())
                        .field_u64("e2c_p99_ns", e2c.p99())
                        .field_u64("socket_p50_ns", tally.socket_ns.p50())
                        .field_u64("socket_p99_ns", tally.socket_ns.p99())
                        .field_u64("ctl_grows", cell.win_grows)
                        .field_u64("ctl_shrinks", cell.win_shrinks)
                        .field_u64("ctl_grows_warmup", cell.warm_grows)
                        .field_u64("ctl_shrinks_warmup", cell.warm_shrinks)
                        .field_str("lane_batch_max", &batches.join(","))
                        .field_raw("enqueue_to_complete_ns", &histogram_json(e2c))
                        .field_raw("socket_ns", &histogram_json(&tally.socket_ns))
                        .finish(),
                );
            }
        }
    }
    print!("{table}");
    println!(
        "\nshed %: commands answered `-BUSY` (shed+rejected) / sent — client tallies\n\
         equal server counters by assertion. e2c: the service's admitted\n\
         enqueue-to-complete tail. sock: client-measured socket-to-socket latency\n\
         of admitted commands. ctl +/-: controller grow/shrink decisions inside\n\
         the measured window — warmup decisions are excluded, so 0/0 for an\n\
         adaptive run means it measured a *converged* controller. adaptive\n\
         starts at batch_max {ADAPTIVE_START_BATCH} vs the fixed {FIXED_BATCH} and must re-earn\n\
         amortization under load. each cell reports its median-by-e2c-p99\n\
         trial of {trials}."
    );
    write_bench_artifact("e16", quick, &rows);

    // A final INFO through the sync client keeps the control-path
    // parser honest end-to-end (and documents the redis-cli view).
    let (server, service) = start_server(BackpressurePolicy::Shed, true);
    let mut ctl = RespClient::connect(server.local_addr()).expect("connect");
    match ctl.roundtrip(&[b"INFO"]) {
        Ok(lf_server::resp::Reply::Bulk(Some(text))) => {
            let text = String::from_utf8_lossy(&text);
            assert!(
                text.contains("lane_batch_max:"),
                "INFO missing controller state"
            );
        }
        other => panic!("INFO over loopback gave {other:?}"),
    }
    drop(ctl);
    server.stop();
    service.shutdown();
}
