//! E5 — skip list search cost grows as `log n` (paper §4 / Pugh).
//!
//! Metered searches on the Fomitchev–Ruppert skip list across sizes;
//! the `steps/op ÷ log2 n` column should be roughly flat while the
//! flat list's cost grows linearly.

use lf_core::{FrList, SkipList};
use lf_workloads::{KeyDist, Mix};

use crate::runner::{run_mixed, RunConfig};
use crate::table::{fmt_f, Table};

/// Print the scaling series.
pub fn run(quick: bool) {
    println!("E5: search cost scaling — skip list O(log n) vs flat list O(n)\n");
    let search_only = Mix::READ_ONLY;
    let sizes: &[u64] = if quick {
        &[256, 1024, 4096]
    } else {
        &[256, 1024, 4096, 16384, 65536]
    };
    let ops: u64 = if quick { 2_000 } else { 10_000 };

    let mut table = Table::new([
        "n",
        "log2 n",
        "skiplist steps/op",
        "steps/op / log2 n",
        "flat list steps/op",
        "flat / n",
    ]);
    for &n in sizes {
        let cfg = RunConfig {
            threads: 2,
            ops_per_thread: ops,
            mix: search_only,
            dist: KeyDist::Uniform { space: 2 * n },
            seed: 0xE5,
            prefill: n,
        };
        let sl = run_mixed::<SkipList<u64, u64>>(&cfg);
        // The flat list at 64k would dominate the runtime; cap it.
        let flat_steps = if n <= 4096 {
            let flat = run_mixed::<FrList<u64, u64>>(&RunConfig {
                ops_per_thread: ops.min(2_000),
                ..cfg.clone()
            });
            Some(flat.steps_per_op())
        } else {
            None
        };
        let log2 = (n as f64).log2();
        table.row([
            n.to_string(),
            fmt_f(log2),
            fmt_f(sl.steps_per_op()),
            fmt_f(sl.steps_per_op() / log2),
            flat_steps.map(fmt_f).unwrap_or_else(|| "-".into()),
            flat_steps
                .map(|s| fmt_f(s / n as f64))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print!("{table}");
    println!(
        "\nexpected shape: 'steps/op / log2 n' flat for the skip list,\n\
         'flat / n' flat for the linked list (i.e. linear growth)."
    );
}
