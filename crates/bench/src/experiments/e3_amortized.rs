//! E3 — the amortized bound `t̂(S) ∈ O(n(S) + c(S))` on real threads.
//!
//! Two metered series on the Fomitchev–Ruppert list:
//!
//! * **steps/op versus n** at fixed thread count — should grow
//!   linearly in the list size (the `O(n)` necessary cost of
//!   traversal), so the `steps/op ÷ n` column should be roughly flat;
//! * **steps/op versus threads** at fixed n — the concurrency overhead
//!   is an *additive* `O(c)` term, so steps/op should grow by a small
//!   additive amount per extra thread, not multiply.

use lf_core::FrList;
use lf_workloads::{KeyDist, Mix};

use crate::runner::{run_mixed, RunConfig};
use crate::table::{fmt_f, Table};

/// Print both series.
pub fn run(quick: bool) {
    println!("E3: amortized cost O(n + c) on the FR list (real threads, metered)\n");

    let ops: u64 = if quick { 2_000 } else { 10_000 };

    // Series A: fixed contention, growing n.
    let sizes: &[u64] = if quick {
        &[64, 128, 256, 512]
    } else {
        &[64, 128, 256, 512, 1024, 2048]
    };
    let mut a = Table::new(["n (steady size)", "threads", "steps/op", "steps/op / n"]);
    for &n in sizes {
        let cfg = RunConfig {
            threads: 4,
            ops_per_thread: ops,
            mix: Mix::UPDATE_HEAVY,
            dist: KeyDist::Uniform { space: 2 * n },
            seed: 0xE3,
            prefill: n,
        };
        let res = run_mixed::<FrList<u64, u64>>(&cfg);
        a.row([
            n.to_string(),
            "4".to_string(),
            fmt_f(res.steps_per_op()),
            fmt_f(res.steps_per_op() / n as f64),
        ]);
    }
    println!("Series A: steps/op vs list size (expect linear; last column flat)");
    print!("{a}");

    // Series B: fixed n, growing contention.
    let threads: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut b = Table::new(["n", "threads", "steps/op", "cas fails/op"]);
    for &t in threads {
        let cfg = RunConfig {
            threads: t,
            ops_per_thread: ops,
            mix: Mix::UPDATE_HEAVY,
            dist: KeyDist::Uniform { space: 256 },
            seed: 0xE3B,
            prefill: 128,
        };
        let res = run_mixed::<FrList<u64, u64>>(&cfg);
        b.row([
            "128".to_string(),
            t.to_string(),
            fmt_f(res.steps_per_op()),
            fmt_f(res.metrics.cas_failures() as f64 / res.ops as f64),
        ]);
    }
    println!("\nSeries B: steps/op vs threads at n = 128 (expect small additive growth)");
    print!("{b}");
    println!(
        "\npaper claim: necessary cost O(n(S)) + concurrency overhead O(c(S));\n\
         Series A linear in n, Series B bounded additive in c."
    );
}
