//! E13 — shard scaling: the partitioned skip list (`lf-shard`) vs the
//! single instance it wraps.
//!
//! The paper's structures serialize nothing, but hot towers still
//! collide: under a skewed update-heavy load every thread's flag/mark
//! C&S traffic lands on the same few predecessors. Partitioning by key
//! hash splits that traffic across `P` independent skip lists (one
//! router hash, per-shard heads, shared epoch domain), so the sweep
//! over `P ∈ {1, 2, 4, 8, 16}` isolates how much of the remaining
//! contention is structural (same-key CAS races, which sharding cannot
//! remove — zipfian hot keys stay hot inside their shard) versus
//! incidental (neighbouring-key interference, which it does).
//!
//! `P = 1` *is* the plain `SkipList` behind one `match` on the router,
//! so the column doubles as an overhead check for the routing layer.

use lf_shard::{ShardedHandle, ShardedSkipList};
use lf_workloads::{KeyDist, Mix};

use crate::adapters::{BenchMap, MapHandle};
use crate::runner::{run_mixed, RunConfig, RunResult};
use crate::table::{fmt_f, Table};

/// `ShardedSkipList` pinned to `P` shards at the type level: the
/// generic harness creates maps through the parameterless
/// `BenchMap::create`, so the shard count rides in as a const generic.
struct ShardedMap<const P: usize>(ShardedSkipList<u64, u64>);

impl<const P: usize> BenchMap for ShardedMap<P> {
    type Handle<'a> = ShardedHandle<'a, u64, u64>;

    fn create() -> Self {
        ShardedMap(ShardedSkipList::new(P))
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self.0.handle()
    }

    fn name() -> &'static str {
        match P {
            1 => "fr-shard-p1",
            2 => "fr-shard-p2",
            4 => "fr-shard-p4",
            8 => "fr-shard-p8",
            16 => "fr-shard-p16",
            _ => "fr-shard",
        }
    }
}

impl MapHandle for ShardedHandle<'_, u64, u64> {
    fn insert(&self, k: u64) -> bool {
        ShardedHandle::insert(self, k, k).is_ok()
    }

    fn remove(&self, k: u64) -> bool {
        ShardedHandle::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        ShardedHandle::contains(self, &k)
    }
}

fn measure<M: BenchMap>(threads: usize, ops: u64) -> RunResult {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix: Mix::UPDATE_HEAVY,
        dist: KeyDist::Zipfian {
            space: 8192,
            theta: 0.99,
        },
        seed: 0xE13,
        prefill: 2048,
    };
    run_mixed::<M>(&cfg)
}

/// Print the shard-scaling table and emit `BENCH_e13.json`.
pub fn run(quick: bool) {
    println!(
        "E13: shard scaling (kops/s), update-heavy zipfian(theta 0.99),\n\
         key space 8192, prefill 2048\n"
    );
    let ops: u64 = if quick { 5_000 } else { 30_000 };
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mix_label = Mix::UPDATE_HEAVY.label();

    let mut rows: Vec<String> = Vec::new();
    let mut table = Table::new([
        "threads",
        "fr-shard-p1",
        "fr-shard-p2",
        "fr-shard-p4",
        "fr-shard-p8",
        "fr-shard-p16",
    ]);
    let mut speedup_at_max: Option<f64> = None;
    for &t in threads {
        let results = [
            ("fr-shard-p1", measure::<ShardedMap<1>>(t, ops)),
            ("fr-shard-p2", measure::<ShardedMap<2>>(t, ops)),
            ("fr-shard-p4", measure::<ShardedMap<4>>(t, ops)),
            ("fr-shard-p8", measure::<ShardedMap<8>>(t, ops)),
            ("fr-shard-p16", measure::<ShardedMap<16>>(t, ops)),
        ];
        if t == *threads.last().expect("thread list is nonempty") {
            speedup_at_max =
                Some(results[3].1.throughput() / results[0].1.throughput().max(f64::MIN_POSITIVE));
        }
        let mut cells = vec![t.to_string()];
        for (name, res) in &results {
            cells.push(fmt_f(res.throughput() / 1.0e3));
            rows.push(super::artifact_row("e13", name, &mix_label, t, res));
        }
        table.row(cells);
    }
    println!("mix {mix_label}:");
    print!("{table}");
    println!();
    super::write_bench_artifact("e13", quick, &rows);
    if let Some(s) = speedup_at_max {
        println!(
            "P=8 vs P=1 at {} threads: {:.2}x",
            threads.last().expect("thread list is nonempty"),
            s
        );
    }
    println!(
        "expected shape: throughput grows with P while threads outnumber\n\
         shards (cross-key interference splits), then flattens — the\n\
         zipfian head keys keep their own CAS races regardless of P, and\n\
         P=1 tracks the plain skip list (router overhead is one hash)."
    );
}
