//! E11 — lock-freedom under process failures (paper §1).
//!
//! "An implementation of a shared-memory object is lock-free if a
//! finite number of steps taken by any process guarantees the
//! completion of some operation. If an implementation is lock-free,
//! delays or failures of individual processes do not block the
//! progress of other processes in the system."
//!
//! The deterministic scheduler makes this testable: we **halt**
//! processes at the worst possible moments — immediately after their
//! flagging C&S (the FR list's closest analogue to "holding a lock") —
//! and verify that a fresh wave of operations still completes, with
//! bounded extra work. The lock-based baselines cannot pass this test
//! even conceptually: a halted lock holder blocks everyone forever.

use std::sync::Arc;

use lf_sched::sim::SimFrList;
use lf_sched::{Scheduler, StepKind};

use crate::table::{fmt_f, Table};

struct Outcome {
    /// Steps the survivors needed with `halted` processes stalled.
    survivor_steps: u64,
    survivor_ops: u64,
}

/// `n` keys; `halted` deleters are stopped right after their flag C&S
/// lands; then `survivors` fresh operations (mixed insert/delete) must
/// all complete.
fn run_with_failures(n: usize, halted: usize, survivors: usize) -> Outcome {
    let sched = Scheduler::new();
    let list = Arc::new(SimFrList::new());
    for k in 1..=n as i64 {
        let l = list.clone();
        let op = sched.spawn(move |p| l.insert(k, &p));
        sched.run_to_completion(op.pid());
        assert!(op.join());
    }

    // Halt deleters immediately after their flagging C&S: their victims'
    // predecessors are left flagged — the most obstructive lock-free
    // state an operation can abandon.
    let mut stalled = Vec::new();
    for i in 0..halted {
        // Spread victims across the list.
        let key = ((i + 1) * n / (halted + 1)).max(1) as i64;
        let l = list.clone();
        let d = sched.spawn(move |p| l.delete(key, &p));
        let paused = sched.run_until_pending(d.pid(), |k| k == StepKind::CasFlag);
        assert!(paused, "deleter finished before flagging");
        sched.grant(d.pid(), 1); // execute the flag C&S, then never again
        let _ = sched.peek(d.pid());
        stalled.push(d);
    }

    // A fresh wave of operations must all complete despite the stalls
    // (they help the abandoned deletions through).
    let mut ops = Vec::new();
    for i in 0..survivors {
        let l = list.clone();
        if i % 2 == 0 {
            let key = (n + i + 10) as i64;
            ops.push(sched.spawn(move |p| l.insert(key, &p)));
        } else {
            let key = (i % n + 1) as i64;
            ops.push(sched.spawn(move |p| {
                let _ = l.delete(key, &p);
                true
            }));
        }
    }
    let mut survivor_steps = 0;
    for op in ops {
        sched.run_to_completion(op.pid());
        survivor_steps += sched.steps(op.pid());
        assert!(op.join(), "survivor operation blocked by halted process");
    }

    // Release the stalled threads only to let the program exit; their
    // operations were already completed *for* them by helpers.
    for d in stalled {
        sched.run_to_completion(d.pid());
        let _ = d.join();
    }

    Outcome {
        survivor_steps,
        survivor_ops: survivors as u64,
    }
}

/// Print the failure-injection table.
pub fn run(quick: bool) {
    println!("E11: lock-freedom — progress despite halted processes (paper §1)");
    println!("    deleters halted right after their flagging C&S; a fresh wave");
    println!("    of operations must still complete (by helping).\n");

    let n = if quick { 64 } else { 128 };
    let survivors = if quick { 16 } else { 32 };
    let halted_counts: &[usize] = if quick {
        &[0, 1, 4, 8]
    } else {
        &[0, 1, 4, 8, 16]
    };

    let mut table = Table::new([
        "halted deleters",
        "survivor ops",
        "all completed",
        "survivor steps",
        "steps/op",
        "overhead vs 0 halted",
    ]);
    let mut baseline = 0.0;
    for &h in halted_counts {
        let out = run_with_failures(n, h, survivors);
        let per_op = out.survivor_steps as f64 / out.survivor_ops as f64;
        if h == 0 {
            baseline = per_op;
        }
        table.row([
            h.to_string(),
            out.survivor_ops.to_string(),
            "yes".to_string(),
            out.survivor_steps.to_string(),
            fmt_f(per_op),
            format!("{:+.2}", per_op - baseline),
        ]);
    }
    print!("{table}");
    println!(
        "\npaper claim: failures of individual processes do not block others;\n\
         the overhead of helping each abandoned deletion through is a\n\
         constant number of steps per halted process, spread across the\n\
         survivors — not a blocked system."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survivors_complete_with_many_halted_processes() {
        let out = run_with_failures(48, 8, 12);
        assert_eq!(out.survivor_ops, 12);
    }

    #[test]
    fn helping_overhead_is_bounded() {
        let clean = run_with_failures(48, 0, 12);
        let hurt = run_with_failures(48, 8, 12);
        let clean_per = clean.survivor_steps as f64 / clean.survivor_ops as f64;
        let hurt_per = hurt.survivor_steps as f64 / hurt.survivor_ops as f64;
        // Helping 8 abandoned deletions costs far less than one full
        // re-traversal per op.
        assert!(
            hurt_per < clean_per + 48.0,
            "helping overhead too large: {clean_per} -> {hurt_per}"
        );
    }
}
