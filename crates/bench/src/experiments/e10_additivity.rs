//! E10 — the overhead separates **additively** (§1).
//!
//! The headline bound is `O(n̄ + c̄)`, not `O(n̄ · c̄)`: the concurrency
//! overhead adds to the traversal cost instead of multiplying it. We
//! measure steps/op over an (n, threads) grid on the FR list; the
//! contention penalty — steps/op at t threads minus steps/op at 1
//! thread — should stay roughly constant as n grows. A multiplicative
//! bound would make that penalty scale with n.

use lf_core::FrList;
use lf_workloads::{KeyDist, Mix};

use crate::runner::{run_mixed, RunConfig};
use crate::table::{fmt_f, Table};

fn steps_per_op(n: u64, threads: usize, ops: u64) -> f64 {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix: Mix::UPDATE_HEAVY,
        dist: KeyDist::Uniform { space: 2 * n },
        seed: 0xE10,
        prefill: n,
    };
    run_mixed::<FrList<u64, u64>>(&cfg).steps_per_op()
}

/// Print the grid.
pub fn run(quick: bool) {
    println!("E10: additive (not multiplicative) contention overhead on the FR list\n");
    let ops: u64 = if quick { 3_000 } else { 15_000 };
    let sizes: &[u64] = if quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512]
    };
    let threads: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut header: Vec<String> = vec!["n".into()];
    header.extend(threads.iter().map(|t| format!("t={t}")));
    header.push("penalty (t_max - t=1)".into());
    header.push("penalty / n".into());
    let mut table = Table::new(header);

    for &n in sizes {
        let mut row: Vec<String> = vec![n.to_string()];
        let mut first = 0.0;
        let mut last = 0.0;
        for (i, &t) in threads.iter().enumerate() {
            let s = steps_per_op(n, t, ops);
            if i == 0 {
                first = s;
            }
            last = s;
            row.push(fmt_f(s));
        }
        let penalty = last - first;
        row.push(fmt_f(penalty));
        row.push(fmt_f(penalty / n as f64));
        table.row(row);
    }
    print!("{table}");
    println!(
        "\npaper claim: O(n + c) — the contention penalty column should not\n\
         grow proportionally to n (the 'penalty / n' column should shrink\n\
         as n grows). A Harris-style Ω(n·c) bound would keep it constant."
    );
}
