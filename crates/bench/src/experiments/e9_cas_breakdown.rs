//! E9 — C&S accounting by type (§3.4 billing scheme).
//!
//! The amortized analysis bills each failed C&S to the successful C&S
//! that caused it, and shows at most `c(S)` failures map to any
//! success. Empirically: per-type success/failure counts under hot-key
//! contention, with failures per operation staying bounded (they are
//! the `O(c)` term).

use lf_core::{FrList, SkipList};
use lf_metrics::CasType;
use lf_workloads::{KeyDist, Mix};

use crate::adapters::BenchMap;
use crate::runner::{run_mixed, RunConfig, RunResult};
use crate::table::{fmt_f, Table};

fn measure<M: BenchMap>(threads: usize, ops: u64) -> RunResult {
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops,
        mix: Mix::UPDATE_HEAVY,
        dist: KeyDist::Zipfian {
            space: 1024,
            theta: 0.99,
        },
        seed: 0xE9,
        prefill: 256,
    };
    run_mixed::<M>(&cfg)
}

fn print_breakdown(name: &str, res: &RunResult) {
    let mut table = Table::new(["cas type", "ok", "fail", "fail/1k ops"]);
    for ty in CasType::ALL {
        let ok = res.metrics.cas_ok[ty as usize];
        let fail = res.metrics.cas_fail[ty as usize];
        table.row([
            ty.label().to_string(),
            ok.to_string(),
            fail.to_string(),
            fmt_f(fail as f64 * 1000.0 / res.ops as f64),
        ]);
    }
    println!("{name} (zipf 0.99, update-heavy, 4 threads):");
    print!("{table}");
    println!(
        "total: {} ok, {} fail ({} fails/op)\n",
        res.metrics.cas_successes(),
        res.metrics.cas_failures(),
        fmt_f(res.metrics.cas_failures() as f64 / res.ops as f64),
    );
}

/// Print the per-type tables.
pub fn run(quick: bool) {
    println!("E9: C&S success/failure breakdown by type (paper Def. 4)\n");
    let ops: u64 = if quick { 8_000 } else { 40_000 };
    let fr = measure::<FrList<u64, u64>>(4, ops);
    print_breakdown("fr-list", &fr);
    let sl = measure::<SkipList<u64, u64>>(4, ops);
    print_breakdown("fr-skiplist", &sl);
    println!(
        "paper claim: every failure is billed to a concurrent successful C&S\n\
         and at most O(c) failures bill to each, so fails/op stays far below\n\
         the per-op step count even on a skewed hot-key workload.\n\
         (On a single-CPU host, preemption-based interleaving makes real\n\
         C&S failures rare; the deterministic scenarios below force each\n\
         failure type exactly.)\n"
    );
    scripted::run();
}

/// Part 2: deterministic single-interference scenarios on the step
/// scheduler. Each scenario pauses a *victim* operation right before
/// its C&S, lets one *interferer* complete, and resumes the victim —
/// producing the exact per-type attempt counts that Def. 4's billing
/// argument reasons about (one failure billed to the one concurrent
/// success).
mod scripted {
    use std::sync::Arc;

    use lf_sched::sim::SimFrList;
    use lf_sched::{Scheduler, StepKind};

    use crate::table::Table;

    pub(super) struct Counts {
        pub insert: u64,
        pub flag: u64,
        pub mark: u64,
        pub unlink: u64,
        pub backlinks: u64,
        pub result: bool,
    }

    fn counts(sched: &Scheduler, pid: usize, result: bool) -> Counts {
        Counts {
            insert: sched.steps_of(pid, StepKind::CasInsert),
            flag: sched.steps_of(pid, StepKind::CasFlag),
            mark: sched.steps_of(pid, StepKind::CasMark),
            unlink: sched.steps_of(pid, StepKind::CasUnlink),
            backlinks: sched.steps_of(pid, StepKind::Backlink),
            result,
        }
    }

    fn prefill(sched: &Scheduler, list: &Arc<SimFrList>, keys: &[i64]) {
        for &k in keys {
            let l = list.clone();
            let op = sched.spawn(move |p| l.insert(k, &p));
            sched.run_to_completion(op.pid());
            assert!(op.join());
        }
    }

    /// Victim insert paused pre-C&S; a same-position insert lands first.
    pub(super) fn insert_vs_insert() -> Counts {
        let sched = Scheduler::new();
        let list = Arc::new(SimFrList::new());
        prefill(&sched, &list, &[10, 20]);
        let l = list.clone();
        let victim = sched.spawn(move |p| l.insert(15, &p));
        assert!(sched.run_until_pending(victim.pid(), |k| k == StepKind::CasInsert));
        let l = list.clone();
        let rival = sched.spawn(move |p| l.insert(14, &p));
        sched.run_to_completion(rival.pid());
        assert!(rival.join());
        sched.run_to_completion(victim.pid());
        let pid = victim.pid();
        let r = victim.join();
        counts(&sched, pid, r)
    }

    /// Victim insert paused pre-C&S; its predecessor gets deleted.
    pub(super) fn insert_vs_delete_pred() -> Counts {
        let sched = Scheduler::new();
        let list = Arc::new(SimFrList::new());
        prefill(&sched, &list, &[10, 20]);
        let l = list.clone();
        let victim = sched.spawn(move |p| l.insert(25, &p));
        assert!(sched.run_until_pending(victim.pid(), |k| k == StepKind::CasInsert));
        let l = list.clone();
        let deleter = sched.spawn(move |p| l.delete(20, &p));
        sched.run_to_completion(deleter.pid());
        assert!(deleter.join());
        sched.run_to_completion(victim.pid());
        let pid = victim.pid();
        let r = victim.join();
        counts(&sched, pid, r)
    }

    /// Victim delete paused pre-flag; a rival deletes the node first.
    pub(super) fn delete_vs_delete_done() -> Counts {
        let sched = Scheduler::new();
        let list = Arc::new(SimFrList::new());
        prefill(&sched, &list, &[10, 20, 30]);
        let l = list.clone();
        let victim = sched.spawn(move |p| l.delete(20, &p));
        assert!(sched.run_until_pending(victim.pid(), |k| k == StepKind::CasFlag));
        let l = list.clone();
        let rival = sched.spawn(move |p| l.delete(20, &p));
        sched.run_to_completion(rival.pid());
        assert!(rival.join());
        sched.run_to_completion(victim.pid());
        let pid = victim.pid();
        let r = victim.join();
        counts(&sched, pid, r)
    }

    /// Victim delete paused pre-flag; the rival flags first but stalls
    /// before marking — the victim helps the rival's deletion through.
    pub(super) fn delete_helps_stalled_rival() -> (Counts, bool) {
        let sched = Scheduler::new();
        let list = Arc::new(SimFrList::new());
        prefill(&sched, &list, &[10, 20, 30]);
        let l = list.clone();
        let victim = sched.spawn(move |p| l.delete(20, &p));
        assert!(sched.run_until_pending(victim.pid(), |k| k == StepKind::CasFlag));
        let l = list.clone();
        let rival = sched.spawn(move |p| l.delete(20, &p));
        // Rival places the flag, then stalls before marking.
        assert!(sched.run_until_pending(rival.pid(), |k| k == StepKind::CasMark));
        // Victim must finish the rival's deletion (helping) and report
        // failure (the rival owns the success).
        sched.run_to_completion(victim.pid());
        let vpid = victim.pid();
        let vres = victim.join();
        let c = counts(&sched, vpid, vres);
        // Unstall the rival: it reports success.
        sched.run_to_completion(rival.pid());
        let rres = rival.join();
        (c, rres)
    }

    pub(super) fn run() {
        println!("scripted single-interference scenarios (fr-list, victim's attempts):");
        let mut table = Table::new([
            "scenario",
            "insert cas",
            "flag cas",
            "mark cas",
            "unlink cas",
            "backlinks",
            "victim result",
        ]);
        let s1 = insert_vs_insert();
        table.row([
            "insert vs insert".to_string(),
            s1.insert.to_string(),
            s1.flag.to_string(),
            s1.mark.to_string(),
            s1.unlink.to_string(),
            s1.backlinks.to_string(),
            format!("{}", s1.result),
        ]);
        let s2 = insert_vs_delete_pred();
        table.row([
            "insert vs delete-of-pred".to_string(),
            s2.insert.to_string(),
            s2.flag.to_string(),
            s2.mark.to_string(),
            s2.unlink.to_string(),
            s2.backlinks.to_string(),
            format!("{}", s2.result),
        ]);
        let s3 = delete_vs_delete_done();
        table.row([
            "delete vs completed delete".to_string(),
            s3.insert.to_string(),
            s3.flag.to_string(),
            s3.mark.to_string(),
            s3.unlink.to_string(),
            s3.backlinks.to_string(),
            format!("{}", s3.result),
        ]);
        let (s4, rival_ok) = delete_helps_stalled_rival();
        table.row([
            "delete helps stalled rival".to_string(),
            s4.insert.to_string(),
            s4.flag.to_string(),
            s4.mark.to_string(),
            s4.unlink.to_string(),
            s4.backlinks.to_string(),
            format!("{} (rival {})", s4.result, rival_ok),
        ]);
        print!("{table}");
        println!(
            "\nreading: one interference costs the victim exactly one extra C&S\n\
             of the corresponding type (billed to the interferer's success),\n\
             plus O(1) recovery — never a restart."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::scripted;

    #[test]
    fn insert_vs_insert_pays_exactly_one_extra_cas() {
        let c = scripted::insert_vs_insert();
        assert!(c.result);
        assert_eq!(c.insert, 2, "1 failed + 1 successful insertion C&S");
        assert_eq!(c.flag + c.mark + c.unlink, 0);
        assert_eq!(c.backlinks, 0);
    }

    #[test]
    fn insert_vs_delete_recovers_via_one_backlink() {
        let c = scripted::insert_vs_delete_pred();
        assert!(c.result);
        assert_eq!(c.insert, 2);
        assert_eq!(c.backlinks, 1, "one backlink hop, no restart");
    }

    #[test]
    fn losing_delete_fails_with_single_flag_attempt() {
        let c = scripted::delete_vs_delete_done();
        assert!(!c.result, "rival owns the deletion");
        assert!(c.flag <= 1);
        assert_eq!(c.mark + c.unlink, 0);
    }

    #[test]
    fn victim_helps_stalled_rival_to_completion() {
        let (c, rival_ok) = scripted::delete_helps_stalled_rival();
        assert!(!c.result, "rival owns the deletion");
        assert!(rival_ok, "rival still reports success after stalling");
        // The victim performed the rival's marking and unlinking.
        assert_eq!(c.mark, 1);
        assert_eq!(c.unlink, 1);
    }
}
