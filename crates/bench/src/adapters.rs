//! Uniform adapter over every dictionary implementation.

use lf_baselines::{
    CoarseLockList, HarrisList, HohLockList, LockSkipList, MichaelList, NoFlagList, RestartSkipList,
};
use lf_core::{FrList, SkipList};

/// A concurrent dictionary under benchmark: keys and values are `u64`.
pub trait BenchMap: Send + Sync + 'static {
    /// Per-thread operation handle.
    type Handle<'a>: MapHandle
    where
        Self: 'a;

    /// Create an empty instance.
    fn create() -> Self;

    /// Register the calling thread.
    fn bench_handle(&self) -> Self::Handle<'_>;

    /// Display name for tables.
    fn name() -> &'static str;

    /// Peak retired-but-unfreed object count of the map's reclamation
    /// domain, when it tracks one (see
    /// [`lf_metrics::UnreclaimedGauge`]). `None` for maps without a
    /// gauge-instrumented domain; the E14 cross-SMR adapters override
    /// this so the runner can report peak unreclaimed memory per run.
    fn peak_unreclaimed(&self) -> Option<u64> {
        None
    }
}

/// Per-thread operations on a [`BenchMap`].
pub trait MapHandle {
    /// Insert `k → k`; `true` on success.
    fn insert(&self, k: u64) -> bool;
    /// Remove `k`; `true` if it was present.
    fn remove(&self, k: u64) -> bool;
    /// Whether `k` is present.
    fn search(&self, k: u64) -> bool;
}

// ---- Fomitchev–Ruppert list ----

impl BenchMap for FrList<u64, u64> {
    type Handle<'a> = lf_core::ListHandle<'a, u64, u64>;

    fn create() -> Self {
        FrList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self.handle()
    }

    fn name() -> &'static str {
        "fr-list"
    }
}

impl MapHandle for lf_core::ListHandle<'_, u64, u64> {
    fn insert(&self, k: u64) -> bool {
        lf_core::ListHandle::insert(self, k, k).is_ok()
    }

    fn remove(&self, k: u64) -> bool {
        lf_core::ListHandle::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        lf_core::ListHandle::contains(self, &k)
    }
}

// ---- Fomitchev–Ruppert skip list ----

impl BenchMap for SkipList<u64, u64> {
    type Handle<'a> = lf_core::SkipListHandle<'a, u64, u64>;

    fn create() -> Self {
        SkipList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self.handle()
    }

    fn name() -> &'static str {
        "fr-skiplist"
    }
}

impl MapHandle for lf_core::SkipListHandle<'_, u64, u64> {
    fn insert(&self, k: u64) -> bool {
        lf_core::SkipListHandle::insert(self, k, k).is_ok()
    }

    fn remove(&self, k: u64) -> bool {
        lf_core::SkipListHandle::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        lf_core::SkipListHandle::contains(self, &k)
    }
}

// ---- Harris list ----

impl BenchMap for HarrisList<u64, u64> {
    type Handle<'a> = lf_baselines::HarrisHandle<'a, u64, u64>;

    fn create() -> Self {
        HarrisList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self.handle()
    }

    fn name() -> &'static str {
        "harris-list"
    }
}

impl MapHandle for lf_baselines::HarrisHandle<'_, u64, u64> {
    fn insert(&self, k: u64) -> bool {
        lf_baselines::HarrisHandle::insert(self, k, k)
    }

    fn remove(&self, k: u64) -> bool {
        lf_baselines::HarrisHandle::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        lf_baselines::HarrisHandle::contains(self, &k)
    }
}

// ---- No-flag ablation list ----

impl BenchMap for NoFlagList<u64, u64> {
    type Handle<'a> = lf_baselines::NoFlagHandle<'a, u64, u64>;

    fn create() -> Self {
        NoFlagList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self.handle()
    }

    fn name() -> &'static str {
        "noflag-list"
    }
}

impl MapHandle for lf_baselines::NoFlagHandle<'_, u64, u64> {
    fn insert(&self, k: u64) -> bool {
        lf_baselines::NoFlagHandle::insert(self, k, k)
    }

    fn remove(&self, k: u64) -> bool {
        lf_baselines::NoFlagHandle::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        lf_baselines::NoFlagHandle::contains(self, &k)
    }
}

// ---- Michael's hazard-pointer list ----

impl BenchMap for MichaelList<u64, u64> {
    type Handle<'a> = lf_baselines::MichaelHandle<'a, u64, u64>;

    fn create() -> Self {
        MichaelList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self.handle()
    }

    fn name() -> &'static str {
        "michael-list"
    }
}

impl MapHandle for lf_baselines::MichaelHandle<'_, u64, u64> {
    fn insert(&self, k: u64) -> bool {
        lf_baselines::MichaelHandle::insert(self, k, k)
    }

    fn remove(&self, k: u64) -> bool {
        lf_baselines::MichaelHandle::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        lf_baselines::MichaelHandle::contains(self, &k)
    }
}

// ---- Lock-based structures: the handle is the structure itself ----

impl BenchMap for CoarseLockList<u64, u64> {
    type Handle<'a> = &'a CoarseLockList<u64, u64>;

    fn create() -> Self {
        CoarseLockList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self
    }

    fn name() -> &'static str {
        "coarse-lock-list"
    }
}

impl MapHandle for &CoarseLockList<u64, u64> {
    fn insert(&self, k: u64) -> bool {
        CoarseLockList::insert(self, k, k)
    }

    fn remove(&self, k: u64) -> bool {
        CoarseLockList::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        CoarseLockList::contains(self, &k)
    }
}

impl BenchMap for HohLockList<u64, u64> {
    type Handle<'a> = &'a HohLockList<u64, u64>;

    fn create() -> Self {
        HohLockList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self
    }

    fn name() -> &'static str {
        "hoh-lock-list"
    }
}

impl MapHandle for &HohLockList<u64, u64> {
    fn insert(&self, k: u64) -> bool {
        HohLockList::insert(self, k, k)
    }

    fn remove(&self, k: u64) -> bool {
        HohLockList::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        HohLockList::contains(self, &k)
    }
}

impl BenchMap for LockSkipList<u64, u64> {
    type Handle<'a> = &'a LockSkipList<u64, u64>;

    fn create() -> Self {
        LockSkipList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self
    }

    fn name() -> &'static str {
        "lock-skiplist"
    }
}

impl MapHandle for &LockSkipList<u64, u64> {
    fn insert(&self, k: u64) -> bool {
        LockSkipList::insert(self, k, k)
    }

    fn remove(&self, k: u64) -> bool {
        LockSkipList::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        LockSkipList::contains(self, &k)
    }
}

// ---- Restart-based skip list ----

impl BenchMap for RestartSkipList<u64, u64> {
    type Handle<'a> = lf_baselines::RestartHandle<'a, u64, u64>;

    fn create() -> Self {
        RestartSkipList::new()
    }

    fn bench_handle(&self) -> Self::Handle<'_> {
        self.handle()
    }

    fn name() -> &'static str {
        "restart-skiplist"
    }
}

impl MapHandle for lf_baselines::RestartHandle<'_, u64, u64> {
    fn insert(&self, k: u64) -> bool {
        lf_baselines::RestartHandle::insert(self, k, k)
    }

    fn remove(&self, k: u64) -> bool {
        lf_baselines::RestartHandle::remove(self, &k).is_some()
    }

    fn search(&self, k: u64) -> bool {
        lf_baselines::RestartHandle::contains(self, &k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<M: BenchMap>() {
        let m = M::create();
        let h = m.bench_handle();
        assert!(h.insert(5));
        assert!(!h.insert(5));
        assert!(h.search(5));
        assert!(h.remove(5));
        assert!(!h.remove(5));
        assert!(!h.search(5));
    }

    #[test]
    fn all_adapters_roundtrip() {
        exercise::<MichaelList<u64, u64>>();
        exercise::<FrList<u64, u64>>();
        exercise::<SkipList<u64, u64>>();
        exercise::<HarrisList<u64, u64>>();
        exercise::<NoFlagList<u64, u64>>();
        exercise::<CoarseLockList<u64, u64>>();
        exercise::<HohLockList<u64, u64>>();
        exercise::<LockSkipList<u64, u64>>();
        exercise::<RestartSkipList<u64, u64>>();
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            MichaelList::<u64, u64>::name(),
            FrList::<u64, u64>::name(),
            SkipList::<u64, u64>::name(),
            HarrisList::<u64, u64>::name(),
            NoFlagList::<u64, u64>::name(),
            CoarseLockList::<u64, u64>::name(),
            HohLockList::<u64, u64>::name(),
            LockSkipList::<u64, u64>::name(),
            RestartSkipList::<u64, u64>::name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
