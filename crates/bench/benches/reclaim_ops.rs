//! Criterion: epoch-reclamation substrate costs — pin/unpin, deferred
//! retirement, and collection cadence. These bound the constant-factor
//! overhead every list/skip list operation pays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lf_reclaim::Collector;

fn bench_reclaim(c: &mut Criterion) {
    let mut g = c.benchmark_group("reclaim_ops");
    g.sample_size(20);

    g.bench_function("pin_unpin", |b| {
        let collector = Collector::new();
        let handle = collector.register();
        b.iter(|| {
            black_box(handle.pin());
        })
    });

    g.bench_function("nested_pin", |b| {
        let collector = Collector::new();
        let handle = collector.register();
        let _outer = handle.pin();
        b.iter(|| {
            black_box(handle.pin());
        })
    });

    g.bench_function("defer_drop_box", |b| {
        let collector = Collector::new();
        let handle = collector.register();
        b.iter(|| {
            let guard = handle.pin();
            let p = Box::into_raw(Box::new(0u64));
            unsafe { guard.defer_drop_box(p) };
        })
    });

    g.bench_function("flush_with_1k_garbage", |b| {
        let collector = Collector::new();
        let handle = collector.register();
        b.iter(|| {
            {
                let guard = handle.pin();
                for _ in 0..1_000 {
                    let p = Box::into_raw(Box::new(0u64));
                    unsafe { guard.defer_drop_box(p) };
                }
            }
            for _ in 0..4 {
                handle.flush();
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_reclaim);
criterion_main!(benches);
