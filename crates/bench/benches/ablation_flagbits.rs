//! Criterion: flag-bit ablation as wall clock — FR list vs the
//! backlinks-without-flags variant on a tail-hotspot churn (the E8
//! workload measured in time rather than steps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lf_baselines::NoFlagList;
use lf_bench::adapters::{BenchMap, MapHandle};
use lf_core::FrList;
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

const BATCH: u64 = 1_000;

fn batch<M: BenchMap>() -> impl FnMut() {
    let map = M::create();
    {
        let h = map.bench_handle();
        for k in (0..512).step_by(2) {
            h.insert(k);
        }
    }
    let mut w = WorkloadIter::new(
        Mix::CHURN,
        KeyDist::Tail {
            space: 512,
            width: 16,
        },
        13,
    );
    move || {
        let h = map.bench_handle();
        for _ in 0..BATCH {
            let op = w.next_op();
            let r = match op.kind {
                OpKind::Insert => h.insert(op.key),
                OpKind::Remove => h.remove(op.key),
                OpKind::Search => h.search(op.key),
            };
            black_box(r);
        }
    }
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flagbits");
    g.sample_size(10);
    let mut fr = batch::<FrList<u64, u64>>();
    g.bench_function(BenchmarkId::new("fr-list", "tail-churn"), |b| {
        b.iter(&mut fr)
    });
    let mut nf = batch::<NoFlagList<u64, u64>>();
    g.bench_function(BenchmarkId::new("noflag-list", "tail-churn"), |b| {
        b.iter(&mut nf)
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
