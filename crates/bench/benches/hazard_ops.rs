//! Criterion: hazard-pointer substrate costs next to the epoch scheme —
//! the protect/validate hop tax Michael's list pays per node versus the
//! once-per-operation pin the FR structures pay.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::AtomicPtr;

use lf_hazard::Domain;
use lf_reclaim::Collector;

fn bench_hazard(c: &mut Criterion) {
    let mut g = c.benchmark_group("hazard_ops");
    g.sample_size(20);

    g.bench_function("protect_validate", |b| {
        let domain = Domain::new();
        let h = domain.register();
        let target = Box::into_raw(Box::new(7u64));
        let src = AtomicPtr::new(target);
        b.iter(|| {
            black_box(h.protect(0, &src));
        });
        h.clear(0);
        unsafe { drop(Box::from_raw(target)) };
    });

    g.bench_function("retire_with_scan_cadence", |b| {
        let domain = Domain::new();
        let h = domain.register();
        b.iter(|| {
            let p = Box::into_raw(Box::new(0u64));
            unsafe { h.retire(p) };
        });
    });

    // Side-by-side: the per-operation cost each scheme charges a
    // traversal of 16 nodes (16 protects vs 1 pin).
    g.bench_function("hazard_16_hops", |b| {
        let domain = Domain::new();
        let h = domain.register();
        let target = Box::into_raw(Box::new(7u64));
        let src = AtomicPtr::new(target);
        b.iter(|| {
            for _ in 0..16 {
                black_box(h.protect(0, &src));
            }
            h.clear(0);
        });
        unsafe { drop(Box::from_raw(target)) };
    });

    g.bench_function("epoch_pin_per_op", |b| {
        let collector = Collector::new();
        let handle = collector.register();
        b.iter(|| {
            let _g = black_box(handle.pin());
            // 16 hops under one pin cost nothing extra.
        });
    });

    g.finish();
}

criterion_group!(benches, bench_hazard);
criterion_main!(benches);
