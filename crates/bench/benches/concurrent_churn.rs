//! Criterion: multi-threaded churn wall time (4 threads), measured via
//! `iter_custom` so each sample is one complete multi-thread run.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lf_baselines::{CoarseLockList, HarrisList, LockSkipList, RestartSkipList};
use lf_bench::adapters::{BenchMap, MapHandle};
use lf_core::{FrList, SkipList};
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 2_000;

fn timed_run<M: BenchMap>(space: u64, iters: u64) -> Duration {
    let mut total = Duration::ZERO;
    for round in 0..iters {
        let map = M::create();
        {
            let h = map.bench_handle();
            for k in (0..space).step_by(4) {
                h.insert(k);
            }
        }
        let barrier = std::sync::Barrier::new(THREADS + 1);
        let mut start = None;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let map = &map;
                let barrier = &barrier;
                let seed = round * 131 + t as u64;
                s.spawn(move || {
                    let h = map.bench_handle();
                    let mut w = WorkloadIter::new(Mix::CHURN, KeyDist::Uniform { space }, seed);
                    barrier.wait();
                    for _ in 0..OPS_PER_THREAD {
                        let op = w.next_op();
                        match op.kind {
                            OpKind::Insert => h.insert(op.key),
                            OpKind::Remove => h.remove(op.key),
                            OpKind::Search => h.search(op.key),
                        };
                    }
                });
            }
            start = Some(Instant::now());
            barrier.wait();
        });
        total += start.expect("started").elapsed();
    }
    total
}

fn bench_concurrent(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrent_churn_4t");
    g.sample_size(10);

    macro_rules! one {
        ($ty:ty, $space:expr) => {{
            g.bench_function(BenchmarkId::new(<$ty>::name(), $space), |b| {
                b.iter_custom(|iters| timed_run::<$ty>($space, iters))
            });
        }};
    }
    one!(FrList<u64, u64>, 512u64);
    one!(HarrisList<u64, u64>, 512u64);
    one!(CoarseLockList<u64, u64>, 512u64);
    one!(SkipList<u64, u64>, 8_192u64);
    one!(RestartSkipList<u64, u64>, 8_192u64);
    one!(LockSkipList<u64, u64>, 8_192u64);
    g.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);
