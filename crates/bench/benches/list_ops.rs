//! Criterion: single-threaded operation cost of every list, per size.
//!
//! Regenerates the E4 comparison as wall-clock numbers: batches of a
//! fixed churn+search mix against each list implementation at two
//! steady sizes. Complements the `experiments e4` table (which measures
//! multi-threaded throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lf_baselines::{CoarseLockList, HarrisList, HohLockList, MichaelList, NoFlagList};
use lf_bench::adapters::{BenchMap, MapHandle};
use lf_core::FrList;
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

const BATCH: u64 = 1_000;

fn batch<M: BenchMap>(n: u64) -> impl FnMut() {
    let map = M::create();
    {
        let h = map.bench_handle();
        for k in (0..2 * n).step_by(2) {
            h.insert(k);
        }
    }
    let mut w = WorkloadIter::new(Mix::UPDATE_HEAVY, KeyDist::Uniform { space: 2 * n }, 7);
    move || {
        let h = map.bench_handle();
        for _ in 0..BATCH {
            let op = w.next_op();
            let r = match op.kind {
                OpKind::Insert => h.insert(op.key),
                OpKind::Remove => h.remove(op.key),
                OpKind::Search => h.search(op.key),
            };
            black_box(r);
        }
    }
}

fn bench_lists(c: &mut Criterion) {
    let mut g = c.benchmark_group("list_ops");
    g.sample_size(10);
    for n in [128u64, 512] {
        macro_rules! one {
            ($ty:ty) => {{
                let mut f = batch::<$ty>(n);
                g.bench_function(BenchmarkId::new(<$ty>::name(), n), |b| b.iter(&mut f));
            }};
        }
        one!(FrList<u64, u64>);
        one!(HarrisList<u64, u64>);
        one!(MichaelList<u64, u64>);
        one!(NoFlagList<u64, u64>);
        one!(CoarseLockList<u64, u64>);
        one!(HohLockList<u64, u64>);
    }
    g.finish();
}

criterion_group!(benches, bench_lists);
criterion_main!(benches);
