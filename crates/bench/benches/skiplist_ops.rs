//! Criterion: skip list operation cost — FR vs restart vs lock-based —
//! plus the E5 search-scaling series as wall-clock measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lf_baselines::{LockSkipList, RestartSkipList};
use lf_bench::adapters::{BenchMap, MapHandle};
use lf_core::SkipList;
use lf_workloads::{KeyDist, Mix, OpKind, WorkloadIter};

const BATCH: u64 = 1_000;

fn batch<M: BenchMap>(n: u64, mix: Mix) -> impl FnMut() {
    let map = M::create();
    {
        let h = map.bench_handle();
        for k in (0..2 * n).step_by(2) {
            h.insert(k);
        }
    }
    let mut w = WorkloadIter::new(mix, KeyDist::Uniform { space: 2 * n }, 11);
    move || {
        let h = map.bench_handle();
        for _ in 0..BATCH {
            let op = w.next_op();
            let r = match op.kind {
                OpKind::Insert => h.insert(op.key),
                OpKind::Remove => h.remove(op.key),
                OpKind::Search => h.search(op.key),
            };
            black_box(r);
        }
    }
}

fn bench_skiplists(c: &mut Criterion) {
    let mut g = c.benchmark_group("skiplist_ops");
    g.sample_size(10);
    for n in [1_024u64, 8_192] {
        macro_rules! one {
            ($ty:ty) => {{
                let mut f = batch::<$ty>(n, Mix::UPDATE_HEAVY);
                g.bench_function(BenchmarkId::new(<$ty>::name(), n), |b| b.iter(&mut f));
            }};
        }
        one!(SkipList<u64, u64>);
        one!(RestartSkipList<u64, u64>);
        one!(LockSkipList<u64, u64>);
    }
    g.finish();

    // E5 as wall clock: searches only, growing n (log-shaped).
    let mut g = c.benchmark_group("skiplist_search_scaling");
    g.sample_size(10);
    for n in [1_024u64, 4_096, 16_384, 65_536] {
        let mut f = batch::<SkipList<u64, u64>>(n, Mix::new(0, 0, 100));
        g.bench_function(BenchmarkId::new("fr-skiplist-search", n), |b| {
            b.iter(&mut f)
        });
    }
    g.finish();

    // Design ablation: the configured level cap. Too few levels
    // degenerate towards the flat list; beyond ~log2(n) extra levels
    // cost (almost) nothing.
    let mut g = c.benchmark_group("skiplist_max_level_ablation");
    g.sample_size(10);
    const N: u64 = 16_384;
    for max_level in [4usize, 8, 16, 32] {
        let sl = SkipList::<u64, u64>::with_max_level(max_level);
        {
            let h = sl.handle();
            for k in (0..2 * N).step_by(2) {
                let _ = h.insert(k, k);
            }
        }
        let mut w = WorkloadIter::new(Mix::new(0, 0, 100), KeyDist::Uniform { space: 2 * N }, 17);
        g.bench_function(BenchmarkId::new("search-16k", max_level), |b| {
            b.iter(|| {
                let h = sl.handle();
                for _ in 0..BATCH {
                    let op = w.next_op();
                    black_box(h.contains(&op.key));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_skiplists);
criterion_main!(benches);
