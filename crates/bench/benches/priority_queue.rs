//! Criterion: the skip-list priority queue (DeleteMin application, §2)
//! against a mutex-protected binary heap — single-thread batches and a
//! 4-thread producer/consumer run.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lf_baselines::LockedHeap;
use lf_core::PriorityQueue;

const BATCH: u64 = 1_000;

fn bench_pq(c: &mut Criterion) {
    let mut g = c.benchmark_group("priority_queue_single_thread");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("skiplist-pq", "push-pop"), |b| {
        let pq = PriorityQueue::new();
        let h = pq.handle();
        let mut x = 1u64;
        b.iter(|| {
            for _ in 0..BATCH {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.push((x >> 33) % 256, x);
            }
            for _ in 0..BATCH {
                black_box(h.pop());
            }
        })
    });

    g.bench_function(BenchmarkId::new("locked-heap", "push-pop"), |b| {
        let q = LockedHeap::new();
        let mut x = 1u64;
        b.iter(|| {
            for _ in 0..BATCH {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.push((x >> 33) % 256, x);
            }
            for _ in 0..BATCH {
                black_box(q.pop());
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("priority_queue_4_threads");
    g.sample_size(10);

    fn concurrent_skiplist_pq(iters: u64) -> Duration {
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let pq = PriorityQueue::new();
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..2u64 {
                    let pq = &pq;
                    s.spawn(move || {
                        let h = pq.handle();
                        for i in 0..BATCH {
                            h.push((t * BATCH + i) % 256, i);
                        }
                    });
                }
                for _ in 0..2 {
                    let pq = &pq;
                    s.spawn(move || {
                        let h = pq.handle();
                        let mut got = 0;
                        while got < BATCH {
                            if h.pop().is_some() {
                                got += 1;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
            total += start.elapsed();
        }
        total
    }

    fn concurrent_locked_heap(iters: u64) -> Duration {
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let q = LockedHeap::new();
            let start = Instant::now();
            std::thread::scope(|s| {
                for t in 0..2u64 {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..BATCH {
                            q.push((t * BATCH + i) % 256, i);
                        }
                    });
                }
                for _ in 0..2 {
                    let q = &q;
                    s.spawn(move || {
                        let mut got = 0;
                        while got < BATCH {
                            if q.pop().is_some() {
                                got += 1;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
            total += start.elapsed();
        }
        total
    }

    g.bench_function(BenchmarkId::new("skiplist-pq", "2prod-2cons"), |b| {
        b.iter_custom(concurrent_skiplist_pq)
    });
    g.bench_function(BenchmarkId::new("locked-heap", "2prod-2cons"), |b| {
        b.iter_custom(concurrent_locked_heap)
    });
    g.finish();
}

criterion_group!(benches, bench_pq);
criterion_main!(benches);
