//! Deterministic step-machine scheduler for adversarial executions.
//!
//! The paper's lower-bound arguments (§3.1) construct *specific
//! interleavings*: "P_q marks a node right after P_1…P_{q−1} have
//! located the correct insertion position, but before any of them
//! perform a C&S". Real threads cannot be made to interleave that way
//! reliably, so this crate provides a cooperative scheduler:
//!
//! * each simulated process runs on its own OS thread, but **before
//!   every shared-memory step** it announces the step's [`StepKind`]
//!   and blocks until the director grants it;
//! * at most one process executes between grants, so the execution is
//!   sequentially consistent and fully determined by the grant order;
//! * the director inspects each process's *pending* step and can pause
//!   it right before a C&S, run another process to completion, then
//!   resume — exactly the adversary of the paper;
//! * every granted step is counted per process and per kind, giving
//!   the step totals the amortized analysis reasons about.
//!
//! The [`sim`] module re-implements the Fomitchev–Ruppert and Harris
//! list algorithms over this scheduler (keys only, no reclamation);
//! `lf-bench`'s experiment E2 uses them to regenerate the `Ω(n̄·c̄)`
//! versus `O(n̄ + c̄)` separation deterministically. Halting a process
//! forever (simply never granting it) doubles as failure injection for
//! lock-freedom tests.
//!
//! # Examples
//!
//! ```
//! use lf_sched::{Scheduler, StepKind};
//!
//! let sched = Scheduler::new();
//! let op = sched.spawn(|proc| {
//!     proc.step(StepKind::Read);
//!     proc.step(StepKind::CasInsert);
//!     42
//! });
//! // Run until the process is about to CAS, then let it finish.
//! let pid = op.pid();
//! assert!(sched.run_until_pending(pid, |k| k == StepKind::CasInsert));
//! sched.run_to_completion(pid);
//! assert_eq!(op.join(), 42);
//! assert_eq!(sched.steps(pid), 2);
//! ```

pub mod rt;
pub mod sim;

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Identifies a simulated process.
pub type ProcId = usize;

/// The kind of shared-memory step a process is about to take.
///
/// The C&S kinds mirror the paper's Def. 4 classification; `Read`,
/// `Write`, `Traverse` and `Backlink` cover the non-C&S steps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StepKind {
    /// Load of a shared field.
    Read,
    /// Store to a shared field (e.g. setting a backlink).
    Write,
    /// Advancing a traversal pointer to the next node.
    Traverse,
    /// Following a backlink pointer.
    Backlink,
    /// Type-1 C&S: insertion.
    CasInsert,
    /// Type-2 C&S: flagging.
    CasFlag,
    /// Type-3 C&S: marking.
    CasMark,
    /// Type-4 C&S: physical deletion.
    CasUnlink,
}

impl StepKind {
    /// Whether this is any C&S attempt.
    pub fn is_cas(self) -> bool {
        matches!(
            self,
            StepKind::CasInsert | StepKind::CasFlag | StepKind::CasMark | StepKind::CasUnlink
        )
    }
}

#[derive(Default)]
struct ProcState {
    pending: Option<StepKind>,
    granted: usize,
    finished: bool,
    steps: u64,
    by_kind: HashMap<StepKind, u64>,
}

#[derive(Default)]
struct State {
    procs: Vec<ProcState>,
}

struct SchedInner {
    state: Mutex<State>,
    /// Signalled whenever any process settles (announces a step or
    /// finishes); the director waits here.
    director_cv: Condvar,
    /// One condvar per process, signalled when that process is granted
    /// steps — avoids thundering-herd wakeups with hundreds of
    /// suspended processes.
    proc_cvs: Mutex<Vec<Arc<Condvar>>>,
}

impl SchedInner {
    fn proc_cv(&self, pid: ProcId) -> Arc<Condvar> {
        self.proc_cvs.lock().unwrap()[pid].clone()
    }
}

/// The director's handle to the cooperative scheduler.
pub struct Scheduler {
    inner: Arc<SchedInner>,
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.state.lock().unwrap();
        f.debug_struct("Scheduler")
            .field("procs", &st.procs.len())
            .finish()
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// A running simulated operation; join it for the result.
pub struct OpHandle<R> {
    pid: ProcId,
    thread: JoinHandle<R>,
}

impl<R> OpHandle<R> {
    /// The process id driving this operation.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Wait for the operation's thread to finish and take its result.
    ///
    /// # Panics
    ///
    /// Panics if the operation thread panicked.
    pub fn join(self) -> R {
        self.thread.join().expect("simulated operation panicked")
    }
}

/// A process's own handle: call [`Proc::step`] before every
/// shared-memory access.
pub struct Proc {
    inner: Arc<SchedInner>,
    pid: ProcId,
}

impl Proc {
    /// The process id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Announce the next step and block until the director grants it.
    pub fn step(&self, kind: StepKind) {
        let cv = self.inner.proc_cv(self.pid);
        let mut st = self.inner.state.lock().unwrap();
        st.procs[self.pid].pending = Some(kind);
        self.inner.director_cv.notify_all();
        while st.procs[self.pid].granted == 0 {
            st = cv.wait(st).unwrap();
        }
        let p = &mut st.procs[self.pid];
        p.granted -= 1;
        p.pending = None;
        p.steps += 1;
        *p.by_kind.entry(kind).or_insert(0) += 1;
        self.inner.director_cv.notify_all();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.procs[self.pid].finished = true;
        self.inner.director_cv.notify_all();
    }
}

/// What [`Scheduler::peek`] observed about a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Observation {
    /// The process is blocked about to take this step.
    Pending(StepKind),
    /// The process's operation has completed.
    Finished,
}

impl Scheduler {
    /// Create a scheduler with no processes.
    pub fn new() -> Self {
        Scheduler {
            inner: Arc::new(SchedInner {
                state: Mutex::new(State::default()),
                director_cv: Condvar::new(),
                proc_cvs: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Spawn a simulated operation. Its thread immediately blocks at
    /// its first [`Proc::step`] until granted.
    pub fn spawn<R, F>(&self, f: F) -> OpHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(Proc) -> R + Send + 'static,
    {
        let pid = {
            let mut st = self.inner.state.lock().unwrap();
            st.procs.push(ProcState::default());
            self.inner
                .proc_cvs
                .lock()
                .unwrap()
                .push(Arc::new(Condvar::new()));
            st.procs.len() - 1
        };
        let proc = Proc {
            inner: self.inner.clone(),
            pid,
        };
        let thread = std::thread::spawn(move || f(proc));
        OpHandle { pid, thread }
    }

    /// Wait until `pid` is blocked on a pending step or has finished.
    pub fn peek(&self, pid: ProcId) -> Observation {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let p = &st.procs[pid];
            // A process holding unconsumed grants (or between steps) is
            // "running"; wait for it to settle at its next announce.
            if p.finished {
                return Observation::Finished;
            }
            if p.granted == 0 {
                if let Some(kind) = p.pending {
                    return Observation::Pending(kind);
                }
            }
            st = self.inner.director_cv.wait(st).unwrap();
        }
    }

    /// Grant `pid` permission to execute its next `n` steps, and wait
    /// until it has consumed them and settled (blocked at its next
    /// announce, or finished).
    ///
    /// Waiting for the *next* announce is what makes the grant
    /// synchronous: a step's shared-memory operation executes after
    /// [`Proc::step`] returns but before the process's next announce,
    /// so once the process settles the granted operations are visible
    /// to the director and to every process it runs afterwards.
    /// Without this, "at most one process executes between grants"
    /// would only hold when the OS happened to schedule the grantee
    /// promptly.
    pub fn grant(&self, pid: ProcId, n: usize) {
        let cv = self.inner.proc_cv(pid);
        let mut st = self.inner.state.lock().unwrap();
        st.procs[pid].granted += n;
        cv.notify_all();
        loop {
            let p = &st.procs[pid];
            if p.finished || (p.granted == 0 && p.pending.is_some()) {
                return;
            }
            st = self.inner.director_cv.wait(st).unwrap();
        }
    }

    /// Run `pid` until its *next pending* step satisfies `pred`
    /// (without executing that step), or until the operation finishes.
    /// Returns `true` if paused at a matching step, `false` if the
    /// operation finished first.
    pub fn run_until_pending(&self, pid: ProcId, pred: impl Fn(StepKind) -> bool) -> bool {
        loop {
            match self.peek(pid) {
                Observation::Finished => return false,
                Observation::Pending(kind) => {
                    if pred(kind) {
                        return true;
                    }
                    self.grant(pid, 1);
                }
            }
        }
    }

    /// Grant steps until the operation finishes.
    pub fn run_to_completion(&self, pid: ProcId) {
        loop {
            match self.peek(pid) {
                Observation::Finished => return,
                Observation::Pending(_) => self.grant(pid, 1),
            }
        }
    }

    /// Total steps executed by `pid`.
    pub fn steps(&self, pid: ProcId) -> u64 {
        self.inner.state.lock().unwrap().procs[pid].steps
    }

    /// Steps of one kind executed by `pid`.
    pub fn steps_of(&self, pid: ProcId, kind: StepKind) -> u64 {
        self.inner.state.lock().unwrap().procs[pid]
            .by_kind
            .get(&kind)
            .copied()
            .unwrap_or(0)
    }

    /// Total steps across all processes.
    pub fn total_steps(&self) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap()
            .procs
            .iter()
            .map(|p| p.steps)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_runs_to_completion() {
        let sched = Scheduler::new();
        let op = sched.spawn(|p| {
            for _ in 0..10 {
                p.step(StepKind::Read);
            }
            "done"
        });
        sched.run_to_completion(op.pid());
        assert_eq!(op.join(), "done");
        assert_eq!(sched.steps(0), 10);
        assert_eq!(sched.steps_of(0, StepKind::Read), 10);
    }

    #[test]
    fn pause_before_cas() {
        let sched = Scheduler::new();
        let op = sched.spawn(|p| {
            p.step(StepKind::Read);
            p.step(StepKind::Read);
            p.step(StepKind::CasInsert);
            p.step(StepKind::Read);
        });
        assert!(sched.run_until_pending(op.pid(), StepKind::is_cas));
        // Exactly the two reads have executed.
        assert_eq!(sched.steps(op.pid()), 2);
        sched.run_to_completion(op.pid());
        op.join();
        assert_eq!(sched.steps(0), 4);
    }

    #[test]
    fn interleaving_is_director_controlled() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sched = Scheduler::new();
        let shared = Arc::new(AtomicUsize::new(0));

        let s1 = shared.clone();
        let a = sched.spawn(move |p| {
            p.step(StepKind::Write);
            s1.store(1, Ordering::SeqCst);
        });
        let s2 = shared.clone();
        let b = sched.spawn(move |p| {
            p.step(StepKind::Write);
            s2.store(2, Ordering::SeqCst);
        });

        // Direct B first, then A: final value must be 1.
        sched.run_to_completion(b.pid());
        sched.run_to_completion(a.pid());
        a.join();
        b.join();
        assert_eq!(shared.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn halted_process_never_runs() {
        let sched = Scheduler::new();
        let stalled = sched.spawn(|p| {
            p.step(StepKind::CasMark);
        });
        let worker = sched.spawn(|p| {
            p.step(StepKind::Read);
            7
        });
        // Never grant `stalled` anything.
        sched.run_to_completion(worker.pid());
        assert_eq!(worker.join(), 7);
        assert_eq!(sched.steps(stalled.pid()), 0);
        // Clean up the stalled thread so the test exits.
        sched.run_to_completion(stalled.pid());
        stalled.join();
    }

    #[test]
    fn write_is_not_a_cas() {
        assert!(!StepKind::Write.is_cas());
        assert!(StepKind::CasFlag.is_cas());
    }
}
