//! A minimal hand-rolled executor: `block_on` plus a fixed round-robin
//! task set, enough to drive `lf-async`'s futures without pulling an
//! async runtime into the workspace.
//!
//! Wakers are thread-parking tokens: [`block_on`] parks the calling OS
//! thread and its waker unparks it; [`run_all`] multiplexes N futures
//! on the calling thread with one ready-flag per task, polling only
//! tasks whose flag is raised and parking when none is. Both are
//! deliberately tiny — correctness (no lost wakeups, no busy spinning)
//! over throughput tricks — because the service being driven does its
//! real work on its own lane workers.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Parks the polling thread; `wake` raises a ready flag and unparks.
struct ThreadWaker {
    thread: Thread,
    ready: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        // Release pairs with the Acquire swap in the poll loop: any
        // state the waking thread wrote before `wake` is visible to
        // the woken task's next poll.
        self.ready.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

impl ThreadWaker {
    fn new() -> Arc<Self> {
        Arc::new(ThreadWaker {
            thread: std::thread::current(),
            ready: AtomicBool::new(true),
        })
    }

    /// Lower the flag, returning whether it was raised.
    fn take_ready(&self) -> bool {
        self.ready.swap(false, Ordering::Acquire)
    }
}

/// Drive `fut` to completion on the calling thread.
///
/// Spurious unparks (e.g. from an unrelated `Thread::unpark`) are
/// harmless: the loop re-polls only when the ready flag is raised and
/// re-parks otherwise.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let waker_impl = ThreadWaker::new();
    let waker = Waker::from(Arc::clone(&waker_impl));
    let mut cx = Context::from_waker(&waker);
    // SAFETY: `fut` is shadowed and never moved again — pinning it to
    // this stack slot upholds `Pin`'s contract for the loop below.
    let mut fut = std::pin::pin!(fut);
    loop {
        if waker_impl.take_ready() {
            if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
                return out;
            }
        } else {
            std::thread::park();
        }
    }
}

/// Drive `fut` until it resolves *or* `progressed` reports true after
/// a `Pending` poll, parking between polls exactly as [`block_on`]
/// does. Returns `Some(output)` on completion, `None` once the
/// predicate holds (the future stays live in the caller's hands and
/// can be awaited later with a fresh waker).
///
/// This is the submission primitive a pipelining front end needs over
/// lazily-submitted operations: poll each one until its request has
/// *entered its queue* (the predicate), without waiting for the
/// result — so requests enqueue in dispatch order even when a full
/// queue bounces some polls.
pub fn block_on_until<F: Future + Unpin>(
    fut: &mut F,
    mut progressed: impl FnMut(&F) -> bool,
) -> Option<F::Output> {
    let waker_impl = ThreadWaker::new();
    let waker = Waker::from(Arc::clone(&waker_impl));
    let mut cx = Context::from_waker(&waker);
    loop {
        if waker_impl.take_ready() {
            match Pin::new(&mut *fut).poll(&mut cx) {
                Poll::Ready(out) => return Some(out),
                Poll::Pending => {
                    if progressed(fut) {
                        return None;
                    }
                }
            }
        } else {
            std::thread::park();
        }
    }
}

/// Drive a set of boxed futures to completion concurrently on the
/// calling thread, returning their outputs in submission order.
///
/// Each task gets its own waker/ready flag, so a completion on one
/// task never forces a re-poll of the others (no thundering poll).
/// This models a request-per-task runtime closely enough for closed-
/// loop benchmarking: many in-flight operations, one driver thread.
pub fn run_all<T>(futs: Vec<Pin<Box<dyn Future<Output = T> + Send>>>) -> Vec<T> {
    struct Task<T> {
        fut: Pin<Box<dyn Future<Output = T> + Send>>,
        waker_impl: Arc<ThreadWaker>,
        waker: Waker,
        out: Option<T>,
    }
    let mut tasks: Vec<Task<T>> = futs
        .into_iter()
        .map(|fut| {
            let waker_impl = ThreadWaker::new();
            let waker = Waker::from(Arc::clone(&waker_impl));
            Task {
                fut,
                waker_impl,
                waker,
                out: None,
            }
        })
        .collect();
    let mut remaining = tasks.len();
    while remaining > 0 {
        let mut progressed = false;
        for task in tasks.iter_mut() {
            if task.out.is_some() || !task.waker_impl.take_ready() {
                continue;
            }
            progressed = true;
            let mut cx = Context::from_waker(&task.waker);
            if let Poll::Ready(v) = task.fut.as_mut().poll(&mut cx) {
                task.out = Some(v);
                remaining -= 1;
            }
        }
        if remaining > 0 && !progressed {
            // Nothing was ready; sleep until some waker unparks us.
            // A wake that lands between the scan and this park just
            // turns the park into a no-op (the unpark token persists).
            std::thread::park();
        }
    }
    tasks
        .into_iter()
        .map(|t| t.out.expect("all tasks completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_crosses_threads() {
        struct Chan {
            val: std::sync::Mutex<Option<u32>>,
            waker: std::sync::Mutex<Option<Waker>>,
        }
        let chan = Arc::new(Chan {
            val: std::sync::Mutex::new(None),
            waker: std::sync::Mutex::new(None),
        });
        let c2 = Arc::clone(&chan);
        let t = std::thread::spawn(move || {
            *c2.val.lock().unwrap() = Some(7);
            if let Some(w) = c2.waker.lock().unwrap().take() {
                w.wake();
            }
        });
        let got = block_on(std::future::poll_fn(move |cx| {
            if let Some(v) = *chan.val.lock().unwrap() {
                return Poll::Ready(v);
            }
            *chan.waker.lock().unwrap() = Some(cx.waker().clone());
            if let Some(v) = *chan.val.lock().unwrap() {
                return Poll::Ready(v);
            }
            Poll::Pending
        }));
        t.join().unwrap();
        assert_eq!(got, 7);
    }

    #[test]
    fn run_all_preserves_order_and_interleaves() {
        let futs: Vec<Pin<Box<dyn Future<Output = usize> + Send>>> = (0..10usize)
            .map(|i| {
                let mut yields = i % 3;
                Box::pin(std::future::poll_fn(move |cx| {
                    if yields == 0 {
                        Poll::Ready(i)
                    } else {
                        yields -= 1;
                        cx.waker().wake_by_ref();
                        Poll::Pending
                    }
                })) as Pin<Box<dyn Future<Output = usize> + Send>>
            })
            .collect();
        let out = run_all(futs);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn run_all_empty_is_empty() {
        let out: Vec<u8> = run_all(Vec::new());
        assert!(out.is_empty());
    }
}
