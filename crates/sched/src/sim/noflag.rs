//! Step-instrumented backlinks-without-flags list (the §3.1 ablation):
//! two-step deletion (mark, unlink) with backlinks set to the last
//! known — possibly already marked — predecessor.

use std::sync::atomic::Ordering;

use lf_tagged::TaggedPtr;

use super::{key_before, Arena, Mode, SimNode};
use crate::{Proc, StepKind};

/// The no-flag ablation list over the deterministic scheduler.
///
/// Because nothing prevents a backlink from targeting a marked node,
/// chains of backlinks grow rightwards under the right schedule — the
/// pathology the paper's flag bits eliminate (experiment E8 constructs
/// it deterministically).
pub struct SimNoFlagList {
    head: *mut SimNode,
    arena: Arena,
}

// SAFETY: all shared mutation goes through atomics; every node is
// arena-adopted and stays valid until the list is dropped.
unsafe impl Send for SimNoFlagList {}
// SAFETY: same argument as `Send` above.
unsafe impl Sync for SimNoFlagList {}

impl Default for SimNoFlagList {
    fn default() -> Self {
        Self::new()
    }
}

impl SimNoFlagList {
    /// Create an empty list (sentinel keys `i64::MIN` / `i64::MAX`).
    pub fn new() -> Self {
        let arena = Arena::new();
        let tail = SimNode::alloc(i64::MAX, std::ptr::null_mut());
        let head = SimNode::alloc(i64::MIN, tail);
        arena.adopt(tail);
        arena.adopt(head);
        SimNoFlagList { head, arena }
    }

    /// Keys currently present (unmarked nodes); quiescent use only.
    pub fn collect_keys(&self) -> Vec<i64> {
        let mut out = Vec::new();
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let mut cur = (*self.head).succ.load(Ordering::SeqCst).ptr();
            while !cur.is_null() && (*cur).key != i64::MAX {
                let succ = (*cur).succ.load(Ordering::SeqCst);
                if !succ.is_marked() {
                    out.push((*cur).key);
                }
                cur = succ.ptr();
            }
        }
        out
    }

    /// Snapshot `(key, mark, flag)` of all linked nodes (director use).
    pub fn dump(&self) -> Vec<(i64, bool, bool)> {
        let mut out = Vec::new();
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let mut cur = self.head;
            while !cur.is_null() {
                let succ = (*cur).succ.load(Ordering::SeqCst);
                out.push(((*cur).key, succ.is_marked(), succ.is_flagged()));
                cur = succ.ptr();
            }
        }
        out
    }

    /// # Safety
    ///
    /// `prev` and `del` must be nodes of this list.
    unsafe fn help_marked(&self, prev: *mut SimNode, del: *mut SimNode, proc: &Proc) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            proc.step(StepKind::Read);
            let next = (*del).succ.load(Ordering::SeqCst).ptr();
            proc.step(StepKind::CasUnlink);
            let _ = (*prev).succ.compare_exchange(
                TaggedPtr::unmarked(del),
                TaggedPtr::unmarked(next),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// # Safety
    ///
    /// `curr` must be a node of this list with `curr.key <= k`
    /// (arena-adopted nodes stay valid until the list drops).
    unsafe fn search_from(
        &self,
        k: i64,
        mut curr: *mut SimNode,
        mode: Mode,
        proc: &Proc,
    ) -> (*mut SimNode, *mut SimNode) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            proc.step(StepKind::Read);
            let mut next = (*curr).succ.load(Ordering::SeqCst).ptr();
            while key_before((*next).key, k, mode) {
                loop {
                    proc.step(StepKind::Read);
                    let next_succ = (*next).succ.load(Ordering::SeqCst);
                    if !next_succ.is_marked() {
                        break;
                    }
                    proc.step(StepKind::Read);
                    let curr_succ = (*curr).succ.load(Ordering::SeqCst);
                    if curr_succ.is_marked() && curr_succ.ptr() == next {
                        break;
                    }
                    if curr_succ.ptr() == next {
                        self.help_marked(curr, next, proc);
                    }
                    proc.step(StepKind::Read);
                    next = (*curr).succ.load(Ordering::SeqCst).ptr();
                }
                if key_before((*next).key, k, mode) {
                    proc.step(StepKind::Traverse);
                    curr = next;
                    proc.step(StepKind::Read);
                    next = (*curr).succ.load(Ordering::SeqCst).ptr();
                }
            }
            (curr, next)
        }
    }

    /// # Safety
    ///
    /// `prev` must be a node of this list.
    unsafe fn recover(&self, mut prev: *mut SimNode, proc: &Proc) -> *mut SimNode {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            loop {
                proc.step(StepKind::Read);
                if !(*prev).succ.load(Ordering::SeqCst).is_marked() {
                    return prev;
                }
                proc.step(StepKind::Backlink);
                let back = (*prev).backlink.load(Ordering::SeqCst);
                prev = if back.is_null() { self.head } else { back };
            }
        }
    }

    /// Insert `key`; returns `false` on duplicate.
    ///
    /// # Panics
    ///
    /// Panics if `key` is a sentinel value.
    pub fn insert(&self, key: i64, proc: &Proc) -> bool {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel key");
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let (mut prev, mut next) = self.search_from(key, self.head, Mode::Le, proc);
            if (*prev).key == key {
                return false;
            }
            let new_node = SimNode::alloc(key, std::ptr::null_mut());
            self.arena.adopt(new_node);
            loop {
                (*new_node)
                    .succ
                    .store(TaggedPtr::unmarked(next), Ordering::SeqCst);
                proc.step(StepKind::CasInsert);
                let res = (*prev).succ.compare_exchange(
                    TaggedPtr::unmarked(next),
                    TaggedPtr::unmarked(new_node),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                if res.is_ok() {
                    return true;
                }
                prev = self.recover(prev, proc);
                let (p, n) = self.search_from(key, prev, Mode::Le, proc);
                prev = p;
                next = n;
                if (*prev).key == key {
                    return false;
                }
            }
        }
    }

    /// Delete `key`; returns whether this operation performed it.
    pub fn delete(&self, key: i64, proc: &Proc) -> bool {
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let (mut prev, del) = self.search_from(key, self.head, Mode::Lt, proc);
            if (*del).key != key {
                return false;
            }
            loop {
                // Backlink to the last known predecessor — which may
                // itself be marked (no flag to prevent it).
                proc.step(StepKind::Write);
                (*del).backlink.store(prev, Ordering::SeqCst);
                proc.step(StepKind::Read);
                let del_succ = (*del).succ.load(Ordering::SeqCst);
                if del_succ.is_marked() {
                    return false;
                }
                proc.step(StepKind::CasMark);
                let res = (*del).succ.compare_exchange(
                    del_succ,
                    del_succ.with_mark(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                if res.is_ok() {
                    self.help_marked(prev, del, proc);
                    return true;
                }
                prev = self.recover(prev, proc);
                let (p, d) = self.search_from(key, prev, Mode::Lt, proc);
                prev = p;
                if d != del {
                    return false;
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: i64, proc: &Proc) -> bool {
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let (curr, _) = self.search_from(key, self.head, Mode::Le, proc);
            (*curr).key == key
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_btreeset() {
        let sched = Scheduler::new();
        let list = Arc::new(SimNoFlagList::new());
        let mut oracle = BTreeSet::new();
        let mut x: u64 = 3;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = ((x >> 33) % 40) as i64;
            let l = list.clone();
            match x % 3 {
                0 => {
                    let op = sched.spawn(move |p| l.insert(k, &p));
                    sched.run_to_completion(op.pid());
                    assert_eq!(op.join(), oracle.insert(k));
                }
                1 => {
                    let op = sched.spawn(move |p| l.delete(k, &p));
                    sched.run_to_completion(op.pid());
                    assert_eq!(op.join(), oracle.remove(&k));
                }
                _ => {
                    let op = sched.spawn(move |p| l.contains(k, &p));
                    sched.run_to_completion(op.pid());
                    assert_eq!(op.join(), oracle.contains(&k));
                }
            }
        }
        assert_eq!(list.collect_keys(), oracle.into_iter().collect::<Vec<_>>());
    }
}
