//! Step-instrumented Michael list (single-node unlinks, restart from
//! head on any C&S failure — the paper's \[8\]).
//!
//! Hazard-pointer publication is a memory-reclamation mechanism, not a
//! step the amortized analysis counts, so the simulator models only the
//! algorithmic steps; the real hazard-pointer implementation lives in
//! `lf-baselines::MichaelList`.

use std::sync::atomic::Ordering;

use lf_tagged::TaggedPtr;

use super::{Arena, SimNode};
use crate::{Proc, StepKind};

/// Michael's list over the deterministic scheduler.
pub struct SimMichaelList {
    head: *mut SimNode,
    arena: Arena,
}

// SAFETY: all shared mutation goes through atomics; every node is
// arena-adopted and stays valid until the list is dropped.
unsafe impl Send for SimMichaelList {}
// SAFETY: same argument as `Send` above.
unsafe impl Sync for SimMichaelList {}

impl Default for SimMichaelList {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMichaelList {
    /// Create an empty list (sentinel keys `i64::MIN` / `i64::MAX`).
    pub fn new() -> Self {
        let arena = Arena::new();
        let tail = SimNode::alloc(i64::MAX, std::ptr::null_mut());
        let head = SimNode::alloc(i64::MIN, tail);
        arena.adopt(tail);
        arena.adopt(head);
        SimMichaelList { head, arena }
    }

    /// Keys currently present; quiescent use only.
    pub fn collect_keys(&self) -> Vec<i64> {
        let mut out = Vec::new();
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let mut cur = (*self.head).succ.load(Ordering::SeqCst).ptr();
            while !cur.is_null() && (*cur).key != i64::MAX {
                let succ = (*cur).succ.load(Ordering::SeqCst);
                if !succ.is_marked() {
                    out.push((*cur).key);
                }
                cur = succ.ptr();
            }
        }
        out
    }

    /// Michael's `find`: returns (prev, cur, cur_succ) with `cur.key >=
    /// k`, unlinking marked nodes one at a time; restarts from the head
    /// on any failure.
    ///
    /// # Safety
    ///
    /// Arena-adopted nodes stay valid until the list drops; callable
    /// only while the list is live.
    unsafe fn find(&self, k: i64, proc: &Proc) -> (*mut SimNode, *mut SimNode, TaggedPtr<SimNode>) {
        // SAFETY: the fn's `# Safety` contract covers the whole body.
        unsafe {
            'retry: loop {
                let mut prev = self.head;
                proc.step(StepKind::Read);
                let mut cur = (*prev).succ.load(Ordering::SeqCst).ptr();
                loop {
                    proc.step(StepKind::Read);
                    let check = (*prev).succ.load(Ordering::SeqCst);
                    if check.ptr() != cur || check.is_marked() {
                        continue 'retry;
                    }
                    proc.step(StepKind::Read);
                    let cur_succ = (*cur).succ.load(Ordering::SeqCst);
                    if cur_succ.is_marked() {
                        proc.step(StepKind::CasUnlink);
                        let res = (*prev).succ.compare_exchange(
                            TaggedPtr::unmarked(cur),
                            TaggedPtr::unmarked(cur_succ.ptr()),
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                        if res.is_err() {
                            continue 'retry;
                        }
                        cur = cur_succ.ptr();
                        continue;
                    }
                    if (*cur).key >= k {
                        return (prev, cur, cur_succ);
                    }
                    proc.step(StepKind::Traverse);
                    prev = cur;
                    cur = cur_succ.ptr();
                }
            }
        }
    }

    /// Insert `key`; returns `false` on duplicate.
    ///
    /// # Panics
    ///
    /// Panics if `key` is a sentinel value.
    pub fn insert(&self, key: i64, proc: &Proc) -> bool {
        assert!(key > i64::MIN && key < i64::MAX, "sentinel key");
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let new_node = SimNode::alloc(key, std::ptr::null_mut());
            self.arena.adopt(new_node);
            loop {
                let (prev, cur, _) = self.find(key, proc);
                if (*cur).key == key {
                    return false;
                }
                (*new_node)
                    .succ
                    .store(TaggedPtr::unmarked(cur), Ordering::SeqCst);
                proc.step(StepKind::CasInsert);
                let res = (*prev).succ.compare_exchange(
                    TaggedPtr::unmarked(cur),
                    TaggedPtr::unmarked(new_node),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                if res.is_ok() {
                    return true;
                }
                // Restart from the head.
            }
        }
    }

    /// Delete `key`; returns whether this operation performed it.
    pub fn delete(&self, key: i64, proc: &Proc) -> bool {
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            loop {
                let (prev, cur, cur_succ) = self.find(key, proc);
                if (*cur).key != key {
                    return false;
                }
                proc.step(StepKind::CasMark);
                let res = (*cur).succ.compare_exchange(
                    cur_succ,
                    cur_succ.with_mark(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                if res.is_err() {
                    continue; // restart from the head
                }
                proc.step(StepKind::CasUnlink);
                let _ = (*prev).succ.compare_exchange(
                    TaggedPtr::unmarked(cur),
                    TaggedPtr::unmarked(cur_succ.ptr()),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                return true;
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: i64, proc: &Proc) -> bool {
        // SAFETY: arena-adopted nodes stay valid until the list drops.
        unsafe {
            let (_, cur, _) = self.find(key, proc);
            (*cur).key == key
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_btreeset() {
        let sched = Scheduler::new();
        let list = Arc::new(SimMichaelList::new());
        let mut oracle = BTreeSet::new();
        let mut x: u64 = 21;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = ((x >> 33) % 40) as i64;
            let l = list.clone();
            match x % 3 {
                0 => {
                    let op = sched.spawn(move |p| l.insert(k, &p));
                    sched.run_to_completion(op.pid());
                    assert_eq!(op.join(), oracle.insert(k));
                }
                1 => {
                    let op = sched.spawn(move |p| l.delete(k, &p));
                    sched.run_to_completion(op.pid());
                    assert_eq!(op.join(), oracle.remove(&k));
                }
                _ => {
                    let op = sched.spawn(move |p| l.contains(k, &p));
                    sched.run_to_completion(op.pid());
                    assert_eq!(op.join(), oracle.contains(&k));
                }
            }
        }
        assert_eq!(list.collect_keys(), oracle.into_iter().collect::<Vec<_>>());
    }
}
