//! Step-instrumented re-implementations of the Fomitchev–Ruppert and
//! Harris list algorithms, driven by the [`Scheduler`](crate::Scheduler).
//!
//! Keys are `i64` with `i64::MIN`/`i64::MAX` reserved for the head and
//! tail sentinels. Values are omitted (the experiments count steps, not
//! payloads) and nodes are never freed until the list drops (the
//! adversarial executions are bounded, and leaving unlinked nodes in
//! place keeps every pointer dereferenceable without a reclamation
//! scheme inside the simulator).
//!
//! Every shared-memory access is preceded by a [`crate::Proc::step`] call, so
//! the director can pause an operation immediately before any C&S and
//! the scheduler's per-kind counters recover exactly the essential-step
//! totals of the paper's analysis.

mod fr;
mod harris;
mod michael;
mod noflag;
mod skiplist;

pub use fr::SimFrList;
pub use harris::SimHarrisList;
pub use michael::SimMichaelList;
pub use noflag::SimNoFlagList;
pub use skiplist::SimSkipList;

use std::sync::atomic::AtomicPtr;
use std::sync::Mutex;

use lf_tagged::{AtomicTaggedPtr, TaggedPtr};

/// A node shared by both simulated list implementations (Harris simply
/// never uses `backlink` or the flag bit).
#[repr(align(8))]
pub(crate) struct SimNode {
    pub(crate) key: i64,
    pub(crate) succ: AtomicTaggedPtr<SimNode>,
    pub(crate) backlink: AtomicPtr<SimNode>,
}

impl SimNode {
    pub(crate) fn alloc(key: i64, right: *mut SimNode) -> *mut SimNode {
        Box::into_raw(Box::new(SimNode {
            key,
            succ: AtomicTaggedPtr::new(TaggedPtr::unmarked(right)),
            backlink: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }
}

/// Owns every node ever allocated by a simulated list; frees them all
/// at drop (no reclamation during the run).
pub(crate) struct Arena {
    nodes: Mutex<Vec<usize>>,
}

impl Arena {
    pub(crate) fn new() -> Self {
        Arena {
            nodes: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn adopt(&self, node: *mut SimNode) {
        self.nodes.lock().unwrap().push(node as usize);
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for &addr in self.nodes.lock().unwrap().iter() {
            // SAFETY: every adopted address is a Box-allocated SimNode
            // recorded exactly once; &mut self means no simulation is
            // still running.
            drop(unsafe { Box::from_raw(addr as *mut SimNode) });
        }
    }
}

/// Comparison mode, as in the core crate (`SearchFrom` vs `SearchFrom2`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Advance while `next.key <= k`.
    Le,
    /// Advance while `next.key < k`.
    Lt,
}

#[inline]
pub(crate) fn key_before(node_key: i64, k: i64, mode: Mode) -> bool {
    match mode {
        Mode::Le => node_key <= k,
        Mode::Lt => node_key < k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scheduler, StepKind};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn run_fr_op<R: Send + 'static>(
        sched: &Scheduler,
        f: impl FnOnce(crate::Proc) -> R + Send + 'static,
    ) -> R {
        let op = sched.spawn(f);
        sched.run_to_completion(op.pid());
        op.join()
    }

    #[test]
    fn fr_sequential_matches_btreeset() {
        let sched = Scheduler::new();
        let list = Arc::new(SimFrList::new());
        let mut oracle = BTreeSet::new();
        let mut x: u64 = 99;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = ((x >> 33) % 50) as i64;
            match x % 3 {
                0 => {
                    let l = list.clone();
                    let got = run_fr_op(&sched, move |p| l.insert(k, &p));
                    assert_eq!(got, oracle.insert(k), "insert {k}");
                }
                1 => {
                    let l = list.clone();
                    let got = run_fr_op(&sched, move |p| l.delete(k, &p));
                    assert_eq!(got, oracle.remove(&k), "delete {k}");
                }
                _ => {
                    let l = list.clone();
                    let got = run_fr_op(&sched, move |p| l.contains(k, &p));
                    assert_eq!(got, oracle.contains(&k), "contains {k}");
                }
            }
        }
        assert_eq!(list.collect_keys(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn harris_sequential_matches_btreeset() {
        let sched = Scheduler::new();
        let list = Arc::new(SimHarrisList::new());
        let mut oracle = BTreeSet::new();
        let mut x: u64 = 7;
        for _ in 0..400 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = ((x >> 33) % 50) as i64;
            match x % 3 {
                0 => {
                    let l = list.clone();
                    let got = run_fr_op(&sched, move |p| l.insert(k, &p));
                    assert_eq!(got, oracle.insert(k), "insert {k}");
                }
                1 => {
                    let l = list.clone();
                    let got = run_fr_op(&sched, move |p| l.delete(k, &p));
                    assert_eq!(got, oracle.remove(&k), "delete {k}");
                }
                _ => {
                    let l = list.clone();
                    let got = run_fr_op(&sched, move |p| l.contains(k, &p));
                    assert_eq!(got, oracle.contains(&k), "contains {k}");
                }
            }
        }
        assert_eq!(list.collect_keys(), oracle.into_iter().collect::<Vec<_>>());
    }

    /// Paper Fig. 2 / E1: an uncontended deletion performs exactly one
    /// flagging, one marking, and one physical-deletion C&S, in order.
    #[test]
    fn fr_deletion_is_exactly_three_cas() {
        let sched = Scheduler::new();
        let list = Arc::new(SimFrList::new());
        for k in [1, 2, 3] {
            let l = list.clone();
            run_fr_op(&sched, move |p| l.insert(k, &p));
        }
        let l = list.clone();
        let op = sched.spawn(move |p| l.delete(2, &p));
        let pid = op.pid();

        // Observe the three C&S steps in protocol order.
        assert!(sched.run_until_pending(pid, StepKind::is_cas));
        assert_eq!(
            sched.peek(pid),
            crate::Observation::Pending(StepKind::CasFlag)
        );
        sched.grant(pid, 1);
        assert!(sched.run_until_pending(pid, StepKind::is_cas));
        assert_eq!(
            sched.peek(pid),
            crate::Observation::Pending(StepKind::CasMark)
        );
        sched.grant(pid, 1);
        assert!(sched.run_until_pending(pid, StepKind::is_cas));
        assert_eq!(
            sched.peek(pid),
            crate::Observation::Pending(StepKind::CasUnlink)
        );
        sched.run_to_completion(pid);
        assert!(op.join());

        assert_eq!(sched.steps_of(pid, StepKind::CasFlag), 1);
        assert_eq!(sched.steps_of(pid, StepKind::CasMark), 1);
        assert_eq!(sched.steps_of(pid, StepKind::CasUnlink), 1);
        assert_eq!(list.collect_keys(), vec![1, 3]);
    }

    /// Lock-freedom under failure injection: a deleter halted right
    /// after flagging cannot block an insert at the same spot — the
    /// inserter helps the deletion complete.
    #[test]
    fn fr_helping_overcomes_halted_deleter() {
        let sched = Scheduler::new();
        let list = Arc::new(SimFrList::new());
        for k in [10, 20] {
            let l = list.clone();
            run_fr_op(&sched, move |p| l.insert(k, &p));
        }
        // Deleter of 20 flags node 10, then halts forever.
        let l = list.clone();
        let deleter = sched.spawn(move |p| l.delete(20, &p));
        assert!(sched.run_until_pending(deleter.pid(), |k| k == StepKind::CasFlag));
        sched.grant(deleter.pid(), 1); // execute the flag C&S
        assert!(sched.run_until_pending(deleter.pid(), |k| k == StepKind::CasMark));
        // ... and never grant it again.

        // Inserter of 15 must still complete (it helps delete 20).
        let l = list.clone();
        let inserter = sched.spawn(move |p| l.insert(15, &p));
        sched.run_to_completion(inserter.pid());
        assert!(inserter.join());
        assert_eq!(list.collect_keys(), vec![10, 15]);

        // Unblock the deleter thread for cleanup; its operation still
        // reports success (the deletion it started was completed).
        sched.run_to_completion(deleter.pid());
        assert!(deleter.join());
    }

    /// A miniature §3.1 round: pause an inserter right before its C&S,
    /// let the deleter remove its predecessor, then compare recovery.
    #[test]
    fn fr_recovers_cheaper_than_harris_after_interference() {
        // --- FR ---
        let sched = Scheduler::new();
        let fr = Arc::new(SimFrList::new());
        for k in 0..20 {
            let l = fr.clone();
            run_fr_op(&sched, move |p| l.insert(k, &p));
        }
        let l = fr.clone();
        let ins = sched.spawn(move |p| l.insert(100, &p));
        assert!(sched.run_until_pending(ins.pid(), |k| k == StepKind::CasInsert));
        let before = sched.steps(ins.pid());
        let l = fr.clone();
        let del = sched.spawn(move |p| l.delete(19, &p));
        sched.run_to_completion(del.pid());
        assert!(del.join());
        sched.run_to_completion(ins.pid());
        let ins_pid = ins.pid();
        assert!(ins.join());
        let fr_recovery = sched.steps(ins_pid) - before;

        // --- Harris ---
        let sched = Scheduler::new();
        let ha = Arc::new(SimHarrisList::new());
        for k in 0..20 {
            let l = ha.clone();
            run_fr_op(&sched, move |p| l.insert(k, &p));
        }
        let l = ha.clone();
        let ins = sched.spawn(move |p| l.insert(100, &p));
        assert!(sched.run_until_pending(ins.pid(), |k| k == StepKind::CasInsert));
        let before = sched.steps(ins.pid());
        let l = ha.clone();
        let del = sched.spawn(move |p| l.delete(19, &p));
        sched.run_to_completion(del.pid());
        assert!(del.join());
        sched.run_to_completion(ins.pid());
        let ins_pid = ins.pid();
        assert!(ins.join());
        let harris_recovery = sched.steps(ins_pid) - before;

        // Harris restarts from the head (>= 20 traversal steps); FR
        // recovers through one backlink.
        assert!(
            harris_recovery > 2 * fr_recovery,
            "harris {harris_recovery} vs fr {fr_recovery}"
        );
    }
}
